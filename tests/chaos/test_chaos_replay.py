"""Chaos injection replays exactly: same plan + same request sequence
→ same injected faults, same failure classes, same delays."""

import pytest

from repro.chaos import ChaosService, ChaosTransport, FaultPlan, KillWindow
from repro.grh import ok_message
from repro.services import InProcessTransport, ServiceStatusError
from repro.services.transports import TransportError


def echo(message):
    return ok_message()


def run_storm(seed, requests=120):
    """Drive one deterministic request sequence through an injecting
    transport; returns everything observable about the run."""
    sleeps = []
    transport = ChaosTransport(
        InProcessTransport(),
        FaultPlan(seed, latency_rate=0.2, reset_rate=0.15, error_rate=0.15,
                  slow_body_rate=0.1, error_statuses=(500, 503)),
        sleep=sleeps.append)
    transport.bind("svc:r0", echo)
    outcomes = []
    for _ in range(requests):
        try:
            transport.send("svc:r0", ok_message())
            outcomes.append("ok")
        except ServiceStatusError as exc:
            outcomes.append(f"status:{exc.status}")
        except TransportError:
            outcomes.append("transient")
    return outcomes, list(transport.injected), sleeps


class TestTransportReplay:
    def test_two_runs_replay_identically(self, chaos_seed):
        assert run_storm(chaos_seed) == run_storm(chaos_seed)

    def test_different_seeds_inject_differently(self):
        assert run_storm(11)[1] != run_storm(12)[1]

    def test_taxonomy_gateway_statuses_stay_transient(self):
        # every injected error is 503 → TransportError (§11: gateway
        # statuses are transient), never ServiceStatusError
        transport = ChaosTransport(InProcessTransport(),
                                   FaultPlan(1, error_rate=1.0,
                                             error_statuses=(503,)),
                                   sleep=lambda s: None)
        transport.bind("svc:r0", echo)
        with pytest.raises(TransportError) as excinfo:
            transport.send("svc:r0", ok_message())
        assert not isinstance(excinfo.value, ServiceStatusError)

    def test_taxonomy_500_is_service_reported(self):
        transport = ChaosTransport(InProcessTransport(),
                                   FaultPlan(1, error_rate=1.0,
                                             error_statuses=(500,)),
                                   sleep=lambda s: None)
        transport.bind("svc:r0", echo)
        with pytest.raises(ServiceStatusError) as excinfo:
            transport.send("svc:r0", ok_message())
        assert excinfo.value.status == 500
        assert excinfo.value.service_reported

    def test_kill_window_blackholes_the_replica(self):
        clock = iter([0.0, 1.0, 11.0]).__next__
        transport = ChaosTransport(
            InProcessTransport(),
            FaultPlan(0, kills=[KillWindow("svc:r0", 0.0, 10.0)]),
            clock=clock, sleep=lambda s: None)
        transport.bind("svc:r0", echo)
        transport.start()                        # epoch at 0.0
        with pytest.raises(TransportError):      # elapsed 1.0: killed
            transport.send("svc:r0", ok_message())
        transport.send("svc:r0", ok_message())   # elapsed 11.0: restored


class TestServiceShim:
    def test_service_shim_replays_identically(self, chaos_seed):
        def run():
            plan = FaultPlan(chaos_seed, latency_rate=0.3, reset_rate=0.2)
            shim = ChaosService(echo, plan, "r0", sleep=lambda s: None)
            outcomes = []
            for _ in range(80):
                try:
                    shim(ok_message())
                    outcomes.append("ok")
                except ConnectionResetError:
                    outcomes.append("reset")
            return outcomes, list(shim.injected)
        assert run() == run()

    def test_reset_after_work_still_runs_the_handler(self):
        calls = []

        def counting(message):
            calls.append(message)
            return ok_message()

        shim = ChaosService(counting, FaultPlan(0, reset_rate=1.0), "r0",
                            reset_after_work=True)
        with pytest.raises(ConnectionResetError):
            shim(ok_message())
        assert len(calls) == 1  # the work happened; only the ack died
