"""Failover × durability: an action that fails over after its effect
ran must not double-execute (PROTOCOL.md §12 satellite).

The nasty case: the service executes the action, then the connection
dies before the ack — the client cannot distinguish this from a
pre-dispatch failure, so it fails over and re-dispatches.  Safety comes
from the wire ``dedup`` key and *shared* service-side dedup memory: the
replica receiving the retry answers ``log:ok`` without re-running the
effect.  That is why the GRH only allows action failover when the
request carries a dedup key, and why §12 requires replicas to share
dedup memory (or idempotent effects)."""

import pytest

from repro.bindings import Relation
from repro.grh import (ComponentSpec, GenericRequestHandler, GRHError,
                       LanguageDescriptor, LanguageRegistry)
from repro.services import HttpServiceServer, HybridTransport
from repro.services.base import LanguageService
from repro.xmlmodel import E

ACTION_URI = "urn:test:chaos-action"


class EffectfulActionService(LanguageService):
    """Counts real effect executions (dedup hits answer ok without one)."""

    service_name = "effects"

    def __init__(self):
        self.effects = 0

    def action(self, request):
        self.effects += 1


class ResetAckOnce:
    """Wraps a handler: the first action's *ack* dies after the work ran
    (ConnectionResetError aborts the HTTP socket without a response)."""

    def __init__(self, handler):
        self.handler = handler
        self.tripped = False

    def __call__(self, message):
        response = self.handler(message)
        if not self.tripped and message.get("kind") == "action":
            self.tripped = True
            raise ConnectionResetError("ack lost (simulated)")
        return response


class SequenceGuard:
    """Minimal durability guard: journals intent, hands out dedup keys."""

    def __init__(self):
        self.journaled = []

    def begin(self, tuples):
        keys = [f"intent-{len(self.journaled)}-{index}"
                for index in range(len(tuples))]
        self.journaled.append(keys)
        return keys


def replicated_action_world():
    """Two real HTTP replicas sharing ONE service instance (shared dedup
    memory — the §12 requirement); replica 0 loses the first action ack."""
    service = EffectfulActionService()
    lossy = ResetAckOnce(service.handle)
    replica0 = HttpServiceServer(aware_handler=lossy)
    replica1 = HttpServiceServer(aware_handler=service.handle)
    addresses = (replica0.start(), replica1.start())
    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, HybridTransport(timeout=2.0))
    grh.add_remote_language(
        LanguageDescriptor(ACTION_URI, "action", "chaos-action",
                           replicas=addresses))
    return grh, service, (replica0, replica1)


def action_spec():
    return ComponentSpec("action", ACTION_URI,
                         content=E("{%s}do" % ACTION_URI))


class TestActionFailoverDedup:
    def test_lost_ack_fails_over_without_double_execution(self):
        grh, service, servers = replicated_action_world()
        try:
            count = grh.execute_action("c1", action_spec(),
                                       Relation.unit(),
                                       guard=SequenceGuard())
        finally:
            for server in servers:
                server.stop()
            grh.close()
        # replica 0 ran the effect and dropped the ack; the retry landed
        # on replica 1, whose shared dedup memory answered ok without
        # re-running it — exactly once, end to end
        assert count == 1
        assert service.effects == 1
        assert grh.resilience.failovers == 1

    def test_without_dedup_the_action_does_not_fail_over(self):
        grh, service, servers = replicated_action_world()
        try:
            with pytest.raises(GRHError):
                # no guard → no dedup key → failover is unsafe and the
                # lost ack surfaces as a failure instead of a retry
                grh.execute_action("c1", action_spec(), Relation.unit())
        finally:
            for server in servers:
                server.stop()
            grh.close()
        assert service.effects == 1  # the effect ran once, no replay
        assert grh.resilience.failovers == 0
