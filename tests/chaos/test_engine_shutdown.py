"""Engine shutdown tears down every availability thread: the health
prober, the hedge executor and the transport's connection pools — no
daemon-thread leaks (PROTOCOL.md §12 satellite).  The suite's autouse
``no_thread_leaks`` fixture enforces the same property for every test."""

import threading

from repro.bindings import Relation
from repro.core import ECAEngine
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry)
from repro.services import HttpServiceServer, HybridTransport
from repro.services.base import LanguageService
from repro.xmlmodel import E

QUERY_URI = "urn:test:chaos-query"


class OneRowQueryService(LanguageService):
    service_name = "one-row"

    def query(self, request):
        return Relation([{"Q": "1"}])


def replicated_world():
    service = OneRowQueryService()
    servers = (HttpServiceServer(aware_handler=service.handle),
               HttpServiceServer(aware_handler=service.handle))
    addresses = tuple(server.start() for server in servers)
    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, HybridTransport(timeout=2.0))
    grh.health_probe_interval = 0.05
    grh.add_remote_language(
        LanguageDescriptor(QUERY_URI, "query", "chaos-query",
                           replicas=addresses))
    return ECAEngine(grh), grh, servers, addresses


def spec():
    return ComponentSpec("query", QUERY_URI, content=E("{%s}q" % QUERY_URI))


class TestShutdown:
    def test_shutdown_stops_prober_and_hedge_pool(self):
        engine, grh, servers, _ = replicated_world()
        try:
            # registering the replica set started the background prober
            assert grh.health_prober is not None
            assert grh.health_prober.running
            # a hedged query spins up the "eca-hedge" executor
            result = grh.evaluate_query("c1", spec(), Relation.unit())
            assert len(result) == 1
        finally:
            for server in servers:
                server.stop()
        assert engine.shutdown() is True
        assert not grh.health_prober.running
        names = {thread.name for thread in threading.enumerate()}
        assert "eca-health-prober" not in names
        assert not any(name.startswith("eca-hedge") for name in names)

    def test_dispatch_still_works_after_shutdown(self):
        engine, grh, servers, _ = replicated_world()
        try:
            engine.shutdown()
            # synchronous dispatch survives: hedging and probing are
            # simply off, pools rebuild on demand
            result = grh.evaluate_query("c1", spec(), Relation.unit())
            assert len(result) == 1
            assert grh.resilience.hedges_launched == 0
        finally:
            for server in servers:
                server.stop()
            grh.close()

    def test_late_registration_keeps_probing_off_after_shutdown(self):
        engine, grh, servers, addresses = replicated_world()
        try:
            engine.shutdown()
            assert not grh.health_prober.running
            # registering another replicated HTTP language after
            # shutdown must not restart the prober thread the teardown
            # just reaped
            grh.add_remote_language(
                LanguageDescriptor("urn:test:late", "query", "late",
                                   replicas=addresses))
            assert not grh.health_prober.running
            names = {thread.name for thread in threading.enumerate()}
            assert "eca-health-prober" not in names
        finally:
            for server in servers:
                server.stop()

    def test_probe_marks_killed_replica_down(self):
        engine, grh, servers, addresses = replicated_world()
        board = grh.registry.health
        try:
            prober = grh.health_prober
            prober.probe_once()
            assert all(board.state_of(address) == "healthy"
                       for address in addresses)
            servers[0].stop()
            prober.probe_once()
            assert board.state_of(addresses[0]) == "down"
            assert board.state_of(addresses[1]) == "healthy"
        finally:
            for server in servers:
                server.stop()
            engine.shutdown()
