"""Shared fixtures for the chaos suite (PROTOCOL.md §12).

``no_thread_leaks`` is autouse: every chaos test must return the
process to its pre-test thread set — the availability layer spawns
probers, hedge pools and HTTP servers, and an undisposed one here is
exactly the daemon-thread leak the engine's ``shutdown()`` contract
forbids.  A short grace window absorbs per-request HTTP worker threads
that are already on their way out.
"""

import os
import threading
import time

import pytest


@pytest.fixture(autouse=True)
def no_thread_leaks():
    before = set(threading.enumerate())
    yield
    deadline = time.monotonic() + 5.0
    leaked = []
    while time.monotonic() < deadline:
        leaked = [thread for thread in threading.enumerate()
                  if thread not in before and thread.is_alive()]
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(
        "threads leaked by test: "
        + ", ".join(thread.name for thread in leaked))


@pytest.fixture
def chaos_seed():
    """The fault-plan seed; CI sweeps it via the CHAOS_SEED env var."""
    return int(os.environ.get("CHAOS_SEED", "0"))
