"""End-to-end replica failover: a real HTTP cluster losing and
regaining a replica while queries keep completing, and the
``/introspect/replicas`` operator view over the same state."""

from repro.bindings import Relation
from repro.chaos import ReplicaCluster
from repro.core import ECAEngine
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry)
from repro.obs.ops import IntrospectionSurface
from repro.services import HybridTransport
from repro.services.base import LanguageService

QUERY_URI = "urn:test:cluster-query"


class CountingQueryService(LanguageService):
    service_name = "cluster-query"

    def __init__(self):
        self.calls = 0

    def query(self, request):
        self.calls += 1
        return Relation([{"Q": str(self.calls)}])


def spec():
    from repro.xmlmodel import E
    return ComponentSpec("query", QUERY_URI, content=E("{%s}q" % QUERY_URI))


def cluster_world(count=3):
    service = CountingQueryService()
    cluster = ReplicaCluster(aware_handler=service.handle, count=count)
    addresses = cluster.start()
    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, HybridTransport(timeout=2.0))
    grh.health_probe_interval = 0.05
    grh.add_remote_language(
        LanguageDescriptor(QUERY_URI, "query", "cluster-query",
                           replicas=addresses))
    return grh, cluster, service, addresses


class TestClusterLifecycle:
    def test_restart_reclaims_the_registered_address(self):
        cluster = ReplicaCluster(
            aware_handler=CountingQueryService().handle, count=2)
        addresses = cluster.start()
        try:
            cluster.kill(0)
            assert not cluster.alive(0)
            assert cluster.restart(0) == addresses[0]
            assert cluster.alive(0)
        finally:
            cluster.stop()

    def test_queries_survive_a_replica_kill(self):
        grh, cluster, service, addresses = cluster_world()
        board = grh.registry.health
        try:
            for _ in range(6):
                assert len(grh.evaluate_query("c", spec(),
                                              Relation.unit())) == 1
            cluster.kill(0)
            # every query still completes: dead-replica picks fail over
            for _ in range(20):
                assert len(grh.evaluate_query("c", spec(),
                                              Relation.unit())) == 1
            cluster.restart(0)
            grh.health_prober.probe_once()
            assert board.state_of(addresses[0]) == "healthy"
        finally:
            cluster.stop()
            grh.close()

    def test_introspect_replicas_view(self):
        grh, cluster, service, addresses = cluster_world(count=2)
        engine = ECAEngine(grh)
        try:
            grh.evaluate_query("c", spec(), Relation.unit())
            surface = IntrospectionSurface(engine)
            status, payload = surface.handle("/introspect/replicas", {})
        finally:
            cluster.stop()
            engine.shutdown()
        assert status == 200
        assert set(payload["services"][QUERY_URI]) == set(addresses)
        for address in addresses:
            assert payload["replicas"][address]["state"] in (
                "healthy", "suspect", "down")
        assert payload["prober"]["running"] is True
        assert "hedges" in payload and "failovers" in payload
