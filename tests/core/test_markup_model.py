"""ECA-ML parsing, the rule model and its RDF export (FIG1/FIG4)."""

import pytest

from repro.actions import ACTION_NS
from repro.conditions import TEST_NS
from repro.core import (ECARule, RuleError, RuleMarkupError, parse_rule,
                        rule_to_xml)
from repro.events import ATOMIC_NS, SNOOP_NS
from repro.grh import ComponentSpec, ECA_ONTOLOGY
from repro.rdf import Literal, RDF, URIRef
from repro.services import XQ_LANG
from repro.xmlmodel import ECA_NS, parse, serialize

ECA = f'xmlns:eca="{ECA_NS}"'

MINIMAL = f"""
<eca:rule {ECA} id="minimal">
  <eca:event><booking person="{{P}}"/></eca:event>
  <eca:action><offer person="{{P}}"/></eca:action>
</eca:rule>
"""

FULL = f"""
<eca:rule {ECA} id="full">
  <eca:event>
    <snoop:seq xmlns:snoop="{SNOOP_NS}">
      <a k="{{K}}"/><b/>
    </snoop:seq>
  </eca:event>
  <eca:variable name="V">
    <eca:query>
      <xq:xquery xmlns:xq="{XQ_LANG}">for $x in doc('d')//i return $x</xq:xquery>
    </eca:query>
  </eca:variable>
  <eca:query>
    <eca:opaque language="exist-like">//thing[@k='{{K}}']</eca:opaque>
  </eca:query>
  <eca:test>$K != 'forbidden'</eca:test>
  <eca:action><act:raise xmlns:act="{ACTION_NS}"><done k="{{K}}"/></act:raise></eca:action>
  <eca:action><note k="{{K}}"/></eca:action>
</eca:rule>
"""


class TestParseRule:
    def test_minimal_rule(self):
        rule = parse_rule(MINIMAL)
        assert rule.rule_id == "minimal"
        assert rule.event.language == ATOMIC_NS
        assert rule.queries == ()
        assert rule.test is None
        assert len(rule.actions) == 1
        assert rule.actions[0].language == ACTION_NS

    def test_full_rule_structure(self):
        rule = parse_rule(FULL)
        assert rule.event.language == SNOOP_NS
        assert [query.bind_to for query in rule.queries] == ["V", None]
        assert rule.queries[0].language == XQ_LANG
        assert rule.queries[1].language == "exist-like"
        assert rule.queries[1].is_opaque
        assert rule.test.language == TEST_NS
        assert rule.test.opaque == "$K != 'forbidden'"
        assert len(rule.actions) == 2

    def test_generated_rule_id(self):
        rule = parse_rule(MINIMAL.replace(' id="minimal"', ""))
        assert rule.rule_id.startswith("rule-")

    def test_explicit_rule_id_overrides(self):
        assert parse_rule(MINIMAL, rule_id="custom").rule_id == "custom"

    def test_languages_listing(self):
        rule = parse_rule(FULL)
        assert rule.languages() == {SNOOP_NS, XQ_LANG, "exist-like",
                                    TEST_NS, ACTION_NS}

    @pytest.mark.parametrize("bad,message", [
        (f'<eca:rule {ECA}><eca:action><a/></eca:action></eca:rule>',
         "come last"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event></eca:rule>',
         "at least one action"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event>'
         f'<eca:event><e/></eca:event>'
         f'<eca:action><a/></eca:action></eca:rule>',
         "exactly one event"),
        (f'<eca:rule {ECA}><eca:action><a/></eca:action>'
         f'<eca:event><e/></eca:event></eca:rule>', "come last"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event>'
         f'<eca:test>1 = 1</eca:test><eca:test>1 = 1</eca:test>'
         f'<eca:action><a/></eca:action></eca:rule>', "at most one test"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event>'
         f'<eca:action><a/></eca:action>'
         f'<eca:query><q xmlns="urn:q"/></eca:query></eca:rule>',
         "between event and test"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event>'
         f'<eca:variable><eca:query><eca:opaque language="l">q'
         f'</eca:opaque></eca:query></eca:variable>'
         f'<eca:action><a/></eca:action></eca:rule>', "name attribute"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event>'
         f'<eca:query><q/></eca:query>'
         f'<eca:action><a/></eca:action></eca:rule>', "namespace"),
        (f'<eca:rule {ECA}><eca:event><eca:opaque language="l">x'
         f'</eca:opaque></eca:event>'
         f'<eca:action><a/></eca:action></eca:rule>', "cannot be opaque"),
        (f'<eca:rule {ECA}><eca:event><e/><f/></eca:event>'
         f'<eca:action><a/></eca:action></eca:rule>', "exactly one"),
        (f'<eca:rule {ECA}><eca:event><e/></eca:event>'
         f'<eca:frobnicate/><eca:action><a/></eca:action></eca:rule>',
         "unexpected element"),
        ('<not-a-rule/>', "expected eca:rule"),
    ])
    def test_malformed_rules(self, bad, message):
        with pytest.raises(RuleMarkupError, match=message):
            parse_rule(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("markup", [MINIMAL, FULL])
    def test_rule_to_xml_roundtrips(self, markup):
        rule = parse_rule(markup)
        reparsed = parse_rule(serialize(rule_to_xml(rule)))
        assert reparsed.rule_id == rule.rule_id
        assert [q.bind_to for q in reparsed.queries] == \
            [q.bind_to for q in rule.queries]
        assert (reparsed.test is None) == (rule.test is None)
        if rule.test is not None:
            assert reparsed.test.opaque == rule.test.opaque
        assert len(reparsed.actions) == len(rule.actions)
        assert reparsed.languages() == rule.languages()


class TestModelInvariants:
    def event(self):
        return ComponentSpec("event", ATOMIC_NS, content=parse("<e/>"))

    def action(self):
        return ComponentSpec("action", ACTION_NS, content=parse("<a/>"))

    def test_requires_action(self):
        with pytest.raises(RuleError, match="at least one action"):
            ECARule("r", self.event(), (), None, ())

    def test_family_mismatch_rejected(self):
        with pytest.raises(RuleError):
            ECARule("r", self.action(), (), None, (self.action(),))
        with pytest.raises(RuleError):
            ECARule("r", self.event(), (self.action(),), None,
                    (self.action(),))

    def test_component_spec_content_xor_opaque(self):
        with pytest.raises(ValueError):
            ComponentSpec("query", "l")
        with pytest.raises(ValueError):
            ComponentSpec("query", "l", content=parse("<q/>"), opaque="q")


class TestRuleOntologyExport:
    """FIG1: rules and their components are Semantic-Web resources."""

    def test_rdf_export_structure(self):
        rule = parse_rule(FULL)
        graph = rule.to_rdf()
        rule_node = URIRef("urn:eca:rule:full")
        assert (rule_node, RDF.type, ECA_ONTOLOGY.ECARule) in graph
        # one component node per component, each linked to its language
        events = list(graph.objects(rule_node,
                                    ECA_ONTOLOGY.hasEventComponent))
        queries = list(graph.objects(rule_node,
                                     ECA_ONTOLOGY.hasQueryComponent))
        actions = list(graph.objects(rule_node,
                                     ECA_ONTOLOGY.hasActionComponent))
        assert len(events) == 1 and len(queries) == 2 and len(actions) == 2
        assert graph.value(events[0], ECA_ONTOLOGY.usesLanguage) == \
            URIRef(SNOOP_NS)

    def test_variable_binding_exported(self):
        rule = parse_rule(FULL)
        graph = rule.to_rdf()
        bound = [o for _, _, o in
                 graph.triples(None, ECA_ONTOLOGY.bindsVariable, None)]
        assert Literal("V") in bound
