"""Engine-level resilience: state consistency under partial failure,
dead letter capture and replay (ECAEngine.replay_dead_letters)."""

import pytest

from repro.bindings import Relation, relation_to_answers
from repro.core import ECAEngine, EngineError
from repro.grh import GRHError, LanguageDescriptor, ok_message
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS

ECA = f'xmlns:eca="{ECA_NS}"'
PAIRS_LANG = "urn:test:pairs"
FLAKY_ACT = "urn:test:flaky-act"
FLAKY_Q = "urn:test:flaky-q"


class PairsService:
    """Query service contributing two tuples per evaluation."""

    def handle(self, message):
        return relation_to_answers(Relation([{"X": "1"}, {"X": "2"}]))


class FlakyActionService:
    """Action service that crashes on configurable call numbers."""

    def __init__(self, fail_on=()):
        self.fail_on = set(fail_on)
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if self.calls in self.fail_on:
            raise RuntimeError("action backend down")
        return ok_message()


class FlakyQueryService:
    def __init__(self, failing=True):
        self.failing = failing
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if self.failing:
            raise RuntimeError("query backend down")
        return relation_to_answers(Relation([{"Q": "fine"}]))


def make_world(extra_services=()):
    deployment = standard_deployment()
    for descriptor, service in extra_services:
        deployment.grh.add_service(descriptor, service)
    engine = ECAEngine(deployment.grh, validate=False)
    return deployment, engine


class TestDeregisterConsistency:
    """Regression: a failed unregister must not desynchronize engine
    and event service (the engine forgot the rule, the service kept a
    live registration whose detections were silently dropped)."""

    RULE = f"""
    <eca:rule {ECA} id="r1">
      <eca:event><ping n="{{N}}"/></eca:event>
      <eca:action><out n="{{N}}"/></eca:action>
    </eca:rule>
    """

    def wrap_event_transport(self, deployment, fail_unregister):
        original = deployment.transport._aware["svc:atomic-events"]

        def wrapper(message):
            if fail_unregister() and \
                    message.get("kind") == "unregister-event":
                raise RuntimeError("event service unreachable")
            return original(message)

        deployment.transport.bind("svc:atomic-events", wrapper)

    def test_failed_unregister_keeps_rule_registered(self):
        deployment, engine = make_world()
        failing = [True]
        self.wrap_event_transport(deployment, lambda: failing[0])
        engine.register_rule(self.RULE)
        with pytest.raises(GRHError, match="unreachable"):
            engine.deregister_rule("r1")
        # local state is intact: the rule is still known and detections
        # from the (still live) service-side registration are processed
        assert "r1" in engine.rules
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert engine.stats["instances"] == 1
        # once the service recovers, deregistration completes cleanly
        failing[0] = False
        engine.deregister_rule("r1")
        assert "r1" not in engine.rules
        with pytest.raises(EngineError):
            engine.deregister_rule("r1")
        deployment.stream.emit(E("ping", {"n": "2"}))
        assert engine.stats["instances"] == 1


class TestPartialActionReporting:
    """Regression: a mid-loop action failure used to discard the count
    of per-tuple requests that really executed."""

    RULE = f"""
    <eca:rule {ECA} id="partial">
      <eca:event><ping/></eca:event>
      <eca:query><q xmlns="{PAIRS_LANG}">two tuples</q></eca:query>
      <eca:action>
        <eca:opaque language="flaky-act">do {{X}}</eca:opaque>
      </eca:action>
    </eca:rule>
    """

    def make(self, fail_on):
        actions = FlakyActionService(fail_on=fail_on)
        deployment, engine = make_world([
            (LanguageDescriptor(PAIRS_LANG, "query", "pairs"),
             PairsService()),
            (LanguageDescriptor(FLAKY_ACT, "action", "flaky-act"), actions),
        ])
        engine.register_rule(self.RULE)
        return deployment, engine, actions

    def test_partial_count_preserved_on_instance_and_stats(self):
        deployment, engine, actions = self.make(fail_on={2})
        deployment.stream.emit(E("ping"))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert instance.actions_executed == 1       # first tuple did run
        assert engine.stats["actions"] == 1
        assert instance.to_xml().get("actions") == "1"

    def test_failed_tuples_parked_and_replayed(self):
        deployment, engine, actions = self.make(fail_on={2})
        deployment.stream.emit(E("ping"))
        assert engine.grh.stats["dead_letters"] == 1
        (letter,) = engine.grh.resilience.dead_letters
        assert letter.kind == "action"
        assert len(letter.bindings) == 1            # only the failed tuple
        # the backend recovers; replay executes exactly the missing tuple
        summary = engine.replay_dead_letters()
        assert summary == {"replayed": 1, "succeeded": 1, "failed": 0,
                           "actions": 1}
        assert engine.stats["actions"] == 2
        assert actions.calls == 3
        assert engine.grh.stats["dead_letters"] == 0

    def test_still_failing_replay_reparks(self):
        deployment, engine, actions = self.make(fail_on={2, 3})
        deployment.stream.emit(E("ping"))
        summary = engine.replay_dead_letters()
        assert summary["failed"] == 1
        assert engine.grh.stats["dead_letters"] == 1


class TestDetectionReplay:
    RULE = f"""
    <eca:rule {ECA} id="flaky">
      <eca:event><ping n="{{N}}"/></eca:event>
      <eca:query><q xmlns="{FLAKY_Q}">whatever</q></eca:query>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>
    """

    def make(self):
        service = FlakyQueryService(failing=True)
        deployment, engine = make_world([
            (LanguageDescriptor(FLAKY_Q, "query", "flaky-q"), service)])
        engine.register_rule(self.RULE)
        return deployment, engine, service

    def test_failed_detection_is_parked(self):
        deployment, engine, service = self.make()
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        (letter,) = engine.grh.resilience.dead_letters
        assert letter.kind == "detection"
        assert "query backend down" in letter.error

    def test_replay_after_recovery_completes_the_rule(self):
        deployment, engine, service = self.make()
        deployment.stream.emit(E("ping", {"n": "1"}))
        service.failing = False
        summary = engine.replay_dead_letters()
        assert summary["replayed"] == 1 and summary["succeeded"] == 1
        statuses = [instance.status for instance in engine.instances]
        assert statuses == ["failed", "completed"]  # audit trail kept
        assert engine.grh.stats["dead_letters"] == 0

    def test_replay_while_still_failing_reparks(self):
        deployment, engine, service = self.make()
        deployment.stream.emit(E("ping", {"n": "1"}))
        summary = engine.replay_dead_letters()
        assert summary["failed"] == 1
        assert engine.grh.stats["dead_letters"] == 1
        # recovery after the second park still converges
        service.failing = False
        summary = engine.replay_dead_letters()
        assert summary["succeeded"] == 1
        assert engine.grh.stats["dead_letters"] == 0

    def test_successful_instances_are_not_parked(self):
        deployment, engine, service = self.make()
        service.failing = False
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert engine.stats["completed"] == 1
        assert engine.grh.stats["dead_letters"] == 0
