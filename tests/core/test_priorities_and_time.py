"""Extensions beyond the paper: rule priorities and time-driven events."""

import pytest

from repro.actions import ACTION_NS
from repro.core import ECAEngine, parse_rule, rule_to_xml, RuleMarkupError
from repro.events import SNOOP_NS
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS, serialize

ECA = f'xmlns:eca="{ECA_NS}"'


def prioritized_rule(rule_id, priority, recipient):
    return f"""
    <eca:rule {ECA} id="{rule_id}" priority="{priority}">
      <eca:event><ping/></eca:event>
      <eca:action>
        <act:send xmlns:act="{ACTION_NS}" to="{recipient}">
          <fired by="{rule_id}"/>
        </act:send>
      </eca:action>
    </eca:rule>
    """


class TestPriorities:
    def test_priority_parsed_and_roundtripped(self):
        rule = parse_rule(prioritized_rule("r", 7, "out"))
        assert rule.priority == 7
        assert parse_rule(serialize(rule_to_xml(rule))).priority == 7

    def test_default_priority_zero(self):
        assert parse_rule(prioritized_rule("r", 0, "out")).priority == 0

    def test_invalid_priority_rejected(self):
        with pytest.raises(RuleMarkupError, match="priority"):
            parse_rule(prioritized_rule("r", "high", "out"))

    def test_batch_orders_by_priority(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        # registration order is the reverse of priority order
        engine.register_rule(prioritized_rule("low", 1, "log"))
        engine.register_rule(prioritized_rule("mid", 5, "log"))
        engine.register_rule(prioritized_rule("high", 9, "log"))
        with engine.batch():
            deployment.stream.emit(E("ping"))
        order = [m.content.get("by")
                 for m in deployment.runtime.messages("log")]
        assert order == ["high", "mid", "low"]

    def test_without_batch_arrival_order(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        engine.register_rule(prioritized_rule("low", 1, "log"))
        engine.register_rule(prioritized_rule("high", 9, "log"))
        deployment.stream.emit(E("ping"))
        order = [m.content.get("by")
                 for m in deployment.runtime.messages("log")]
        assert order == ["low", "high"]  # registration/arrival order

    def test_fifo_within_same_priority(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        engine.register_rule(prioritized_rule("first", 3, "log"))
        engine.register_rule(prioritized_rule("second", 3, "log"))
        with engine.batch():
            deployment.stream.emit(E("ping"))
        order = [m.content.get("by")
                 for m in deployment.runtime.messages("log")]
        assert order == ["first", "second"]

    def test_nested_batch_is_noop(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        engine.register_rule(prioritized_rule("r", 1, "log"))
        with engine.batch():
            with engine.batch():
                deployment.stream.emit(E("ping"))
        assert len(deployment.runtime.messages("log")) == 1


class TestTimeDrivenEvents:
    def test_tick_fires_periodic_rules(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        engine.register_rule(f"""
        <eca:rule {ECA} id="heartbeat">
          <eca:event>
            <snoop:periodic xmlns:snoop="{SNOOP_NS}" period="2">
              <start/><stop/>
            </snoop:periodic>
          </eca:event>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="beats"><beat/></act:send>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("start"))      # t=0, fires at 2, 4, ...
        deployment.tick(5.0)                    # now=5 → beats at 2 and 4
        assert len(deployment.runtime.messages("beats")) == 2
        deployment.stream.emit(E("stop"))       # closes the window
        deployment.tick(10.0)
        assert len(deployment.runtime.messages("beats")) == 2

    def test_tick_without_open_window_is_silent(self):
        deployment = standard_deployment()
        ECAEngine(deployment.grh)
        deployment.tick(100.0)
        assert deployment.runtime.mailboxes == {}
