"""Per-rule and global instance retention caps, and eviction accounting."""

from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event
from repro.obs import Observability
from repro.services import standard_deployment

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
ACT = 'xmlns:act="http://www.semwebtech.org/languages/2006/actions"'


def rule(rule_id: str) -> str:
    return f"""
<eca:rule {ECA} id="{rule_id}">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}" person="{{Person}}"/>
  </eca:event>
  <eca:action>
    <act:send {ACT} to="sink"><seen p="{{Person}}"/></act:send>
  </eca:action>
</eca:rule>
"""


def build(**engine_options):
    deployment = standard_deployment()
    engine = ECAEngine(deployment.grh, **engine_options)
    return engine, deployment.stream


class TestPerRuleCap:
    def test_cap_bounds_instances_of(self):
        engine, stream = build(max_instances_per_rule=3)
        engine.register_rule(rule("a"))
        for _ in range(10):
            stream.emit(booking_event())
        kept = engine.instances_of("a")
        assert len(kept) == 3
        # newest survive, oldest are dropped first
        assert [instance.instance_id for instance in kept] == [8, 9, 10]
        assert len(engine.instances) == 3

    def test_caps_are_per_rule_not_global(self):
        engine, stream = build(max_instances_per_rule=2)
        engine.register_rule(rule("a"))
        engine.register_rule(rule("b"))
        for _ in range(5):
            stream.emit(booking_event())   # each booking triggers both
        assert len(engine.instances_of("a")) == 2
        assert len(engine.instances_of("b")) == 2
        assert len(engine.instances) == 4

    def test_evicted_instances_still_count_in_stats(self):
        engine, stream = build(max_instances_per_rule=2)
        engine.register_rule(rule("a"))
        for _ in range(7):
            stream.emit(booking_event())
        assert engine.stats["instances"] == 7
        assert engine.stats["completed"] == 7
        assert engine.stats["evicted"] == 5

    def test_evictions_surface_in_metrics(self):
        obs = Observability()
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh, max_instances_per_rule=1,
                           observability=obs)
        engine.register_rule(rule("a"))
        for _ in range(4):
            deployment.stream.emit(booking_event())
        text = obs.render_prometheus()
        assert "eca_instances_evicted_total 3" in text
        assert "eca_rule_instances_total 4" in text
        assert "eca_kept_instances 1" in text


class TestGlobalCap:
    def test_global_cap_still_enforced(self):
        engine, stream = build(max_kept_instances=4)
        engine.register_rule(rule("a"))
        for _ in range(9):
            stream.emit(booking_event())
        assert len(engine.instances) == 4
        assert engine.stats["evicted"] == 5

    def test_global_eviction_keeps_per_rule_index_consistent(self):
        engine, stream = build(max_kept_instances=3)
        engine.register_rule(rule("a"))
        engine.register_rule(rule("b"))
        for _ in range(4):
            stream.emit(booking_event())
        # 8 instances created, 3 retained; the per-rule views must
        # agree exactly with the global list
        assert len(engine.instances) == 3
        per_rule = engine.instances_of("a") + engine.instances_of("b")
        assert sorted(instance.instance_id for instance in per_rule) == \
            sorted(instance.instance_id for instance in engine.instances)

    def test_both_caps_together(self):
        engine, stream = build(max_kept_instances=5,
                               max_instances_per_rule=2)
        engine.register_rule(rule("a"))
        engine.register_rule(rule("b"))
        for _ in range(6):
            stream.emit(booking_event())
        assert len(engine.instances_of("a")) <= 2
        assert len(engine.instances_of("b")) <= 2
        assert len(engine.instances) <= 5
        assert engine.stats["instances"] == 12


class TestUnbounded:
    def test_default_keeps_everything(self):
        engine, stream = build()
        engine.register_rule(rule("a"))
        for _ in range(5):
            stream.emit(booking_event())
        assert len(engine.instances) == 5
        assert engine.stats["evicted"] == 0

    def test_keep_instances_false_keeps_nothing(self):
        engine, stream = build(keep_instances=False)
        engine.register_rule(rule("a"))
        stream.emit(booking_event())
        assert engine.instances == []
        assert engine.instances_of("a") == []
        assert engine.stats["instances"] == 1

    def test_instances_of_falls_back_without_index(self):
        # code that appends to engine.instances directly (monitoring
        # shims, old tests) still gets answers from the slow path
        from repro.bindings import Relation
        from repro.core.engine import RuleInstance
        engine, _ = build()
        engine.instances.append(RuleInstance(99, "ghost", Relation.unit()))
        (found,) = engine.instances_of("ghost")
        assert found.instance_id == 99
