"""The rule repository: rules as queryable Semantic-Web objects."""

import pytest

from repro.core import (ECAEngine, RepositoryError, RuleRepository,
                        parse_rule)
from repro.domain import CAR_RENTAL_RULE, booking_event, classes_document, \
    fleet_document, persons_document
from repro.events import SNOOP_NS
from repro.services import XQ_LANG, standard_deployment
from repro.xmlmodel import ECA_NS

ECA = f'xmlns:eca="{ECA_NS}"'

SNOOP_RULE = f"""
<eca:rule {ECA} id="composite">
  <eca:event>
    <snoop:seq xmlns:snoop="{SNOOP_NS}"><a/><b/></snoop:seq>
  </eca:event>
  <eca:action><out/></eca:action>
</eca:rule>
"""


class TestStoreAndLoad:
    def test_store_load_roundtrip(self):
        repository = RuleRepository()
        repository.store(CAR_RENTAL_RULE)
        loaded = repository.load("car-rental-offer")
        original = parse_rule(CAR_RENTAL_RULE)
        assert loaded.rule_id == original.rule_id
        assert [q.bind_to for q in loaded.queries] == \
            [q.bind_to for q in original.queries]
        assert loaded.languages() == original.languages()

    def test_duplicate_store_rejected(self):
        repository = RuleRepository()
        repository.store(SNOOP_RULE)
        with pytest.raises(RepositoryError, match="already stored"):
            repository.store(SNOOP_RULE)

    def test_load_unknown_rule(self):
        with pytest.raises(RepositoryError, match="no stored rule"):
            RuleRepository().load("ghost")

    def test_rule_ids_sorted(self):
        repository = RuleRepository()
        repository.store(SNOOP_RULE)
        repository.store(CAR_RENTAL_RULE)
        assert repository.rule_ids() == ["car-rental-offer", "composite"]
        assert len(repository) == 2

    def test_remove(self):
        repository = RuleRepository()
        repository.store(SNOOP_RULE)
        assert repository.remove("composite") is True
        assert repository.rule_ids() == []
        assert repository.remove("composite") is False
        assert len(repository.graph) == 0


class TestSemanticQueries:
    def test_rules_using_language(self):
        repository = RuleRepository()
        repository.store(CAR_RENTAL_RULE)
        repository.store(SNOOP_RULE)
        assert repository.rules_using_language(SNOOP_NS) == ["composite"]
        assert repository.rules_using_language(XQ_LANG) == \
            ["car-rental-offer"]
        assert repository.rules_using_language("urn:nothing") == []


class TestEngineIntegration:
    def test_register_all_into_running_engine(self):
        deployment = standard_deployment()
        deployment.add_document("persons.xml", persons_document())
        deployment.add_document("classes.xml", classes_document())
        deployment.add_document("fleet.xml", fleet_document())
        engine = ECAEngine(deployment.grh)

        repository = RuleRepository()
        repository.store(CAR_RENTAL_RULE)
        registered = repository.register_all(engine)
        assert registered == ["car-rental-offer"]

        deployment.stream.emit(booking_event())
        messages = deployment.runtime.messages("customer-notifications")
        assert len(messages) == 1
        assert messages[0].content.get("car") == "Polo"
