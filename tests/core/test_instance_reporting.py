"""RuleInstance introspection: trace_table() and to_xml() reports."""

from repro.bindings import Relation
from repro.core.engine import RuleInstance
from repro.xmlmodel import LOG_NS, QName, parse, serialize


def make_instance():
    instance = RuleInstance(7, "offers", Relation.unit())
    instance.record("event", Relation([{"Person": "John Doe",
                                        "To": "Paris"}]))
    instance.record("query 1", Relation([
        {"Person": "John Doe", "To": "Paris", "Class": "B"},
        {"Person": "John Doe", "To": "Paris", "Class": "C"}]))
    instance.record("test", Relation([
        {"Person": "John Doe", "To": "Paris", "Class": "B"}]))
    instance.record("action", Relation([
        {"Person": "John Doe", "To": "Paris", "Class": "B"}]))
    instance.status = "completed"
    instance.actions_executed = 1
    return instance


class TestTraceTable:
    def test_stages_render_in_evaluation_order(self):
        text = make_instance().trace_table()
        positions = [text.index(f"-- after {stage} --")
                     for stage in ("event", "query 1", "test", "action")]
        assert positions == sorted(positions)

    def test_relations_render_as_tables(self):
        text = make_instance().trace_table()
        assert "John Doe" in text
        assert "Person" in text and "Class" in text

    def test_empty_relation_stage_renders(self):
        # a dead instance's last stage has no tuples; the block must
        # still appear rather than vanish from the audit trail
        instance = RuleInstance(1, "r", Relation.unit())
        instance.record("event", Relation([{"X": 1}]))
        instance.record("query 1", Relation([]))
        text = instance.trace_table()
        assert "-- after query 1 --" in text
        assert text.index("-- after event --") < \
            text.index("-- after query 1 --")

    def test_no_stages_no_text(self):
        assert RuleInstance(1, "r", Relation.unit()).trace_table() == ""


class TestToXml:
    def test_report_attributes(self):
        report = make_instance().to_xml()
        assert report.name == QName(LOG_NS, "instance")
        assert report.get("id") == "7"
        assert report.get("rule") == "offers"
        assert report.get("status") == "completed"
        assert report.get("actions") == "1"

    def test_stage_order_and_names(self):
        report = make_instance().to_xml()
        stages = report.findall(QName(LOG_NS, "stage"))
        assert [stage.get("name") for stage in stages] == \
            ["event", "query 1", "test", "action"]

    def test_stage_answers_are_sorted_relations(self):
        report = make_instance().to_xml()
        stages = report.findall(QName(LOG_NS, "stage"))
        query_stage = stages[1]
        (answers,) = query_stage.findall(QName(LOG_NS, "answers"))
        assert len(answers.findall(QName(LOG_NS, "answer"))) == 2

    def test_empty_relation_stage_has_empty_answers(self):
        instance = RuleInstance(1, "r", Relation.unit())
        instance.record("query 1", Relation([]))
        report = instance.to_xml()
        (stage,) = report.findall(QName(LOG_NS, "stage"))
        (answers,) = stage.findall(QName(LOG_NS, "answers"))
        assert answers.findall(QName(LOG_NS, "answer")) == []

    def test_error_and_events_sections(self):
        instance = RuleInstance(2, "r", Relation.unit())
        instance.status = "failed"
        instance.error = "service on fire"
        instance.triggering_events = (parse("<booking person='Jane'/>"),)
        report = instance.to_xml()
        (error,) = report.findall(QName(LOG_NS, "error"))
        assert error.text() == "service on fire"
        (events,) = report.findall(QName(LOG_NS, "events"))
        assert events.children[0].get("person") == "Jane"

    def test_report_round_trips_through_markup(self):
        report = make_instance().to_xml()
        assert parse(serialize(report)) == report
