"""Engine robustness: batch edge cases, atomic store+register, replay
attribution, and the priority-bucketed detection queue."""

import pytest

from repro.actions import ACTION_NS
from repro.core import (ECAEngine, EngineError, RuleRepository,
                        RuleValidationError)
from repro.core.engine import _DetectionQueue
from repro.grh import Detection
from repro.grh.resilience import DeadLetter
from repro.bindings import Binding, Relation
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS

ECA = f'xmlns:eca="{ECA_NS}"'
ACT = f'xmlns:act="{ACTION_NS}"'


def send_rule(rule_id="r1", event="ping", recipient="out", priority=None):
    attr = f' priority="{priority}"' if priority is not None else ""
    return f"""
    <eca:rule {ECA} id="{rule_id}"{attr}>
      <eca:event><{event} n="{{N}}"/></eca:event>
      <eca:action>
        <act:send {ACT} to="{recipient}"><pong n="{{N}}"/></act:send>
      </eca:action>
    </eca:rule>
    """


def failing_rule(rule_id="bad", event="boom"):
    return f"""
    <eca:rule {ECA} id="{rule_id}">
      <eca:event><{event} n="{{N}}"/></eca:event>
      <eca:action>
        <act:insert {ACT} document="missing" at="/x"><y/></act:insert>
      </eca:action>
    </eca:rule>
    """


@pytest.fixture()
def world():
    deployment = standard_deployment()
    return deployment, ECAEngine(deployment.grh)


class TestBatchEdgeCases:
    def test_exception_escaping_batch_still_drains_exactly_once(self, world):
        deployment, engine = world
        engine.register_rule(send_rule())
        with pytest.raises(RuntimeError, match="boom"):
            with engine.batch():
                deployment.stream.emit(E("ping", {"n": "1"}))
                assert engine.stats["instances"] == 0  # deferred
                raise RuntimeError("boom")
        # the queued detection was evaluated despite the exception
        assert engine.stats["instances"] == 1
        assert len(deployment.runtime.messages("out")) == 1
        assert engine._draining is False

    def test_nested_batch_defers_to_the_outermost(self, world):
        deployment, engine = world
        engine.register_rule(send_rule())
        with engine.batch():
            with engine.batch():
                deployment.stream.emit(E("ping", {"n": "1"}))
            # the inner exit must not drain: the outer batch is open
            assert engine.stats["instances"] == 0
            deployment.stream.emit(E("ping", {"n": "2"}))
        assert engine.stats["instances"] == 2
        assert engine._draining is False

    def test_emission_after_failed_batch_still_works(self, world):
        deployment, engine = world
        engine.register_rule(send_rule())
        with pytest.raises(ValueError):
            with engine.batch():
                raise ValueError()
        deployment.stream.emit(E("ping", {"n": "3"}))
        assert engine.stats["instances"] == 1


class TestRegisterAndStore:
    def test_success_registers_and_persists(self, world):
        _, engine = world
        repository = RuleRepository()
        assert engine.register_and_store(send_rule(), repository) == "r1"
        assert "r1" in engine.rules
        assert repository.rule_ids() == ["r1"]

    def test_validation_failure_rolls_back_the_store(self, world):
        _, engine = world
        repository = RuleRepository()
        bad = f"""
        <eca:rule {ECA} id="bad">
          <eca:event><ping/></eca:event>
          <eca:action><pong n="{{Unbound}}"/></eca:action>
        </eca:rule>"""
        with pytest.raises(RuleValidationError):
            engine.register_and_store(bad, repository)
        assert repository.rule_ids() == []
        assert "bad" not in engine.rules

    def test_duplicate_registration_rolls_back_the_store(self, world):
        _, engine = world
        repository = RuleRepository()
        engine.register_rule(send_rule())
        with pytest.raises(EngineError, match="already registered"):
            engine.register_and_store(send_rule(), repository)
        assert repository.rule_ids() == []

    def test_service_failure_rolls_back_the_store(self, world):
        from repro.grh import GRHError
        _, engine = world
        repository = RuleRepository()

        def unreachable(component_id, spec, idempotent=False):
            raise GRHError("event service unreachable")

        engine.grh.register_event_component = unreachable
        with pytest.raises(GRHError, match="unreachable"):
            engine.register_and_store(send_rule(), repository)
        assert repository.rule_ids() == []
        assert "r1" not in engine.rules


class TestReplayAttribution:
    def test_chained_failure_is_not_charged_to_the_replayed_letter(
            self, world):
        """A detection letter whose own rule succeeds on replay counts
        as succeeded, even when an instance it *chains into* fails."""
        deployment, engine = world
        engine.register_rule(f"""
        <eca:rule {ECA} id="chainer">
          <eca:event><ping n="{{N}}"/></eca:event>
          <eca:action>
            <act:raise {ACT}><boom n="{{N}}"/></act:raise>
          </eca:action>
        </eca:rule>""")
        engine.register_rule(failing_rule())
        detection = Detection("chainer::event", 0.0, 0.0,
                              Relation([Binding({"N": "1"})]), ())
        deployment.grh.resilience.dead_letters.append(DeadLetter(
            kind="detection", error="injected", detection=detection))
        summary = engine.replay_dead_letters()
        # the chainer completed; only the chained 'bad' instance failed
        assert summary["replayed"] == 1
        assert summary["succeeded"] == 1
        assert summary["failed"] == 0
        assert engine.stats["failed"] == 1  # the chained instance, globally
        statuses = {i.rule_id: i.status for i in engine.instances}
        assert statuses == {"chainer": "completed", "bad": "failed"}

    def test_letter_whose_own_rule_fails_counts_failed(self, world):
        deployment, engine = world
        engine.register_rule(failing_rule())
        detection = Detection("bad::event", 0.0, 0.0,
                              Relation([Binding({"N": "1"})]), ())
        deployment.grh.resilience.dead_letters.append(DeadLetter(
            kind="detection", error="injected", detection=detection))
        summary = engine.replay_dead_letters()
        assert summary["failed"] == 1
        assert summary["succeeded"] == 0

    def test_letter_for_deregistered_rule_counts_succeeded(self, world):
        deployment, engine = world
        detection = Detection("gone::event", 0.0, 0.0,
                              Relation([Binding({"N": "1"})]), ())
        deployment.grh.resilience.dead_letters.append(DeadLetter(
            kind="detection", error="injected", detection=detection))
        summary = engine.replay_dead_letters()
        assert summary == {"replayed": 1, "succeeded": 1, "failed": 0,
                           "actions": 0}


class TestDetectionQueue:
    def test_priority_order_with_fifo_within_level(self):
        queue = _DetectionQueue()
        order = [(0, "a"), (5, "b"), (0, "c"), (9, "d"), (5, "e")]
        for priority, tag in order:
            queue.push(priority, tag)
        assert len(queue) == 5
        popped = [queue.pop() for _ in range(len(queue))]
        assert popped == ["d", "b", "e", "a", "c"]
        assert not queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            _DetectionQueue().pop()

    def test_interleaved_push_pop_keeps_heap_consistent(self):
        queue = _DetectionQueue()
        queue.push(1, "a")
        queue.push(2, "b")
        assert queue.pop() == "b"
        queue.push(2, "c")
        queue.push(0, "d")
        assert [queue.pop() for _ in range(3)] == ["c", "a", "d"]

    def test_negative_priorities_sort_below_default(self):
        queue = _DetectionQueue()
        queue.push(-3, "low")
        queue.push(0, "mid")
        queue.push(3, "high")
        assert [queue.pop() for _ in range(3)] == ["high", "mid", "low"]

    def test_batched_emission_processes_by_priority(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        for rule_id, priority in (("p1", 1), ("p5", 5), ("p3", 3)):
            engine.register_rule(send_rule(rule_id, event=f"ev{priority}",
                                           recipient=rule_id,
                                           priority=priority))
        with engine.batch():
            deployment.stream.emit(E("ev1", {"n": "1"}))
            deployment.stream.emit(E("ev3", {"n": "1"}))
            deployment.stream.emit(E("ev5", {"n": "1"}))
        assert [i.rule_id for i in engine.instances] == ["p5", "p3", "p1"]
