"""The static binding-order check of Sec. 3 (Event < Query < Test < Action)."""

import pytest

from repro.core import (RuleValidationError, component_variables, parse_rule,
                        validate_rule)
from repro.grh import ComponentSpec
from repro.services import DATALOG_LANG, SPARQL_LANG
from repro.xmlmodel import ECA_NS, parse

ECA = f'xmlns:eca="{ECA_NS}"'


def rule(body: str) -> str:
    return f'<eca:rule {ECA} id="r">{body}</eca:rule>'


EVENT = '<eca:event><booking person="{Person}" to="{To}"/></eca:event>'


class TestComponentVariables:
    def test_event_produces_pattern_variables(self):
        spec = parse_rule(rule(
            EVENT + "<eca:action><a/></eca:action>")).event
        produces, consumes = component_variables(spec)
        assert produces == {"Person", "To"}
        assert consumes == set()

    def test_opaque_query_consumes_placeholders(self):
        spec = ComponentSpec("query", "exist-like",
                             opaque="//x[@p='{Person}'][@q='{To}']",
                             bind_to="V")
        produces, consumes = component_variables(spec)
        assert produces == {"V"}
        assert consumes == {"Person", "To"}

    def test_sparql_query_produces_select_variables(self):
        spec = ComponentSpec(
            "query", SPARQL_LANG,
            content=parse(f'<s:select xmlns:s="{SPARQL_LANG}">'
                          "SELECT ?Car ?Class WHERE { ?c ?p ?Class }"
                          "</s:select>"))
        produces, _ = component_variables(spec)
        assert {"Car", "Class"} <= produces

    def test_datalog_query_produces_goal_variables(self):
        spec = ComponentSpec(
            "query", DATALOG_LANG,
            content=parse(f'<d:query xmlns:d="{DATALOG_LANG}">'
                          "offer(Person, Car)</d:query>"))
        produces, _ = component_variables(spec)
        assert produces == {"Person", "Car"}

    def test_test_consumes_expression_variables(self):
        spec = parse_rule(rule(
            EVENT + "<eca:test>$Person != ''</eca:test>"
            "<eca:action><a/></eca:action>")).test
        produces, consumes = component_variables(spec)
        assert produces == set()
        assert consumes == {"Person"}

    def test_action_consumes_template_placeholders(self):
        spec = parse_rule(rule(
            EVENT + '<eca:action><offer to="{Person}"/></eca:action>')).actions[0]
        _, consumes = component_variables(spec)
        assert consumes == {"Person"}


class TestValidateRule:
    def test_valid_rule_passes(self):
        validate_rule(parse_rule(rule(
            EVENT +
            '<eca:variable name="Car"><eca:query>'
            '<eca:opaque language="l">//car[@p=\'{Person}\']</eca:opaque>'
            "</eca:query></eca:variable>"
            "<eca:test>$Car != ''</eca:test>"
            '<eca:action><offer car="{Car}" to="{Person}"/></eca:action>')))

    def test_action_using_unbound_variable_rejected(self):
        with pytest.raises(RuleValidationError, match="Ghost"):
            validate_rule(parse_rule(rule(
                EVENT + '<eca:action><offer car="{Ghost}"/></eca:action>')))

    def test_test_using_unbound_variable_rejected(self):
        with pytest.raises(RuleValidationError, match="Nope"):
            validate_rule(parse_rule(rule(
                EVENT + "<eca:test>$Nope = 1</eca:test>"
                "<eca:action><a/></eca:action>")))

    def test_query_using_unbound_variable_rejected(self):
        with pytest.raises(RuleValidationError, match="Later"):
            validate_rule(parse_rule(rule(
                EVENT +
                '<eca:query><eca:opaque language="l">//x[@k=\'{Later}\']'
                "</eca:opaque></eca:query>"
                "<eca:action><a/></eca:action>")))

    def test_binding_in_same_or_earlier_component_is_fine(self):
        validate_rule(parse_rule(rule(
            EVENT +
            '<eca:variable name="A"><eca:query>'
            "<eca:opaque language=\"l\">//x[@p='{Person}']</eca:opaque>"
            "</eca:query></eca:variable>"
            '<eca:variable name="B"><eca:query>'
            "<eca:opaque language=\"l\">//y[@a='{A}']</eca:opaque>"
            "</eca:query></eca:variable>"
            '<eca:action><z b="{B}"/></eca:action>')))

    def test_rebinding_variable_rejected(self):
        with pytest.raises(RuleValidationError, match="already bound"):
            validate_rule(parse_rule(rule(
                EVENT +
                '<eca:variable name="Person"><eca:query>'
                '<eca:opaque language="l">//x</eca:opaque>'
                "</eca:query></eca:variable>"
                "<eca:action><a/></eca:action>")))

    def test_unknown_producer_disables_downstream_errors(self):
        # the log:answers-generating query (Fig. 10) may produce anything
        validate_rule(parse_rule(rule(
            EVENT +
            '<eca:query><eca:opaque language="l">generate answers'
            "</eca:opaque></eca:query>"
            '<eca:action><offer car="{Avail}"/></eca:action>')))

    def test_join_variable_from_lp_query_allowed(self):
        validate_rule(parse_rule(rule(
            EVENT +
            f'<eca:query><s:select xmlns:s="{SPARQL_LANG}">'
            "SELECT ?Avail ?Class WHERE { ?c ?p ?Avail }</s:select>"
            "</eca:query>"
            "<eca:test>$Avail != $Person</eca:test>"
            '<eca:action><offer car="{Avail}"/></eca:action>')))

    def test_malformed_event_reported(self):
        from repro.events import SNOOP_NS
        with pytest.raises(RuleValidationError, match="malformed event"):
            validate_rule(parse_rule(rule(
                f'<eca:event><snoop:and xmlns:snoop="{SNOOP_NS}"><a/>'
                "</snoop:and></eca:event>"
                "<eca:action><a/></eca:action>")))

    def test_malformed_test_reported(self):
        with pytest.raises(RuleValidationError, match="malformed test"):
            validate_rule(parse_rule(rule(
                EVENT + "<eca:test>$Person =</eca:test>"
                "<eca:action><a/></eca:action>")))
