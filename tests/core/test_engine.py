"""Engine lifecycle: registration, instances, chaining, failure modes."""

import pytest

from repro.core import ECAEngine, EngineError, RuleValidationError, parse_rule
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS, parse

ECA = f'xmlns:eca="{ECA_NS}"'


def simple_rule(rule_id="r1", event="ping", action_recipient="out"):
    from repro.actions import ACTION_NS
    return f"""
    <eca:rule {ECA} id="{rule_id}">
      <eca:event><{event} n="{{N}}"/></eca:event>
      <eca:action>
        <act:send xmlns:act="{ACTION_NS}" to="{action_recipient}">
          <pong n="{{N}}"/>
        </act:send>
      </eca:action>
    </eca:rule>
    """


@pytest.fixture()
def world():
    deployment = standard_deployment()
    return deployment, ECAEngine(deployment.grh)


class TestRegistration:
    def test_register_returns_rule_id(self, world):
        deployment, engine = world
        assert engine.register_rule(simple_rule()) == "r1"
        assert "r1" in engine.rules

    def test_duplicate_rule_id_rejected(self, world):
        deployment, engine = world
        engine.register_rule(simple_rule())
        with pytest.raises(EngineError, match="already registered"):
            engine.register_rule(simple_rule())

    def test_validation_runs_at_registration(self, world):
        deployment, engine = world
        bad = f"""
        <eca:rule {ECA} id="bad">
          <eca:event><ping/></eca:event>
          <eca:action><pong n="{{Unbound}}"/></eca:action>
        </eca:rule>"""
        with pytest.raises(RuleValidationError):
            engine.register_rule(bad)
        # nothing was registered at the event service
        assert deployment.atomic_events.registered_ids == []

    def test_validation_can_be_disabled(self, world):
        deployment, engine = world
        engine.validate = False
        bad = f"""
        <eca:rule {ECA} id="bad">
          <eca:event><ping/></eca:event>
          <eca:action><pong n="{{Unbound}}"/></eca:action>
        </eca:rule>"""
        engine.register_rule(bad)  # registers; will fail at runtime
        deployment.stream.emit(E("ping"))
        (instance,) = engine.instances_of("bad")
        assert instance.status == "failed"
        assert "Unbound" in instance.error

    def test_deregister_stops_firing(self, world):
        deployment, engine = world
        engine.register_rule(simple_rule())
        deployment.stream.emit(E("ping", {"n": "1"}))
        engine.deregister_rule("r1")
        deployment.stream.emit(E("ping", {"n": "2"}))
        assert len(deployment.runtime.messages("out")) == 1

    def test_deregister_unknown_rule(self, world):
        deployment, engine = world
        with pytest.raises(EngineError, match="unknown rule"):
            engine.deregister_rule("ghost")

    def test_accepts_parsed_rule_and_element(self, world):
        deployment, engine = world
        engine.register_rule(parse_rule(simple_rule("r-parsed")))
        engine.register_rule(parse(simple_rule("r-element")))
        assert set(engine.rules) == {"r-parsed", "r-element"}


class TestInstanceLifecycle:
    def test_one_instance_per_detection(self, world):
        deployment, engine = world
        engine.register_rule(simple_rule())
        for n in range(3):
            deployment.stream.emit(E("ping", {"n": str(n)}))
        assert engine.stats["instances"] == 3
        assert engine.stats["completed"] == 3
        assert len(deployment.runtime.messages("out")) == 3

    def test_multiple_rules_same_event(self, world):
        deployment, engine = world
        engine.register_rule(simple_rule("a", action_recipient="box-a"))
        engine.register_rule(simple_rule("b", action_recipient="box-b"))
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert len(deployment.runtime.messages("box-a")) == 1
        assert len(deployment.runtime.messages("box-b")) == 1

    def test_instances_not_kept_when_disabled(self, world):
        deployment, engine = world
        engine.keep_instances = False
        engine.register_rule(simple_rule())
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert engine.instances == []
        assert engine.stats["completed"] == 1

    def test_test_component_filters(self, world):
        deployment, engine = world
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="guarded">
          <eca:event><ping n="{{N}}"/></eca:event>
          <eca:test>$N > 2</eca:test>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="out"><pong/></act:send>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("ping", {"n": "1"}))
        deployment.stream.emit(E("ping", {"n": "5"}))
        assert len(deployment.runtime.messages("out")) == 1
        statuses = sorted(i.status for i in engine.instances_of("guarded"))
        assert statuses == ["completed", "dead"]

    def test_remote_test_evaluation(self, world):
        deployment, engine = world
        engine.evaluate_tests_locally = False
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="guarded">
          <eca:event><ping n="{{N}}"/></eca:event>
          <eca:test>$N > 2</eca:test>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="out"><pong/></act:send>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("ping", {"n": "5"}))
        assert len(deployment.runtime.messages("out")) == 1


class TestRuleChaining:
    def test_action_raised_event_triggers_next_rule(self, world):
        deployment, engine = world
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="first">
          <eca:event><ping n="{{N}}"/></eca:event>
          <eca:action>
            <act:raise xmlns:act="{ACTION_NS}"><relay n="{{N}}"/></act:raise>
          </eca:action>
        </eca:rule>""")
        engine.register_rule(simple_rule("second", event="relay"))
        deployment.stream.emit(E("ping", {"n": "7"}))
        messages = deployment.runtime.messages("out")
        assert len(messages) == 1
        assert messages[0].content.get("n") == "7"

    def test_chaining_does_not_recurse_unboundedly(self, world):
        deployment, engine = world
        from repro.actions import ACTION_NS
        # ping → relay → out; only two hops exist, but the queue-based
        # drain means even this self-triggering rule terminates per event
        engine.register_rule(f"""
        <eca:rule {ECA} id="decrement">
          <eca:event><count n="{{N}}"/></eca:event>
          <eca:test>$N > 0</eca:test>
          <eca:action>
            <act:raise xmlns:act="{ACTION_NS}"><done n="{{N}}"/></act:raise>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("count", {"n": "3"}))
        assert engine.stats["completed"] == 1


class TestInstanceRetention:
    def test_max_kept_instances_caps_memory(self, world):
        deployment, engine = world
        engine.max_kept_instances = 3
        engine.register_rule(simple_rule())
        for n in range(10):
            deployment.stream.emit(E("ping", {"n": str(n)}))
        assert len(engine.instances) == 3
        # the retained instances are the most recent ones
        kept = [instance.instance_id for instance in engine.instances]
        assert kept == sorted(kept)
        assert engine.stats["instances"] == 10

    def test_unbounded_by_default(self, world):
        deployment, engine = world
        engine.register_rule(simple_rule())
        for n in range(5):
            deployment.stream.emit(E("ping", {"n": str(n)}))
        assert len(engine.instances) == 5


class TestInstanceReport:
    def test_to_xml_contains_outcome_and_stages(self, world):
        deployment, engine = world
        engine.register_rule(simple_rule())
        deployment.stream.emit(E("ping", {"n": "7"}))
        (instance,) = engine.instances
        report = instance.to_xml()
        assert report.get("rule") == "r1"
        assert report.get("status") == "completed"
        assert report.get("actions") == "1"
        from repro.xmlmodel import LOG_NS, QName, parse, serialize
        stages = report.findall(QName(LOG_NS, "stage"))
        assert [s.get("name") for s in stages] == ["event", "action"]
        events = report.find(QName(LOG_NS, "events"))
        assert events.elements().__next__().get("n") == "7"
        # the report serializes and reparses
        assert parse(serialize(report)).get("status") == "completed"

    def test_failed_instance_report_carries_error(self, world):
        deployment, engine = world
        engine.validate = False
        engine.register_rule(f"""
        <eca:rule {ECA} id="broken">
          <eca:event><ping/></eca:event>
          <eca:action><x v="{{Nope}}"/></eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("ping"))
        (instance,) = engine.instances
        report = instance.to_xml()
        assert report.get("status") == "failed"
        from repro.xmlmodel import LOG_NS, QName
        assert "Nope" in report.find(QName(LOG_NS, "error")).text()
