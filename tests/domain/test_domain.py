"""Domain data, event constructors and synthetic workload generation."""

from repro.bindings import Relation
from repro.core import parse_rule
from repro.domain import (CAR_RENTAL_RULE, TRAVEL_NS, WorkloadConfig,
                          booking_event, booking_payloads, classes_document,
                          fleet_document, fleet_graph,
                          full_pipeline_rule_markup, persons_document,
                          simple_rule_markup, synthetic_classes,
                          synthetic_fleet, synthetic_persons)
from repro.rdf import Namespace
from repro.xmlmodel import QName
from repro.xpath import evaluate


class TestPaperWorld:
    def test_booking_event_matches_fig6(self):
        event = booking_event()
        assert event.name == QName(TRAVEL_NS, "booking")
        assert event.get("person") == "John Doe"
        assert event.get("from") == "Munich"
        assert event.get("to") == "Paris"

    def test_john_doe_owns_golf_and_passat(self):
        models = [n.text() for n in evaluate(
            "//person[@name='John Doe']/car/model", persons_document())]
        assert models == ["Golf", "Passat"]

    def test_classes_match_paper(self):
        doc = classes_document()
        assert evaluate("string(//entry[@model='Golf']/@class)", doc) == "B"
        assert evaluate("string(//entry[@model='Passat']/@class)", doc) == "C"

    def test_paris_fleet_has_classes_b_and_d(self):
        classes = {node.value for node in evaluate(
            "//car[@location='Paris']/@class", fleet_document())}
        assert classes == {"B", "D"}

    def test_fleet_graph_agrees_with_fleet_document(self):
        fleet = Namespace("http://example.org/fleet#")
        graph = fleet_graph()
        doc = fleet_document()
        for car in evaluate("//car", doc):
            subject = fleet[car.get("id")]
            assert str(graph.value(subject, fleet.model)) \
                .strip('"') in (car.get("model"),
                                graph.value(subject, fleet.model).lexical)
            assert graph.value(subject, fleet.carClass).lexical == \
                car.get("class")

    def test_rule_markup_is_valid(self):
        rule = parse_rule(CAR_RENTAL_RULE)
        from repro.core import validate_rule
        validate_rule(rule)


class TestWorkloadGenerators:
    def test_persons_scale(self):
        config = WorkloadConfig(persons=25, cars_per_person=3)
        doc = synthetic_persons(config)
        assert len(doc.findall("person")) == 25
        assert all(len(p.findall("car")) == 3 for p in doc.elements())

    def test_deterministic_under_seed(self):
        config = WorkloadConfig(persons=10, seed=42)
        from repro.xmlmodel import canonicalize
        assert canonicalize(synthetic_persons(config)) == \
            canonicalize(synthetic_persons(config))
        assert canonicalize(synthetic_fleet(config)) == \
            canonicalize(synthetic_fleet(config))

    def test_different_seeds_differ(self):
        from repro.xmlmodel import canonicalize
        first = synthetic_fleet(WorkloadConfig(seed=1, fleet_size=20))
        second = synthetic_fleet(WorkloadConfig(seed=2, fleet_size=20))
        assert canonicalize(first) != canonicalize(second)

    def test_classes_cover_all_models(self):
        doc = synthetic_classes()
        models = {entry.get("model") for entry in doc.elements()}
        fleet = synthetic_fleet(WorkloadConfig(fleet_size=30))
        assert {car.get("model") for car in fleet.elements()} <= models

    def test_booking_payloads(self):
        config = WorkloadConfig(persons=5, cities=2)
        payloads = booking_payloads(config, 10)
        assert len(payloads) == 10
        assert all(p.name == QName(TRAVEL_NS, "booking") for p in payloads)

    def test_generated_rules_parse_and_validate(self):
        from repro.core import validate_rule
        validate_rule(parse_rule(simple_rule_markup("s1")))
        validate_rule(parse_rule(full_pipeline_rule_markup("f1")))


class TestEndToEndSyntheticWorkload:
    def test_full_pipeline_rule_on_synthetic_world(self):
        from repro.core import ECAEngine
        from repro.services import standard_deployment
        config = WorkloadConfig(persons=10, fleet_size=20, cities=2)
        deployment = standard_deployment()
        deployment.add_document("persons.xml", synthetic_persons(config))
        deployment.add_document("classes.xml", synthetic_classes())
        deployment.add_document("fleet.xml", synthetic_fleet(config))
        engine = ECAEngine(deployment.grh)
        engine.register_rule(full_pipeline_rule_markup("bench"))
        for payload in booking_payloads(config, 20):
            deployment.stream.emit(payload)
        assert engine.stats["instances"] == 20
        assert engine.stats["completed"] + engine.stats["dead"] == 20
