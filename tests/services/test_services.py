"""Unit tests of the component-language services."""

import pytest

from repro.bindings import Relation, Uri, answers_to_relation
from repro.domain import (classes_document, fleet_graph, persons_document)
from repro.grh import (Request, error_text, is_error, request_to_xml,
                       xml_to_detection)
from repro.services import (ActionExecutionService, AtomicEventService,
                            DatalogService, ExistLikeService, SnoopService,
                            SparqlService, TestLanguageService, XQService)
from repro.xmlmodel import E, parse, serialize


def query_request(content_markup, bindings=None, component_id="r::q"):
    return request_to_xml(Request(
        "query", component_id, parse(content_markup),
        Relation(bindings or [{}])))


class TestXQService:
    def test_per_tuple_functional_results(self):
        service = XQService({"persons.xml": persons_document()})
        response = service.handle(query_request(
            "<q>for $c in doc('persons.xml')//person[@name = $Person]/car "
            "return $c/model/text()</q>",
            bindings=[{"Person": "John Doe"}, {"Person": "Jane Roe"}]))
        assert not is_error(response)
        # two answers (one per input tuple); results inside
        answers = list(response.elements())
        assert len(answers) == 2

    def test_syntax_error_reported_as_message(self):
        service = XQService()
        response = service.handle(query_request("<q>for $x in</q>"))
        assert is_error(response)
        assert "xq-lite" in error_text(response)

    def test_unsupported_kind(self):
        service = XQService()
        response = service.handle(request_to_xml(
            Request("action", "r::a", parse("<a/>"), Relation.unit())))
        assert is_error(response)


class TestExistLikeService:
    def test_plain_string_interface(self):
        service = ExistLikeService({"classes.xml": classes_document()})
        result = service.execute(
            "doc('classes.xml')//entry[@model = 'Golf']/@class")
        assert result == "B"

    def test_element_results_serialized(self):
        service = ExistLikeService({"classes.xml": classes_document()})
        result = service.execute("doc('classes.xml')//entry[@class = 'B']")
        assert result.count("<entry") == 2

    def test_request_log_records_queries(self):
        service = ExistLikeService({"classes.xml": classes_document()})
        service.execute("doc('classes.xml')//entry[1]")
        assert len(service.request_log) == 1


class TestSparqlService:
    def test_lp_style_relation(self):
        service = SparqlService(fleet_graph(),
                                prefixes={"fleet":
                                          "http://example.org/fleet#"})
        response = service.handle(query_request(
            "<q>SELECT ?Avail ?Class WHERE { "
            "?c fleet:location 'Paris' ; fleet:model ?Avail ; "
            "fleet:carClass ?Class }</q>"))
        relation = answers_to_relation(response)
        assert {(b["Avail"], b["Class"]) for b in relation} == {
            ("Polo", "B"), ("Espace", "D")}

    def test_uri_terms_become_uri_values(self):
        service = SparqlService(fleet_graph())
        response = service.handle(query_request(
            "<q>PREFIX fleet: &lt;http://example.org/fleet#&gt; "
            "SELECT ?Car WHERE { ?Car fleet:location 'Paris' }</q>"))
        relation = answers_to_relation(response)
        assert all(isinstance(b["Car"], Uri) for b in relation)

    def test_bad_query_reported(self):
        service = SparqlService(fleet_graph())
        assert is_error(service.handle(query_request("<q>SELECT</q>")))


class TestDatalogService:
    PROGRAM = """
        owns("John Doe", golf). owns("John Doe", passat).
        class(golf, "B"). class(passat, "C").
        owned_class(P, K) :- owns(P, C), class(C, K).
    """

    def test_goal_evaluation(self):
        service = DatalogService(self.PROGRAM)
        response = service.handle(query_request(
            '<q>owned_class("John Doe", K)</q>'))
        relation = answers_to_relation(response)
        assert {b["K"] for b in relation} == {"B", "C"}

    def test_add_facts_invalidates_engine(self):
        service = DatalogService(self.PROGRAM)
        service.handle(query_request('<q>owns(P, C)</q>'))
        service.add_facts('owns("Jane Roe", clio).')
        response = service.handle(query_request('<q>owns("Jane Roe", C)</q>'))
        assert len(answers_to_relation(response)) == 1

    def test_bad_goal_reported(self):
        service = DatalogService(self.PROGRAM)
        assert is_error(service.handle(query_request("<q>BadGoal(</q>")))


class TestTestService:
    def test_filters_bindings(self):
        service = TestLanguageService()
        response = service.handle(request_to_xml(Request(
            "test", "r::t", parse("<t>$Class = 'B'</t>"),
            Relation([{"Class": "B"}, {"Class": "C"}]))))
        relation = answers_to_relation(response)
        assert len(relation) == 1

    def test_bad_expression_reported(self):
        service = TestLanguageService()
        response = service.handle(request_to_xml(Request(
            "test", "r::t", parse("<t>$X =</t>"), Relation.unit())))
        assert is_error(response)


class TestActionService:
    def test_executes_per_tuple_in_request(self):
        service = ActionExecutionService()
        response = service.handle(request_to_xml(Request(
            "action", "r::a", parse('<offer car="{Car}"/>'),
            Relation([{"Car": "Polo"}]))))
        assert not is_error(response)
        assert service.executed == 1
        assert len(service.runtime.messages("default")) == 1

    def test_template_error_reported(self):
        service = ActionExecutionService()
        response = service.handle(request_to_xml(Request(
            "action", "r::a", parse('<offer car="{Ghost}"/>'),
            Relation([{"Car": "Polo"}]))))
        assert is_error(response)


class TestEventServices:
    def test_register_detect_signal(self):
        signals = []
        service = AtomicEventService(signals.append)
        service.handle(request_to_xml(Request(
            "register-event", "r::event",
            parse('<booking person="{P}"/>'), Relation.unit())))
        from repro.events import EventStream
        stream = EventStream()
        service.attach(stream)
        stream.emit(E("booking", {"person": "John Doe"}))
        assert len(signals) == 1
        detection = xml_to_detection(signals[0])
        assert detection.component_id == "r::event"
        (binding,) = detection.bindings
        assert binding["P"] == "John Doe"

    def test_duplicate_registration_rejected(self):
        service = AtomicEventService(lambda x: None)
        message = request_to_xml(Request(
            "register-event", "r::event", parse("<e/>"), Relation.unit()))
        assert not is_error(service.handle(message))
        assert is_error(service.handle(message))

    def test_unregister_stops_detection(self):
        signals = []
        service = AtomicEventService(signals.append)
        service.handle(request_to_xml(Request(
            "register-event", "r::event", parse("<e/>"), Relation.unit())))
        service.handle(request_to_xml(Request(
            "unregister-event", "r::event", None, Relation.unit())))
        from repro.events import Event
        service.feed(Event(E("e"), 0))
        assert signals == []

    def test_snoop_service_composite(self):
        signals = []
        service = SnoopService(signals.append)
        from repro.events import SNOOP_NS
        service.handle(request_to_xml(Request(
            "register-event", "r::event",
            parse(f'<snoop:seq xmlns:snoop="{SNOOP_NS}"><a/><b/></snoop:seq>'),
            Relation.unit())))
        from repro.events import Event
        service.feed(Event(E("a"), 0))
        service.feed(Event(E("b"), 1))
        assert len(signals) == 1
        detection = xml_to_detection(signals[0])
        assert detection.start == 0 and detection.end == 1

    def test_poll_drives_periodic(self):
        signals = []
        service = SnoopService(signals.append)
        from repro.events import SNOOP_NS, Event
        service.handle(request_to_xml(Request(
            "register-event", "r::event",
            parse(f'<snoop:periodic xmlns:snoop="{SNOOP_NS}" period="2">'
                  "<a/><c/></snoop:periodic>"), Relation.unit())))
        service.feed(Event(E("a"), 0.0))
        service.poll(5.0)
        assert len(signals) == 2
