"""PooledHttpTransport: keep-alive reuse, pool bounds, reconnects —
and the PROTOCOL.md §11 failure taxonomy on both HTTP transports."""

import http.client
import socket
import threading
import time

import pytest

from repro.bindings import Relation, relation_to_answers
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry, ResilienceManager, RetryPolicy)
from repro.grh.handler import GRHError
from repro.grh.messages import Request, request_to_xml
from repro.grh.resilience import BreakerPolicy
from repro.services import (HttpServiceServer, HttpTransport,
                            PooledHttpTransport, ServiceStatusError,
                            TransportError)
from repro.services.transports import _raise_for_status
from repro.xmlmodel import parse, serialize


def _ok_handler(message):
    return relation_to_answers(Relation([{"Q": "fine"}]))


class _RawHttpServer:
    """A scripted raw-socket HTTP/1.1 server for failure-shape tests.

    ``responses`` is a list of ``(status_line_suffix, body)`` tuples or
    the sentinel ``"close"`` (hang up without answering).  When
    ``close_after_each`` is set the socket is dropped after every
    response while *advertising* keep-alive — exactly the stale-socket
    shape the pooled transport must survive.
    """

    def __init__(self, responses=None, close_after_each=False):
        self.responses = list(responses or [])
        self.close_after_each = close_after_each
        self.requests_served = 0
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._stop = False
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def start(self):
        self._thread.start()
        host, port = self._sock.getsockname()
        return f"http://{host}:{port}/"

    def stop(self):
        self._stop = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def _serve(self):
        while not self._stop:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    def _read_request(self, conn):
        conn.settimeout(5.0)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(rest) < length:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            rest += chunk
        return True

    def _handle(self, conn):
        try:
            while self._read_request(conn):
                script = (self.responses.pop(0) if self.responses
                          else ("200 OK", "<ok/>"))
                if script == "close":
                    return
                status_line, body = script
                payload = body.encode("utf-8")
                # count before the write: the client can otherwise read
                # the response and assert on the counter before this
                # thread is scheduled again
                self.requests_served += 1
                conn.sendall(
                    f"HTTP/1.1 {status_line}\r\n"
                    f"Content-Type: application/xml\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"\r\n".encode("ascii") + payload)
                if self.close_after_each:
                    return
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass


def _single_pool_stats(transport):
    (stats,) = transport.pool_stats().values()
    return stats


class TestKeepAliveReuse:
    def test_sequential_sends_share_one_connection(self):
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            transport = PooledHttpTransport()
            try:
                for _ in range(5):
                    response = transport.send(url, parse("<ping/>"))
                    assert "Q" in serialize(response)
                stats = _single_pool_stats(transport)
                assert stats["created"] == 1
                assert stats["reused"] == 4
                assert stats["idle"] == 1 and stats["in_use"] == 0
            finally:
                transport.close()

    def test_fetch_reuses_too(self):
        with HttpServiceServer(opaque_handler=lambda q: f"got {q}") as url:
            transport = PooledHttpTransport()
            try:
                assert transport.fetch(url, "a") == "got a"
                assert transport.fetch(url, "b") == "got b"
                assert _single_pool_stats(transport)["reused"] == 1
            finally:
                transport.close()

    def test_batch_rides_a_warm_connection(self):
        from repro.grh.messages import batch_to_xml, xml_to_batch_results
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            transport = PooledHttpTransport()
            try:
                transport.send(url, parse("<warmup/>"))
                payloads = [request_to_xml(
                    Request("query", f"c{n}", None,
                            Relation([{"N": str(n)}])))
                    for n in range(3)]
                response = transport.send_batch(url, batch_to_xml(payloads))
                assert len(xml_to_batch_results(response, expected=3)) == 3
                assert _single_pool_stats(transport)["created"] == 1
            finally:
                transport.close()

    def test_close_then_reuse_builds_a_new_pool(self):
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            transport = PooledHttpTransport()
            transport.send(url, parse("<a/>"))
            transport.close()
            assert transport.pool_stats() == {}
            transport.send(url, parse("<b/>"))
            assert _single_pool_stats(transport)["created"] == 1
            transport.close()


class TestPoolBounds:
    def test_exhaustion_raises_within_wait_budget(self):
        release = threading.Event()

        def slow_handler(message):
            release.wait(5.0)
            return parse("<ok/>")

        with HttpServiceServer(aware_handler=slow_handler) as url:
            transport = PooledHttpTransport(timeout=0.4, max_per_endpoint=1)
            try:
                errors = []

                def occupy():
                    try:
                        transport.send(url, parse("<slow/>"), timeout=5.0)
                    except TransportError as exc:
                        errors.append(exc)

                first = threading.Thread(target=occupy, daemon=True)
                first.start()
                deadline = time.monotonic() + 2.0
                while time.monotonic() < deadline:
                    stats = transport.pool_stats()
                    if stats and _single_pool_stats(transport)["in_use"]:
                        break
                    time.sleep(0.01)
                with pytest.raises(TransportError, match="exhausted"):
                    transport.send(url, parse("<second/>"))
                release.set()
                first.join(5.0)
                assert not errors
            finally:
                release.set()
                transport.close()

    def test_idle_connections_are_reaped(self):
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            transport = PooledHttpTransport(idle_timeout=0.05)
            try:
                transport.send(url, parse("<a/>"))
                time.sleep(0.15)
                transport.send(url, parse("<b/>"))
                stats = _single_pool_stats(transport)
                assert stats["reaped"] == 1
                assert stats["created"] == 2
                assert stats["reused"] == 0
            finally:
                transport.close()


class TestStaleSocketReconnect:
    def test_server_hangup_between_requests_is_transparent(self):
        # the server advertises keep-alive but drops the socket after
        # every response: each reused connection is stale, and each
        # send must recover on one fresh reconnect
        server = _RawHttpServer(close_after_each=True)
        with server as url:
            transport = PooledHttpTransport(timeout=5.0)
            try:
                for _ in range(3):
                    assert transport.send(
                        url, parse("<ping/>")).name.local == "ok"
                stats = _single_pool_stats(transport)
                # every request was eventually served on its own fresh
                # connection; stale sockets were retired, not surfaced
                assert stats["retired"] >= 2
                assert server.requests_served == 3
            finally:
                transport.close()

    def test_fresh_connection_failure_is_not_retried(self):
        # hang up without answering on a *new* connection: no silent
        # retry — the §6 resilience layer owns that decision
        server = _RawHttpServer(responses=["close"])
        with server as url:
            transport = PooledHttpTransport(timeout=2.0)
            try:
                with pytest.raises(TransportError, match="cannot reach"):
                    transport.send(url, parse("<ping/>"))
                assert server.connections == 1
            finally:
                transport.close()


class TestHttpStatusTaxonomy:
    @pytest.mark.parametrize("transport_cls",
                             [HttpTransport, PooledHttpTransport])
    def test_service_exception_is_service_reported(self, transport_cls):
        def handler(message):
            raise RuntimeError("deterministic boom")

        with HttpServiceServer(aware_handler=handler) as url:
            transport = transport_cls()
            with pytest.raises(ServiceStatusError) as excinfo:
                transport.send(url, parse("<x/>"))
            assert excinfo.value.status == 500
            assert excinfo.value.service_reported
            # the log:error body carries the service's own message
            assert "deterministic boom" in str(excinfo.value)

    @pytest.mark.parametrize("transport_cls",
                             [HttpTransport, PooledHttpTransport])
    @pytest.mark.parametrize("status_line", ["502 Bad Gateway",
                                             "503 Service Unavailable",
                                             "504 Gateway Timeout"])
    def test_gateway_statuses_stay_transient(self, transport_cls,
                                             status_line):
        server = _RawHttpServer(responses=[(status_line, "down")])
        with server as url:
            transport = transport_cls(timeout=2.0)
            with pytest.raises(TransportError) as excinfo:
                transport.send(url, parse("<x/>"))
            assert not isinstance(excinfo.value, ServiceStatusError)
            assert not getattr(excinfo.value, "service_reported", False)

    def test_raise_for_status_prefers_log_error_body(self):
        from repro.grh.messages import error_message
        body = serialize(error_message("storage exploded"))
        with pytest.raises(ServiceStatusError, match="storage exploded"):
            _raise_for_status("http://x/", 500, "Internal Server Error",
                              body)

    def test_raise_for_status_falls_back_to_status_text(self):
        with pytest.raises(ServiceStatusError, match="HTTP 404"):
            _raise_for_status("http://x/", 404, "Not Found", "nope")


def _grh_for(url, resilience):
    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, PooledHttpTransport(timeout=5.0),
                                resilience=resilience)
    grh.add_remote_language(
        LanguageDescriptor("urn:test:tax", "query", "tax"), url)
    return grh, registry.lookup("urn:test:tax")


def _query(n=0):
    return Request("query", f"c{n}", None, Relation([{"N": str(n)}]))


class Test500NotRetried:
    """The ISSUE's regression: an HTTP 500 is the service's own report
    and must not be retried (or breaker-counted) by default."""

    def test_500_raising_service_called_exactly_once(self):
        calls = []

        def handler(message):
            calls.append(1)
            raise RuntimeError("always fails")

        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                    sleep=lambda s: None)
        with HttpServiceServer(aware_handler=handler) as url:
            grh, descriptor = _grh_for(url, manager)
            with pytest.raises(GRHError, match="reported"):
                grh._send(descriptor, _query())
        assert len(calls) == 1          # NOT retried
        assert manager.retries == 0

    def test_500_retried_when_policy_opts_in(self):
        calls = []

        def handler(message):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("fails twice")
            return relation_to_answers(Relation([{"Q": "ok"}]))

        manager = ResilienceManager(
            retry=RetryPolicy(max_attempts=3, retry_on_service_errors=True),
            sleep=lambda s: None)
        with HttpServiceServer(aware_handler=handler) as url:
            grh, descriptor = _grh_for(url, manager)
            response = grh._send(descriptor, _query())
            assert "ok" in serialize(response)
        assert len(calls) == 3

    def test_500_does_not_trip_the_breaker(self):
        calls = []

        def handler(message):
            calls.append(1)
            raise RuntimeError("always fails")

        manager = ResilienceManager(
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=60.0),
            sleep=lambda s: None)
        with HttpServiceServer(aware_handler=handler) as url:
            grh, descriptor = _grh_for(url, manager)
            for _ in range(3):
                with pytest.raises(GRHError, match="reported"):
                    grh._send(descriptor, _query())
        # a threshold-1 breaker would have shed calls 2 and 3 if the
        # 500s were misclassified as transient; the service saw all 3
        assert len(calls) == 3
        assert manager.breaker_opens == 0


class TestServerBadRequests:
    """Malformed POSTs answer a clean 400, never an unhandled 500."""

    def _connect(self, url):
        host, port = url[len("http://"):].rstrip("/").split(":")
        return http.client.HTTPConnection(host, int(port), timeout=5.0)

    def test_missing_content_length_is_400(self):
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            conn = self._connect(url)
            try:
                conn.putrequest("POST", "/")
                conn.putheader("Content-Type", "application/xml")
                conn.endheaders()      # no Content-Length, no body
                response = conn.getresponse()
                assert response.status == 400
                assert b"Content-Length" in response.read()
            finally:
                conn.close()

    def test_invalid_content_length_is_400(self):
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            for bogus in ("banana", "-5"):
                conn = self._connect(url)
                try:
                    conn.putrequest("POST", "/")
                    conn.putheader("Content-Type", "application/xml")
                    conn.putheader("Content-Length", bogus)
                    conn.endheaders()
                    response = conn.getresponse()
                    assert response.status == 400
                finally:
                    conn.close()

    def test_non_utf8_body_is_400(self):
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            conn = self._connect(url)
            try:
                body = b"\xff\xfe<broken/>"
                conn.putrequest("POST", "/")
                conn.putheader("Content-Type", "application/xml")
                conn.putheader("Content-Length", str(len(body)))
                conn.endheaders()
                conn.send(body)
                response = conn.getresponse()
                assert response.status == 400
                assert b"UTF-8" in response.read()
            finally:
                conn.close()

    def test_server_speaks_keep_alive(self):
        # two requests over one client connection both answer: the
        # handler really runs HTTP/1.1 persistent connections
        with HttpServiceServer(aware_handler=_ok_handler) as url:
            conn = self._connect(url)
            try:
                for _ in range(2):
                    body = serialize(parse("<ping/>")).encode("utf-8")
                    conn.request("POST", "/", body=body,
                                 headers={"Content-Type": "application/xml"})
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
            finally:
                conn.close()
