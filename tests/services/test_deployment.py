"""The standard deployment wiring (FIG2/FIG3 sanity)."""

from repro.actions import ACTION_NS
from repro.conditions import TEST_NS
from repro.core import ECAEngine
from repro.events import ATOMIC_NS, SNOOP_NS, XCHANGE_NS
from repro.services import (DATALOG_LANG, EXIST_LANG, SPARQL_LANG, XQ_LANG,
                            standard_deployment)
from repro.sparql import RDF_SPARQL_LANG
from repro.xmlmodel import E, parse


class TestStandardDeployment:
    def test_all_language_families_populated(self):
        deployment = standard_deployment()
        registry = deployment.registry
        assert {d.uri for d in registry.languages("event")} == {
            ATOMIC_NS, SNOOP_NS, XCHANGE_NS}
        assert {d.uri for d in registry.languages("query")} == {
            XQ_LANG, EXIST_LANG, SPARQL_LANG, DATALOG_LANG,
            RDF_SPARQL_LANG}
        assert {d.uri for d in registry.languages("test")} == {TEST_NS}
        assert {d.uri for d in registry.languages("action")} == {ACTION_NS}

    def test_only_exist_like_is_framework_unaware(self):
        deployment = standard_deployment()
        unaware = [d.uri for d in deployment.registry.languages()
                   if not d.framework_aware]
        assert unaware == [EXIST_LANG]

    def test_registry_rdf_export_covers_all_languages(self):
        from repro.grh import ECA_ONTOLOGY
        from repro.rdf import RDF
        deployment = standard_deployment()
        graph = deployment.registry.to_rdf()
        typed = {s for s, p, _ in graph.triples(None, RDF.type, None)}
        assert len(typed) == len(deployment.registry.languages())

    def test_add_document_shared_across_services(self):
        deployment = standard_deployment()
        doc = parse("<d><item/></d>")
        deployment.add_document("d.xml", doc)
        assert deployment.xq.documents["d.xml"] is doc
        assert deployment.exist.documents["d.xml"] is doc
        assert deployment.runtime.documents["d.xml"] is doc

    def test_action_updates_visible_to_queries(self):
        """One shared mutable world: an insert action changes what the
        query services see afterwards."""
        deployment = standard_deployment()
        deployment.add_document("d.xml", parse("<items/>"))
        engine = ECAEngine(deployment.grh)
        engine.register_rule(f"""
        <eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
                  id="writer">
          <eca:event><add v="{{V}}"/></eca:event>
          <eca:action>
            <act:insert xmlns:act="{ACTION_NS}" document="d.xml" at="/items">
              <item v="{{V}}"/>
            </act:insert>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("add", {"v": "1"}))
        deployment.stream.emit(E("add", {"v": "2"}))
        assert deployment.exist.execute(
            "count(doc('d.xml')//item)") == "2"

    def test_events_reach_all_three_event_services(self):
        deployment = standard_deployment()
        # each service keeps its own detectors; feeding the stream reaches
        # all of them without error even with nothing registered
        deployment.stream.emit(E("anything"))
        assert len(deployment.stream) == 1

    def test_serialization_flag_plumbed_through(self):
        fast = standard_deployment(serialize_messages=False)
        assert fast.transport.serialize_messages is False
