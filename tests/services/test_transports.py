"""Transports: in-process broker and the real localhost HTTP endpoints."""

import pytest

from repro.bindings import Relation, relation_to_answers
from repro.services import (HttpServiceServer, HttpTransport,
                            InProcessTransport, TransportError)
from repro.xmlmodel import canonicalize, parse, serialize


def echo_handler(message):
    """Returns the request unchanged (wrapped), to inspect wire bytes."""
    wrapper = parse("<echo/>")
    wrapper.append(message.copy() if message.parent is None else message)
    return wrapper


class TestInProcessTransport:
    def test_send_roundtrips_through_markup(self):
        transport = InProcessTransport()
        seen = []

        def handler(message):
            seen.append(message)
            return relation_to_answers(Relation([{"X": 1}]))

        transport.bind("svc:q", handler)
        response = transport.send("svc:q", parse("<ping a='1'/>"))
        assert seen[0] == parse("<ping a='1'/>")
        # the handler received a *reparsed* copy, not the original object
        assert response == relation_to_answers(Relation([{"X": 1}]))

    def test_serialization_can_be_disabled(self):
        transport = InProcessTransport(serialize_messages=False)
        original = parse("<ping/>")
        received = []
        transport.bind("svc:q", lambda m: (received.append(m), m)[1])
        transport.send("svc:q", original)
        assert received[0] is original

    def test_unknown_address(self):
        transport = InProcessTransport()
        with pytest.raises(TransportError, match="no service bound"):
            transport.send("svc:ghost", parse("<x/>"))
        with pytest.raises(TransportError, match="no opaque service"):
            transport.fetch("svc:ghost", "q")

    def test_opaque_fetch(self):
        transport = InProcessTransport()
        transport.bind_opaque("svc:exist", lambda q: f"result-of({q})")
        assert transport.fetch("svc:exist", "query") == "result-of(query)"


class TestHttpTransport:
    def test_aware_post_roundtrip(self):
        def handler(message):
            return relation_to_answers(Relation([{"Got": message.name.local}]))

        with HttpServiceServer(aware_handler=handler) as url:
            transport = HttpTransport()
            response = transport.send(url, parse("<ping/>"))
            assert "Got" in serialize(response)

    def test_opaque_get_roundtrip(self):
        with HttpServiceServer(opaque_handler=lambda q: f"<r q='{q}'/>") as url:
            transport = HttpTransport()
            assert transport.fetch(url, "the query") == "<r q='the query'/>"

    def test_unreachable_endpoint(self):
        transport = HttpTransport(timeout=0.5)
        with pytest.raises(TransportError):
            transport.send("http://127.0.0.1:1/", parse("<x/>"))

    def test_service_exception_becomes_transport_error(self):
        def handler(message):
            raise RuntimeError("boom")

        with HttpServiceServer(aware_handler=handler) as url:
            with pytest.raises(TransportError):
                HttpTransport().send(url, parse("<x/>"))

    def test_wrong_method_rejected(self):
        with HttpServiceServer(aware_handler=lambda m: m) as url:
            with pytest.raises(TransportError):
                HttpTransport().fetch(url, "q")


class TestHttpServiceServerLifecycle:
    def test_stop_before_start_is_safe(self):
        server = HttpServiceServer(aware_handler=lambda m: m)
        server.stop()  # must not deadlock waiting on serve_forever

    def test_double_stop_is_idempotent(self):
        server = HttpServiceServer(aware_handler=lambda m: m)
        server.start()
        server.stop()
        server.stop()  # second stop is a no-op, not an error

    def test_context_manager_still_works(self):
        server = HttpServiceServer(aware_handler=lambda m: m)
        with server as url:
            assert url.startswith("http://")
        server.stop()  # and an extra stop after __exit__ is fine


class TestPerRequestTimeouts:
    def test_http_send_accepts_timeout_override(self):
        def handler(message):
            return parse("<ok/>")

        with HttpServiceServer(aware_handler=handler) as url:
            transport = HttpTransport(timeout=10.0)
            response = transport.send(url, parse("<x/>"), timeout=2.0)
            assert response.name.local == "ok"

    def test_in_process_accepts_and_ignores_timeout(self):
        transport = InProcessTransport()
        transport.bind("svc:x", lambda m: parse("<ok/>"))
        transport.bind_opaque("svc:o", lambda q: "v")
        assert transport.send("svc:x", parse("<x/>"),
                              timeout=0.01).name.local == "ok"
        assert transport.fetch("svc:o", "q", timeout=0.01) == "v"

    def test_hybrid_routes_timeout_through(self):
        from repro.services import HybridTransport
        recorded = []

        class SpyHttp:
            def send(self, address, message, timeout=None):
                recorded.append(("send", timeout))
                return parse("<ok/>")

            def fetch(self, address, query, timeout=None):
                recorded.append(("fetch", timeout))
                return "v"

        hybrid = HybridTransport()
        hybrid.http = SpyHttp()
        hybrid.send("http://x/", parse("<x/>"), timeout=1.25)
        hybrid.fetch("http://x/", "q", timeout=0.75)
        assert recorded == [("send", 1.25), ("fetch", 0.75)]


class TestWireEquivalence:
    """DESIGN.md §5: identical canonical bytes over both transports."""

    def test_same_message_bytes_in_process_and_http(self):
        message = relation_to_answers(Relation([{"Person": "John Doe",
                                                 "Class": "B"}]))
        captured = {}

        def capture(received):
            captured["inproc"] = canonicalize(received)
            return parse("<ok/>")

        in_process = InProcessTransport()
        in_process.bind("svc:x", capture)
        in_process.send("svc:x", message)

        def capture_http(received):
            captured["http"] = canonicalize(received)
            return parse("<ok/>")

        with HttpServiceServer(aware_handler=capture_http) as url:
            HttpTransport().send(url, message)

        assert captured["inproc"] == captured["http"]
