"""The monolithic baseline engine mirrors the modular engine's results."""

from repro.baseline import MonolithicEngine, MonolithicRule
from repro.events import AtomicPattern, EventStream
from repro.xmlmodel import E, parse
from repro.xpath import evaluate


def own_cars(persons_doc):
    def query(binding):
        for node in evaluate(f"//person[@name='{binding['Person']}']"
                             "/car/model", persons_doc):
            yield {"OwnCar": node.text()}
    return query


class TestMonolithicEngine:
    def make(self):
        engine = MonolithicEngine()
        stream = EventStream()
        engine.attach(stream)
        return engine, stream

    def test_event_query_test_action_pipeline(self):
        engine, stream = self.make()
        persons = parse("""
        <persons>
          <person name="John Doe"><car><model>Golf</model></car>
            <car><model>Passat</model></car></person>
        </persons>""")
        classes = {"Golf": "B", "Passat": "C"}
        sent = []
        engine.register_rule(MonolithicRule(
            "offer",
            AtomicPattern(parse('<booking person="{Person}"/>')),
            queries=(own_cars(persons),
                     lambda b: [{"Class": classes[b["OwnCar"]]}]),
            test=lambda b: b["Class"] == "B",
            action=lambda b: sent.append(b["OwnCar"])))
        stream.emit(E("booking", {"person": "John Doe"}))
        assert sent == ["Golf"]
        assert engine.stats["completed"] == 1
        assert engine.stats["actions"] == 1

    def test_dead_when_query_empty(self):
        engine, stream = self.make()
        engine.register_rule(MonolithicRule(
            "r", AtomicPattern(parse("<e/>")),
            queries=(lambda b: [],)))
        stream.emit(E("e"))
        assert engine.stats["dead"] == 1

    def test_matches_modular_engine_results(self):
        """The baseline and the modular engine agree on the paper's
        running example (same offers) — the ablation is apples-to-apples."""
        from repro.core import ECAEngine
        from repro.domain import (CAR_RENTAL_RULE, booking_event,
                                  classes_document, fleet_document,
                                  persons_document)
        from repro.services import standard_deployment

        deployment = standard_deployment()
        deployment.add_document("persons.xml", persons_document())
        deployment.add_document("classes.xml", classes_document())
        deployment.add_document("fleet.xml", fleet_document())
        modular = ECAEngine(deployment.grh)
        modular.register_rule(CAR_RENTAL_RULE)
        deployment.stream.emit(booking_event())
        modular_offers = sorted(
            m.content.get("car") for m in
            deployment.runtime.messages("customer-notifications"))

        persons = persons_document()
        classes_doc = classes_document()
        fleet = fleet_document()
        offers = []

        def class_of(binding):
            for node in evaluate(
                    f"//entry[@model='{binding['OwnCar']}']/@class",
                    classes_doc):
                yield {"Class": node.value}

        def available(binding):
            for node in evaluate(
                    f"//car[@location='{binding['To']}']", fleet):
                yield {"Avail": node.get("model"), "Class": node.get("class")}

        engine, stream = self.make()
        engine.register_rule(MonolithicRule(
            "offer",
            AtomicPattern(parse(
                '<travel:booking xmlns:travel='
                '"http://www.semwebtech.org/domains/2006/travel" '
                'person="{Person}" from="{From}" to="{To}"/>')),
            queries=(own_cars(persons), class_of, available),
            action=lambda b: offers.append(b["Avail"])))
        stream.emit(booking_event())
        assert sorted(offers) == modular_offers == ["Polo"]

    def test_duplicate_rule_rejected(self):
        engine, _ = self.make()
        rule = MonolithicRule("r", AtomicPattern(parse("<e/>")))
        engine.register_rule(rule)
        import pytest
        with pytest.raises(ValueError):
            engine.register_rule(rule)
