"""Binding/Relation algebra, including the paper's Fig. 11 join."""

import pytest
from hypothesis import given, strategies as st

from repro.bindings import Binding, BindingError, Relation, Uri, values_equal
from repro.xmlmodel import E


class TestValues:
    def test_numbers_compare_numerically(self):
        assert values_equal(2, 2.0)
        assert not values_equal(2, 3)

    def test_string_never_equals_number(self):
        assert not values_equal("2", 2)

    def test_bool_is_not_number(self):
        assert not values_equal(True, 1)
        assert values_equal(True, True)

    def test_uri_distinct_from_string(self):
        assert not values_equal(Uri("urn:x"), "urn:x")
        assert values_equal(Uri("urn:x"), Uri("urn:x"))

    def test_xml_fragments_compare_structurally(self):
        assert values_equal(E("a", {"k": "v"}), E("a", {"k": "v"}))
        assert not values_equal(E("a"), E("b"))


class TestBinding:
    def test_mapping_interface(self):
        binding = Binding({"Person": "John Doe", "To": "Paris"})
        assert binding["To"] == "Paris"
        assert set(binding) == {"Person", "To"}
        assert len(binding) == 2

    def test_compatible_and_merge(self):
        left = Binding({"A": 1, "B": 2})
        right = Binding({"B": 2.0, "C": 3})
        assert left.compatible(right)
        assert dict(left.merged(right)) == {"A": 1, "B": 2, "C": 3}

    def test_incompatible_merge_raises(self):
        with pytest.raises(BindingError, match="incompatible"):
            Binding({"A": 1}).merged(Binding({"A": 2}))

    def test_extended_fresh_variable(self):
        assert Binding().extended("X", "v")["X"] == "v"

    def test_extended_conflict_raises(self):
        with pytest.raises(BindingError):
            Binding({"X": "a"}).extended("X", "b")

    def test_extended_same_value_ok(self):
        binding = Binding({"X": 2}).extended("X", 2.0)
        assert binding["X"] == 2

    def test_projection(self):
        binding = Binding({"A": 1, "B": 2}).projected(["A", "Z"])
        assert dict(binding) == {"A": 1}

    def test_equality_is_value_based(self):
        assert Binding({"N": 2}) == Binding({"N": 2.0})
        assert hash(Binding({"N": 2})) == hash(Binding({"N": 2.0}))

    def test_invalid_variable_name(self):
        with pytest.raises(BindingError):
            Binding({"": "x"})


class TestRelation:
    def test_deduplication(self):
        relation = Relation([{"A": 1}, {"A": 1.0}, {"A": 2}])
        assert len(relation) == 2

    def test_unit_and_empty(self):
        assert len(Relation.unit()) == 1
        assert len(Relation.empty()) == 0
        assert bool(Relation.empty()) is False

    def test_variables_and_common_variables(self):
        relation = Relation([{"A": 1, "B": 1}, {"A": 2}])
        assert relation.variables() == {"A", "B"}
        assert relation.common_variables() == {"A"}

    def test_select_and_project(self):
        relation = Relation([{"A": 1}, {"A": 2}])
        assert len(relation.select(lambda b: b["A"] > 1)) == 1
        assert relation.project(["A"]) == relation

    def test_union_dedupes(self):
        left = Relation([{"A": 1}])
        right = Relation([{"A": 1}, {"A": 2}])
        assert len(left.union(right)) == 2


class TestJoin:
    def test_paper_figure_11_join(self):
        # Customer owns a Golf (class B) and a Passat (class C);
        # available at the destination are cars of classes B and D.
        owned = Relation([
            {"Person": "John Doe", "OwnCar": "Golf", "Class": "B"},
            {"Person": "John Doe", "OwnCar": "Passat", "Class": "C"},
        ])
        available = Relation([
            {"Class": "B", "Avail": "Polo"},
            {"Class": "D", "Avail": "Espace"},
        ])
        joined = owned.join(available)
        assert len(joined) == 1
        (tuple_,) = joined
        assert tuple_["OwnCar"] == "Golf"
        assert tuple_["Avail"] == "Polo"
        assert tuple_["Class"] == "B"

    def test_join_without_shared_variables_is_product(self):
        left = Relation([{"A": 1}, {"A": 2}])
        right = Relation([{"B": 1}, {"B": 2}])
        assert len(left.join(right)) == 4

    def test_join_with_empty_is_empty(self):
        relation = Relation([{"A": 1}])
        assert relation.join(Relation.empty()) == Relation.empty()

    def test_join_with_unit_is_identity(self):
        relation = Relation([{"A": 1}, {"A": 2}])
        assert relation.join(Relation.unit()) == relation

    def test_join_heterogeneous_tuples(self):
        left = Relation([{"A": 1, "B": 1}, {"A": 2}])
        right = Relation([{"B": 1, "C": 9}])
        joined = left.join(right)
        # {"A":2} has no B → compatible with the right tuple
        assert Binding({"A": 1, "B": 1, "C": 9}) in set(joined)
        assert Binding({"A": 2, "B": 1, "C": 9}) in set(joined)

    def test_extend_each_multiplies_tuples(self):
        relation = Relation([{"Person": "John Doe"}])
        cars = {"John Doe": ["Golf", "Passat"]}
        extended = relation.extend_each(
            "OwnCar", lambda b: cars.get(b["Person"], []))
        assert len(extended) == 2
        assert {b["OwnCar"] for b in extended} == {"Golf", "Passat"}

    def test_extend_each_drops_unproductive_tuples(self):
        relation = Relation([{"P": "known"}, {"P": "unknown"}])
        extended = relation.extend_each(
            "X", lambda b: ["v"] if b["P"] == "known" else [])
        assert len(extended) == 1


_values = st.one_of(
    st.integers(-3, 3),
    st.sampled_from(["a", "b", "c"]),
)
_bindings = st.dictionaries(st.sampled_from(["X", "Y", "Z"]), _values,
                            max_size=3)
_relations = st.lists(_bindings, max_size=6).map(Relation)


class TestJoinProperties:
    @given(_relations, _relations)
    def test_commutative(self, left, right):
        assert left.join(right) == right.join(left)

    @given(_relations, _relations, _relations)
    def test_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(_relations)
    def test_unit_identity(self, relation):
        assert relation.join(Relation.unit()) == relation

    @given(_relations)
    def test_empty_absorbing(self, relation):
        assert relation.join(Relation.empty()) == Relation.empty()

    @given(_relations)
    def test_self_join_idempotent_on_uniform_schema(self, relation):
        # For relations where all tuples bind the same variables,
        # R ⋈ R = R.
        uniform = Relation([b for b in relation
                            if set(b) == relation.variables()])
        assert uniform.join(uniform) == uniform


class TestPresentation:
    def test_to_table_contains_columns_and_values(self):
        relation = Relation([{"Person": "John Doe", "Class": "B"}])
        table = relation.to_table()
        assert "Person" in table and "Class" in table
        assert "John Doe" in table

    def test_to_table_empty_schema(self):
        assert "tuple" in Relation.unit().to_table()
