"""log:answers serialization — the wire format of Figs. 6-9."""

import pytest
from hypothesis import given, strategies as st

from repro.bindings import (Binding, MarkupError, Relation, Uri,
                            answers_to_relation, binding_to_answer,
                            relation_to_answers, results_from_answer,
                            value_to_text)
from repro.xmlmodel import E, LOG_NS, QName, parse, serialize


class TestValueMarkup:
    @pytest.mark.parametrize("value", [
        "John Doe", 42, 2.5, True, False, Uri("http://example.org/x"),
    ])
    def test_scalar_roundtrip(self, value):
        answer = binding_to_answer(Binding({"V": value}))
        relation = answers_to_relation(
            relation_to_answers(Relation([{"V": value}])))
        (binding,) = relation
        assert binding == Binding({"V": value})
        assert type(binding["V"]) is type(value)

    def test_xml_fragment_roundtrip(self):
        fragment = E("car", {"model": "Golf"})
        relation = answers_to_relation(
            relation_to_answers(Relation([{"OwnCar": fragment}])))
        (binding,) = relation
        assert binding["OwnCar"] == fragment

    def test_value_to_text(self):
        assert value_to_text(5.0) == "5"
        assert value_to_text(True) == "true"
        assert value_to_text("x") == "x"
        assert "<car" in value_to_text(E("car"))


class TestAnswersDocument:
    def test_message_shape(self):
        relation = Relation([{"Person": "John Doe", "To": "Paris"}])
        message = relation_to_answers(relation)
        assert message.name == QName(LOG_NS, "answers")
        answers = message.findall(QName(LOG_NS, "answer"))
        assert len(answers) == 1
        names = {v.get("name") for v in answers[0].elements()}
        assert names == {"Person", "To"}

    def test_serialized_and_reparsed(self):
        relation = Relation([
            {"Person": "John Doe", "OwnCar": "Golf"},
            {"Person": "John Doe", "OwnCar": "Passat"},
        ])
        wire = serialize(relation_to_answers(relation))
        assert answers_to_relation(parse(wire)) == relation

    def test_empty_relation(self):
        assert answers_to_relation(relation_to_answers(Relation())) == Relation()

    def test_results_extraction(self):
        answer = binding_to_answer(Binding({"P": "x"}),
                                   results=["Golf", "Passat"])
        assert results_from_answer(answer) == ["Golf", "Passat"]

    def test_xml_result_extraction(self):
        answer = binding_to_answer(Binding(), results=[E("car", {"m": "Golf"})])
        (result,) = results_from_answer(answer)
        assert result == E("car", {"m": "Golf"})

    def test_typed_results(self):
        answer = binding_to_answer(Binding(), results=[42, True, Uri("u:x")])
        assert results_from_answer(answer) == [42, True, Uri("u:x")]


class TestMarkupErrors:
    def test_wrong_root(self):
        with pytest.raises(MarkupError, match="log:answers"):
            answers_to_relation(E("nope"))

    def test_variable_without_name(self):
        bad = parse(f'<log:answers xmlns:log="{LOG_NS}"><log:answer>'
                    f'<log:variable>v</log:variable>'
                    f'</log:answer></log:answers>')
        with pytest.raises(MarkupError, match="name"):
            answers_to_relation(bad)

    def test_duplicate_variable(self):
        bad = parse(f'<log:answers xmlns:log="{LOG_NS}"><log:answer>'
                    f'<log:variable name="X">1</log:variable>'
                    f'<log:variable name="X">2</log:variable>'
                    f'</log:answer></log:answers>')
        with pytest.raises(MarkupError, match="duplicate"):
            answers_to_relation(bad)

    def test_bad_boolean(self):
        bad = parse(f'<log:answers xmlns:log="{LOG_NS}"><log:answer>'
                    f'<log:variable name="X" type="boolean">maybe'
                    f'</log:variable></log:answer></log:answers>')
        with pytest.raises(MarkupError, match="boolean"):
            answers_to_relation(bad)

    def test_unknown_type(self):
        bad = parse(f'<log:answers xmlns:log="{LOG_NS}"><log:answer>'
                    f'<log:variable name="X" type="blob">z'
                    f'</log:variable></log:answer></log:answers>')
        with pytest.raises(MarkupError, match="unknown variable type"):
            answers_to_relation(bad)


_values = st.one_of(
    st.text(alphabet="abc ,&<>", max_size=8),
    st.integers(-1000, 1000),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="abc:/.", min_size=1, max_size=10).map(Uri),
)
_relations = st.lists(
    st.dictionaries(st.sampled_from(["A", "B", "C"]), _values, max_size=3),
    max_size=5,
).map(Relation)


class TestMarkupProperties:
    @given(_relations)
    def test_roundtrip_through_wire_format(self, relation):
        wire = serialize(relation_to_answers(relation))
        assert answers_to_relation(parse(wire)) == relation
