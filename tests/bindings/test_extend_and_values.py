"""Additional Relation/value coverage: extend_many, sorting, edge cases."""

import pytest
from hypothesis import given, strategies as st

from repro.bindings import (Binding, Relation, Uri, value_sort_key,
                            value_to_text)
from repro.xmlmodel import E


class TestExtendMany:
    def test_compatible_extensions_merge(self):
        relation = Relation([{"A": 1}, {"A": 2}])
        extended = relation.extend_many(
            lambda b: [{"B": b["A"] * 10}, {"B": b["A"] * 100}])
        assert len(extended) == 4
        assert Binding({"A": 1, "B": 10}) in set(extended)

    def test_incompatible_extensions_dropped(self):
        relation = Relation([{"A": 1}])
        extended = relation.extend_many(lambda b: [{"A": 2, "B": 9}])
        assert extended == Relation.empty()

    def test_binding_instances_accepted(self):
        relation = Relation([{"A": 1}])
        extended = relation.extend_many(lambda b: [Binding({"B": 2})])
        assert dict(next(iter(extended))) == {"A": 1, "B": 2}

    def test_empty_producer_kills_tuple(self):
        relation = Relation([{"A": 1}, {"A": 2}])
        extended = relation.extend_many(
            lambda b: [{"B": 1}] if b["A"] == 1 else [])
        assert len(extended) == 1


class TestValueHelpers:
    def test_sort_key_total_order_over_mixed_values(self):
        values = [E("z"), Uri("urn:a"), "text", 3, True, 2.5]
        ordered = sorted(values, key=value_sort_key)
        # sorting must not raise and must be deterministic
        assert sorted(ordered, key=value_sort_key) == ordered

    @pytest.mark.parametrize("value,expected", [
        (0, "0"), (-2.5, "-2.5"), (10.0, "10"), (False, "false"),
        (Uri("urn:x"), "urn:x"),
    ])
    def test_value_to_text(self, value, expected):
        assert value_to_text(value) == expected


class TestRelationSorted:
    def test_sorted_is_deterministic_permutation(self):
        relation = Relation([{"A": 3}, {"A": 1}, {"A": 2}])
        assert list(relation.sorted()) == [Binding({"A": 1}),
                                           Binding({"A": 2}),
                                           Binding({"A": 3})]
        assert relation.sorted() == relation  # same set

    @given(st.lists(st.dictionaries(st.sampled_from(["X", "Y"]),
                                    st.integers(-5, 5), max_size=2),
                    max_size=8))
    def test_sorted_preserves_contents(self, rows):
        relation = Relation(rows)
        assert relation.sorted() == relation
        assert len(relation.sorted()) == len(relation)


class TestComponentSpecHelpers:
    def test_consumed_variables_for_opaque(self):
        from repro.grh import ComponentSpec, opaque_placeholders
        spec = ComponentSpec("query", "l", opaque="//x[@a='{A}'][@b='{B}']")
        assert spec.consumed_variables() == {"A", "B"}
        assert opaque_placeholders("{X} and {X} and {Y}") == {"X", "Y"}

    def test_consumed_variables_unknown_for_markup(self):
        from repro.grh import ComponentSpec
        from repro.xmlmodel import parse
        spec = ComponentSpec("query", "l", content=parse("<q xmlns='l'/>"))
        assert spec.consumed_variables() is None
