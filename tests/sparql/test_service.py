"""SparqlQueryService: pushdown, caching, metrics, introspection."""

from repro.bindings import Relation, Uri
from repro.grh import Request, is_error, request_to_xml
from repro.obs.metrics import MetricsRegistry
from repro.obs.ops.admin import IntrospectionSurface
from repro.rdf import Graph, Literal, URIRef
from repro.sparql import SparqlQueryService, TripleStore, live_snapshots
from repro.xmlmodel import parse

EX = "http://example.org/"


def term(name):
    return URIRef(EX + name)


def build_store():
    store = TripleStore()
    for index in range(8):
        person = term(f"p{index}")
        store.add(person, term("name"), Literal(f"name{index}"))
        store.add(person, term("age"),
                  Literal(str(20 + index), datatype=URIRef(
                      "http://www.w3.org/2001/XMLSchema#integer")))
        store.add(person, term("lives"), term(f"city{index % 2}"))
    return store


def build_service(**kwargs):
    return SparqlQueryService(build_store(), prefixes={"ex": EX}, **kwargs)


def query_request(text, bindings=None):
    return Request("query", "r::q", parse(f"<q>{text}</q>"),
                   Relation(bindings if bindings is not None else [{}]))


class TestQueries:
    def test_standalone_select(self):
        service = build_service()
        result = service.query(query_request(
            'SELECT ?n WHERE { ?p ex:lives ex:city1 . ?p ex:name ?n }'))
        assert sorted(row["n"] for row in result) == \
            ["name1", "name3", "name5", "name7"]

    def test_ask(self):
        service = build_service()
        assert len(service.query(query_request(
            "ASK { ?p ex:lives ex:city0 }"))) == 1
        assert len(service.query(query_request(
            "ASK { ?p ex:lives ex:mars }"))) == 0

    def test_handle_speaks_the_protocol(self):
        service = build_service()
        response = service.handle(request_to_xml(query_request(
            "SELECT ?n WHERE { ?p ex:name ?n }")))
        assert not is_error(response)
        assert response.name.local == "answers"

    def test_syntax_error_is_a_service_error_message(self):
        service = build_service()
        response = service.handle(request_to_xml(query_request(
            "SELECT WHERE {")))
        assert is_error(response)


class TestPushdown:
    def test_seeded_join_keeps_input_linkage(self):
        service = build_service()
        result = service.query(query_request(
            "SELECT ?n WHERE { ?p ex:name ?n }",
            bindings=[{"p": Uri(EX + "p1")}, {"p": Uri(EX + "p2")}]))
        rows = sorted((row["n"], row["p"]) for row in result)
        # the seeded column rides along so the engine can join back
        assert rows == [("name1", Uri(EX + "p1")),
                        ("name2", Uri(EX + "p2"))]
        assert service.stats["pushdown_queries"] == 1

    def test_pushdown_matches_per_tuple_placeholder_path(self):
        service = build_service()
        bindings = [{"N": f"name{index}"} for index in range(4)]
        per_tuple = service.query(query_request(
            'SELECT ?p WHERE { ?p ex:name "{N}" }', bindings=bindings))
        pushdown = service.query(query_request(
            "SELECT ?p WHERE { ?p ex:name ?N }", bindings=bindings))
        people = lambda relation: sorted(str(row["p"]) for row in relation)
        assert people(per_tuple) == people(pushdown)

    def test_typed_values_seed_canonical_terms(self):
        service = build_service()
        result = service.query(query_request(
            "SELECT ?p WHERE { ?p ex:age ?a }",
            bindings=[{"a": 22}, {"a": 23.0}, {"a": 99}]))
        assert sorted(row["p"] for row in result) == \
            [Uri(EX + "p2"), Uri(EX + "p3")]

    def test_unseedable_value_leaves_variable_free(self):
        service = build_service()
        result = service.query(query_request(
            "SELECT ?n WHERE { ?p ex:name ?n }",
            bindings=[{"p": ("not", "a", "term")}]))
        # the odd value cannot become an RDF term: the query runs
        # unseeded and the engine's own join applies the constraint
        assert len(result) == 8


class TestPlanCache:
    def test_hit_then_version_invalidation(self):
        service = build_service()
        request = query_request("SELECT ?n WHERE { ?p ex:name ?n }")
        service.query(request)
        service.query(request)
        assert service.stats["cache_hits"] == 1
        service.store.add(term("p9"), term("name"), Literal("name9"))
        service.query(request)
        assert service.stats["cache_hits"] == 1  # version changed: miss

    def test_seed_signature_keys_the_cache(self):
        service = build_service()
        text = "SELECT ?n WHERE { ?p ex:name ?n }"
        service.query(query_request(text))
        service.query(query_request(text,
                                    bindings=[{"p": Uri(EX + "p1")}]))
        assert service.stats["cache_hits"] == 0
        assert len(service._plans) == 2

    def test_cache_is_bounded(self):
        service = SparqlQueryService(build_store(), prefixes={"ex": EX},
                                     plan_cache_size=2)
        for index in range(4):
            service.query(query_request(
                f"SELECT ?n WHERE {{ ex:p{index} ex:name ?n }}"))
        assert len(service._plans) == 2


class TestObservability:
    def test_metrics_registered_and_driven(self):
        registry = MetricsRegistry()
        service = SparqlQueryService(build_store(), prefixes={"ex": EX},
                                     metrics=registry)
        service.query(query_request(
            "SELECT ?n WHERE { ?p ex:name ?n }",
            bindings=[{"p": Uri(EX + "p1")}]))
        rendered = registry.render_prometheus()
        assert 'eca_sparql_queries_total{form="SELECT",' in rendered \
            or 'eca_sparql_queries_total{service=' in rendered
        assert "eca_sparql_query_seconds" in rendered
        assert "eca_sparql_index_probes_total" in rendered
        assert "eca_sparql_store_triples" in rendered
        assert "eca_sparql_pushdown_seed_rows" in rendered

    def test_introspection_view(self):
        service = build_service()
        service.query(query_request(
            'SELECT ?n WHERE { ?p ex:lives ex:city0 . ?p ex:name ?n }'))
        view = service.introspection()
        assert view["service"] == "rdf-sparql"
        assert view["store"]["triples"] == 24
        assert view["predicates"][0]["triples"] == 8
        assert view["stats"]["queries"] == 1
        recent = view["recent_plans"][-1]
        assert recent["form"] == "SELECT"
        assert recent["actual_rows"] == 4
        assert recent["estimated_rows"] > 0
        assert recent["stages"][0]["op"] in ("scan", "filter")
        assert recent["plan"]["stages"]

    def test_admin_route_reports_live_services(self):
        service = build_service()
        service.query(query_request("ASK { ?p ex:lives ex:city0 }"))
        surface = IntrospectionSurface(None, observability=object())
        status, view = surface.handle("/introspect/sparql")
        assert status == 200
        mine = [entry for entry in view["services"]
                if entry["store"]["triples"] == 24]
        assert mine and mine[0]["service"] == "rdf-sparql"
        assert view["total_triples"] >= 24

    def test_live_snapshot_registry(self):
        service = build_service()
        assert any(view["store"]["triples"] == 24
                   for view in live_snapshots())
        assert service.service_name == "rdf-sparql"


class TestConstruction:
    def test_plain_graph_is_upgraded(self):
        graph = Graph([(term("a"), term("p"), term("b"))])
        service = SparqlQueryService(graph)
        assert isinstance(service.store, TripleStore)

    def test_supports_batch_declared(self):
        assert SparqlQueryService.supports_batch is True
