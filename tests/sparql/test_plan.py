"""The join planner: ordering, filter placement, index hints, explain."""

from repro.rdf import Literal, URIRef
from repro.rdf.sparql import parse_sparql
from repro.sparql import (FilterStep, OptionalStep, ScanStep, TripleStore,
                          UnionStep, explain, plan_query)

EX = "http://example.org/"
PROLOGUE = f"PREFIX ex: <{EX}>\n"


def term(name):
    return URIRef(EX + name)


def build_store(people=20):
    """name is highly selective (distinct per person); lives is not
    (everyone lives in one of two cities)."""
    store = TripleStore()
    for index in range(people):
        person = term(f"p{index}")
        store.add(person, term("name"), Literal(f"name{index}"))
        store.add(person, term("lives"), term(f"city{index % 2}"))
    return store


def scans(plan):
    return [step for step in plan.root.steps if isinstance(step, ScanStep)]


class TestJoinOrder:
    def test_selective_constant_runs_first(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            'SELECT ?c WHERE { ?p ex:lives ?c . ?p ex:name "name3" }'))
        ordered = scans(plan)
        # the constant-object name lookup (1 match) beats the full
        # lives extent (20 matches)
        assert ordered[0].pattern.predicate == term("name")
        assert ordered[0].per_row == 1.0
        assert ordered[1].pattern.predicate == term("lives")
        # with ?p bound, lives costs its subject fan-out (1 per person)
        assert ordered[1].per_row < 2.0

    def test_seed_vars_change_the_order(self):
        store = build_store()
        text = PROLOGUE + "SELECT ?c WHERE { ?p ex:lives ?c }"
        cold = plan_query(store, text)
        seeded = plan_query(store, text, seed_vars=frozenset({"p"}))
        assert scans(cold)[0].per_row == 20.0
        assert scans(seeded)[0].per_row == 1.0
        assert seeded.root.seed_vars == ("p",)

    def test_disconnected_pattern_deferred(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            'SELECT * WHERE { ?p ex:name "name3" . ?q ex:name "name4" . '
            "?p ex:lives ?c }"))
        ordered = scans(plan)
        # ?p's two patterns come before the cross-product ?q pattern
        assert ordered[1].pattern.predicate == term("lives")
        assert ordered[2].pattern.variables() == {"q"}


class TestIndexHints:
    def test_index_selection_mirrors_graph_dispatch(self):
        store = build_store()
        cases = [
            ("?s ex:name ?o", "pos"),
            ('?s ?p "name3"', "osp"),
            ("?s ?p ?o", "scan"),
            ("ex:p1 ?p ?o", "spo"),
        ]
        for pattern, expected in cases:
            plan = plan_query(store,
                              PROLOGUE + f"SELECT * WHERE {{ {pattern} }}")
            assert scans(plan)[0].index == expected, pattern


class TestFilterPlacement:
    def test_filter_sinks_to_where_its_variables_complete(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            "SELECT * WHERE { ?p ex:name ?n . ?p ex:lives ?c . "
            'FILTER(?n = "name3") }'))
        steps = plan.root.steps
        kinds = [type(step).__name__ for step in steps]
        # the filter runs right after the scan binding ?n, not last
        filter_at = kinds.index("FilterStep")
        name_at = next(index for index, step in enumerate(steps)
                       if isinstance(step, ScanStep)
                       and step.pattern.predicate == term("name"))
        assert filter_at == name_at + 1
        assert filter_at < len(steps) - 1

    def test_filter_over_optional_variable_stays_late(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            "SELECT * WHERE { ?p ex:name ?n . "
            "OPTIONAL { ?p ex:lives ?c } FILTER(BOUND(?c)) }"))
        kinds = [type(step).__name__ for step in plan.root.steps]
        assert kinds.index("FilterStep") > kinds.index("OptionalStep")

    def test_seeded_filter_runs_before_any_scan(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            'SELECT * WHERE { ?p ex:lives ?c . FILTER(?p != ex:p1) }'),
            seed_vars=frozenset({"p"}))
        assert isinstance(plan.root.steps[0], FilterStep)


class TestSubgroupsAndCertainty:
    def test_union_branches_seeded_with_bound_variables(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            "SELECT * WHERE { ?p ex:name ?n "
            "{ ?p ex:lives ?c } UNION { ?p ex:name ?c } }"))
        union = next(step for step in plan.root.steps
                     if isinstance(step, UnionStep))
        assert all(branch.seed_vars == ("p",)
                   for branch in union.branches)
        # both branches certainly bind ?c, so the group does too
        assert "c" in plan.root.certain

    def test_optional_adds_no_certainty(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            "SELECT * WHERE { ?p ex:name ?n "
            "OPTIONAL { ?p ex:lives ?c } }"))
        assert "c" not in plan.root.certain
        assert any(isinstance(step, OptionalStep)
                   for step in plan.root.steps)
        assert "c" in plan.root.mentioned


class TestRendering:
    def test_explain_and_describe(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            'SELECT ?c WHERE { ?p ex:lives ?c . ?p ex:name "name3" . '
            "OPTIONAL { ?p ex:knows ?q } FILTER(BOUND(?q)) }"))
        rendering = explain(plan)
        assert "SELECT estimated_rows=" in rendering
        assert "index=pos" in rendering
        assert "optional" in rendering
        assert "filter" in rendering
        view = plan.describe()
        assert view["form"] == "SELECT"
        assert view["store_version"] == store.version
        ops = [stage["op"] for stage in view["stages"]]
        assert ops.count("scan") == 2
        assert "optional" in ops and "filter" in ops

    def test_plan_records_store_version(self):
        store = build_store()
        text = PROLOGUE + "SELECT * WHERE { ?p ex:lives ?c }"
        plan = plan_query(store, text)
        assert plan.store_version == store.version
        store.add(term("p99"), term("lives"), term("city0"))
        assert plan.store_version != store.version
