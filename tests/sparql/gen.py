"""Seeded random graphs and queries for the differential suite.

Shared by ``tests/sparql/test_differential.py`` and
``benchmarks/bench_sparql.py``: the planner/executor must produce the
same solution *multisets* as the naive ``rdf.sparql`` evaluator on
every seed, so the generator deliberately avoids the two evaluator-
order-sensitive modifiers (``ORDER BY``, ``LIMIT``) and covers
everything else: chains and stars of patterns, typed literals, filters
(including over variables that may be unbound), ``OPTIONAL``,
``UNION`` and ``DISTINCT``.
"""

import random
from collections import Counter

EX = "http://example.org/"
PROLOGUE = f"PREFIX ex: <{EX}>\n"


def random_triples(rng: random.Random, people: int = 40,
                   cities: int = 6) -> list[tuple]:
    """A small social graph with typed literals, as term triples."""
    from repro.rdf import Literal, URIRef, XSD

    triples = []
    city_terms = [URIRef(f"{EX}city{i}") for i in range(cities)]
    person_terms = [URIRef(f"{EX}p{i}") for i in range(people)]
    name = URIRef(EX + "name")
    age = URIRef(EX + "age")
    lives = URIRef(EX + "lives")
    knows = URIRef(EX + "knows")
    score = URIRef(EX + "score")
    vip = URIRef(EX + "vip")
    for index, person in enumerate(person_terms):
        triples.append((person, name, Literal(f"name{index}")))
        triples.append((person, age, Literal(str(rng.randint(1, 90)),
                                             datatype=XSD.integer)))
        triples.append((person, lives,
                        city_terms[rng.randrange(cities)]))
        if rng.random() < 0.6:
            triples.append((person, knows,
                            person_terms[rng.randrange(people)]))
        if rng.random() < 0.4:
            triples.append((person, score,
                            Literal(f"{rng.randint(0, 100)}.5",
                                    datatype=XSD.double)))
        if rng.random() < 0.25:
            triples.append((person, vip,
                            Literal("true", datatype=XSD.boolean)))
    for index, city in enumerate(city_terms):
        triples.append((city, name, Literal(f"city{index}")))
    return triples


def random_query(rng: random.Random) -> str:
    """One random SELECT/ASK over the generator's vocabulary."""
    variables = ["a", "b", "c", "d"]
    patterns = [f"?a ex:lives ?c"]
    used = {"a", "c"}
    for _ in range(rng.randrange(3)):
        choice = rng.randrange(4)
        if choice == 0:
            patterns.append("?a ex:knows ?b")
            used |= {"a", "b"}
        elif choice == 1:
            patterns.append("?a ex:age ?d")
            used |= {"a", "d"}
        elif choice == 2:
            patterns.append(f"?a ex:name \"name{rng.randrange(40)}\"")
        else:
            patterns.append(f"?c ex:name ?n")
            used |= {"c", "n"}
    body = " . ".join(patterns)
    clauses = [body]
    if rng.random() < 0.4:
        # a union whose branches bind different variables
        clauses.append("{ ?a ex:knows ?u } UNION { ?a ex:vip true }")
        used.add("u")
    if rng.random() < 0.4:
        clauses.append("OPTIONAL { ?a ex:score ?s }")
        used.add("s")
    filters = []
    if rng.random() < 0.5:
        # ?d (age) may be unbound in some generated queries — the
        # error-eliminates rule is part of what we differentially test
        filters.append(f"FILTER(?d > {rng.randrange(10, 70)})")
        used.add("d")
    if rng.random() < 0.3:
        filters.append("FILTER(BOUND(?s) || BOUND(?u) || ?a != ?c)")
    if rng.random() < 0.2:
        # boolean literal in expression position (may be unbound)
        filters.append("FILTER(?v = true)")
        used.add("v")
        if rng.random() < 0.5:
            clauses.append("OPTIONAL { ?a ex:vip ?v }")
    # no "." between clause kinds: the subset grammar separates triple
    # blocks, groups and filters by juxtaposition
    where = " ".join(clauses + filters)
    if rng.random() < 0.1:
        return f"{PROLOGUE}ASK {{ {where} }}"
    selected = sorted(used & set(variables) | {"a"})
    if rng.random() < 0.3:
        head = "*"
    else:
        count = rng.randint(1, len(selected))
        head = " ".join("?" + name for name in
                        rng.sample(selected, count))
    distinct = "DISTINCT " if rng.random() < 0.3 else ""
    return f"{PROLOGUE}SELECT {distinct}{head} WHERE {{ {where} }}"


def solution_multiset(solutions) -> Counter:
    """Order-insensitive, duplicate-preserving comparison key."""
    return Counter(tuple(sorted(solution.items()))
                   for solution in solutions)
