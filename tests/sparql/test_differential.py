"""Differential suite: planned executor ≡ naive evaluator.

For seeds 0–9: build a seeded random graph, run a batch of seeded
random queries through both the naive ``rdf.sparql`` evaluator and the
``repro.sparql`` planner/executor, and assert identical solution
*multisets* (duplicates matter — UNION branches preserve them).
"""

import random

import pytest

from repro.rdf import Graph
from repro.rdf.sparql import ask, parse_sparql, select
from repro.sparql import TripleStore, plan_query, run_ask, run_select

from .gen import random_query, random_triples, solution_multiset

SEEDS = range(10)
QUERIES_PER_SEED = 30


@pytest.mark.parametrize("seed", SEEDS)
def test_planned_matches_naive(seed):
    rng = random.Random(seed)
    triples = random_triples(rng)
    naive_graph = Graph(triples)
    store = TripleStore(triples)
    for number in range(QUERIES_PER_SEED):
        text = random_query(rng)
        parsed = parse_sparql(text)
        plan = plan_query(store, parsed)
        if parsed.form == "ASK":
            expected = ask(naive_graph, parsed)
            actual, _stats = run_ask(store, plan)
            assert actual == expected, f"seed {seed} query {number}: {text}"
        else:
            expected = solution_multiset(select(naive_graph, parsed))
            result, _stats = run_select(store, plan)
            actual = solution_multiset(result)
            assert actual == expected, f"seed {seed} query {number}: {text}"


@pytest.mark.parametrize("seed", SEEDS)
def test_planned_matches_naive_after_mutation(seed):
    """Same property on a mutated store: remove a slice of triples so
    the statistics walked both directions."""
    rng = random.Random(1000 + seed)
    triples = random_triples(rng)
    store = TripleStore(triples)
    removed = rng.sample(triples, len(triples) // 5)
    for triple in removed:
        assert store.remove(*triple)
    naive_graph = Graph(store)
    for _ in range(10):
        text = random_query(rng)
        parsed = parse_sparql(text)
        if parsed.form == "ASK":
            assert run_ask(store, plan_query(store, parsed))[0] == \
                ask(naive_graph, parsed)
        else:
            assert solution_multiset(
                run_select(store, plan_query(store, parsed))[0]) == \
                solution_multiset(select(naive_graph, parsed))
