"""The vectorized executor: tables, absent columns, fallbacks, stats."""

import pytest

from repro.rdf import Literal, URIRef
from repro.rdf.sparql import SparqlEvaluationError
from repro.sparql import (ABSENT, Table, TripleStore, plan_query, run_ask,
                          run_plan, run_select, solutions_from_table,
                          table_from_solutions)

EX = "http://example.org/"
PROLOGUE = f"PREFIX ex: <{EX}>\n"


def term(name):
    return URIRef(EX + name)


def build_store():
    store = TripleStore()
    for index in range(6):
        person = term(f"p{index}")
        store.add(person, term("name"), Literal(f"name{index}"))
        store.add(person, term("lives"), term(f"city{index % 2}"))
        if index % 2:
            store.add(person, term("score"),
                      Literal(str(index), datatype=URIRef(
                          "http://www.w3.org/2001/XMLSchema#integer")))
    return store


class TestTables:
    def test_round_trip_and_sure_columns(self):
        solutions = [{"a": 1, "b": 2}, {"a": 3}]
        table = table_from_solutions(solutions)
        assert table.columns == ("a", "b")
        assert table.sure == frozenset({"a"})
        assert table.rows[1][1] is ABSENT
        assert solutions_from_table(table) == solutions

    def test_explicit_columns(self):
        table = table_from_solutions([{"a": 1}], columns=("a", "z"))
        assert table.columns == ("a", "z")
        assert table.sure == frozenset({"a"})

    def test_unit_table(self):
        table = Table.unit()
        assert table.rows == [()]
        assert solutions_from_table(table) == [{}]


class TestSeededExecution:
    def test_absent_seed_column_behaves_like_fresh(self):
        """A row whose seed column is ABSENT leaves the variable free
        for that row, and the scan writes the binding back."""
        store = build_store()
        plan = plan_query(store, PROLOGUE +
                          "SELECT * WHERE { ?p ex:lives ?c }",
                          seed_vars=frozenset({"p"}))
        seed = table_from_solutions([{"p": term("p0")}, {}])
        table, _stats = run_plan(store, plan, seed)
        solutions = solutions_from_table(table)
        bound_row = [s for s in solutions if s["p"] == term("p0")]
        # the seeded row matches once; the unseeded row fans out fully
        assert len(bound_row) >= 1
        assert len(solutions) == 1 + 6  # 1 seeded + the full lives extent
        # every output row now carries a concrete ?p
        assert all(s.get("p") is not None for s in solutions)

    def test_seeded_join_is_term_equality(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE +
                          "SELECT ?n WHERE { ?p ex:name ?n }",
                          seed_vars=frozenset({"p"}))
        seed = table_from_solutions(
            [{"p": term("p1")}, {"p": term("nobody")}])
        solutions, _stats = run_select(store, plan, seed)
        assert solutions == [{"n": Literal("name1")}]

    def test_ragged_subgroup_rows_fall_back(self):
        """Rows whose shared columns are ABSENT at a UNION/OPTIONAL
        boundary are evaluated naively and counted."""
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            "SELECT * WHERE { OPTIONAL { ?p ex:score ?s } }"),
            seed_vars=frozenset())
        seed = table_from_solutions([{"p": term("p1")}, {}])
        table, stats = run_plan(store, plan, seed)
        assert stats.fallback_rows >= 1
        solutions = solutions_from_table(table)
        assert {"p": term("p1"), "s": Literal(
            "1", datatype=URIRef(
                "http://www.w3.org/2001/XMLSchema#integer"))} in solutions


class TestStats:
    def test_probes_flow_into_the_store(self):
        store = build_store()
        before = dict(store.probes)
        plan = plan_query(store, PROLOGUE +
                          'SELECT ?c WHERE { ?p ex:name "name1" . '
                          "?p ex:lives ?c }")
        _table, stats = run_plan(store, plan)
        assert stats.probes["pos"] >= 1  # predicate+object name lookup
        assert stats.probes["spo"] >= 1  # ?p-bound lives probe
        assert store.probes["pos"] == before["pos"] + stats.probes["pos"]

    def test_stage_actuals_recorded(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE +
                          "SELECT * WHERE { ?p ex:lives ?c }")
        _table, stats = run_plan(store, plan)
        assert stats.rows_in == 1
        assert stats.rows_out == 6
        assert stats.stages[0]["op"] == "scan"
        assert stats.stages[0]["rows"] == 6

    def test_empty_table_short_circuits(self):
        store = build_store()
        plan = plan_query(store, PROLOGUE + (
            'SELECT * WHERE { ?p ex:name "no-such" . ?p ex:lives ?c . '
            "?c ex:name ?n }"))
        _table, stats = run_plan(store, plan)
        assert stats.rows_out == 0
        # every planned step still reports a stage (zero-row skips)
        assert len(stats.stages) == len(plan.root.steps)
        assert stats.stages[-1]["rows"] == 0


class TestEntryPoints:
    def test_form_mismatch_raises(self):
        store = build_store()
        select_plan = plan_query(store, PROLOGUE +
                                 "SELECT * WHERE { ?p ex:lives ?c }")
        ask_plan = plan_query(store, PROLOGUE +
                              "ASK { ?p ex:lives ?c }")
        with pytest.raises(SparqlEvaluationError):
            run_select(store, ask_plan)
        with pytest.raises(SparqlEvaluationError):
            run_ask(store, select_plan)

    def test_ask(self):
        store = build_store()
        assert run_ask(store, plan_query(
            store, PROLOGUE + "ASK { ?p ex:lives ex:city0 }"))[0]
        assert not run_ask(store, plan_query(
            store, PROLOGUE + "ASK { ?p ex:lives ex:mars }"))[0]

    def test_select_applies_modifiers(self):
        store = build_store()
        solutions, _stats = run_select(store, plan_query(store, PROLOGUE + (
            "SELECT DISTINCT ?c WHERE { ?p ex:lives ?c } "
            "ORDER BY ?c LIMIT 1")))
        assert solutions == [{"c": term("city0")}]
