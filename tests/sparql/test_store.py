"""TripleStore: incremental statistics, adoption, probes, snapshots."""

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.sparql import TripleStore

EX = "http://example.org/"


def term(name):
    return URIRef(EX + name)


class TestStatistics:
    def test_incremental_add(self):
        store = TripleStore()
        store.add(term("a"), term("knows"), term("b"))
        store.add(term("a"), term("knows"), term("c"))
        store.add(term("b"), term("knows"), term("c"))
        assert store.predicate_count(term("knows")) == 3
        assert store.distinct_subjects(term("knows")) == 2
        assert store.distinct_objects(term("knows")) == 2
        assert store.subject_fanout(term("knows")) == pytest.approx(1.5)
        assert store.object_fanout(term("knows")) == pytest.approx(1.5)

    def test_duplicate_add_does_not_inflate(self):
        store = TripleStore()
        for _ in range(3):
            store.add(term("a"), term("p"), term("b"))
        assert store.predicate_count(term("p")) == 1
        assert store.distinct_subjects(term("p")) == 1

    def test_remove_walks_statistics_back_to_zero(self):
        store = TripleStore()
        store.add(term("a"), term("p"), term("b"))
        store.add(term("a"), term("p"), term("c"))
        assert store.remove(term("a"), term("p"), term("b"))
        assert store.predicate_count(term("p")) == 1
        assert store.distinct_subjects(term("p")) == 1
        assert store.remove(term("a"), term("p"), term("c"))
        assert store.predicate_count(term("p")) == 0
        assert store.distinct_subjects(term("p")) == 0
        assert store.subject_fanout(term("p")) == 0.0
        # a predicate never seen behaves like one fully removed
        assert not store.remove(term("a"), term("p"), term("c"))

    def test_store_wide_distincts(self):
        store = TripleStore([
            (term("a"), term("p"), term("b")),
            (term("b"), term("q"), Literal("x")),
        ])
        assert store.distinct_subjects() == 2
        assert store.distinct_objects() == 2

    def test_predicate_stats_sorted_and_limited(self):
        store = TripleStore([
            (term("a"), term("rare"), term("b")),
            (term("a"), term("common"), term("b")),
            (term("a"), term("common"), term("c")),
        ])
        rows = store.predicate_stats()
        assert rows[0]["predicate"].endswith("common")
        assert rows[0]["triples"] == 2
        assert rows[0]["distinct_subjects"] == 1
        assert rows[0]["distinct_objects"] == 2
        assert len(store.predicate_stats(limit=1)) == 1


class TestConstruction:
    def test_from_graph_copies(self):
        graph = Graph([(term("a"), term("p"), term("b"))])
        graph.namespaces["ex"] = EX
        store = TripleStore.from_graph(graph)
        assert store is not graph
        assert store.namespaces["ex"] == EX
        assert store.predicate_count(term("p")) == 1
        store.add(term("c"), term("p"), term("d"))
        assert len(graph) == 1  # the copy forked

    def test_adopt_preserves_identity(self):
        graph = Graph([
            (term("a"), term("p"), term("b")),
            (term("a"), term("p"), term("c")),
            (term("x"), term("q"), Literal("1")),
        ])
        store = TripleStore.adopt(graph)
        assert store is graph
        assert isinstance(graph, TripleStore)
        assert store.predicate_count(term("p")) == 2
        assert store.distinct_subjects(term("p")) == 1
        assert store.distinct_objects(term("p")) == 2
        # mutations through the old reference keep statistics honest
        graph.add(term("b"), term("p"), term("c"))
        assert store.distinct_subjects(term("p")) == 2

    def test_adopt_is_idempotent(self):
        store = TripleStore()
        assert TripleStore.adopt(store) is store

    def test_adopt_rejects_exotic_subclasses(self):
        class Odd(Graph):
            pass

        with pytest.raises(TypeError):
            TripleStore.adopt(Odd())


class TestProbesAndSnapshot:
    def test_record_probes_accumulates(self):
        store = TripleStore()
        store.record_probes({"spo": 2, "pos": 1})
        store.record_probes({"spo": 3})
        assert store.probes["spo"] == 5
        assert store.probes["pos"] == 1
        assert store.probes["osp"] == 0

    def test_snapshot_shape(self):
        store = TripleStore([(term("a"), term("p"), term("b"))])
        view = store.snapshot()
        assert view["triples"] == 1
        assert view["predicates"] == 1
        assert view["subjects"] == 1
        assert view["objects"] == 1
        assert view["version"] == store.version
        assert set(view["probes"]) == {"spo", "pos", "osp", "scan"}
