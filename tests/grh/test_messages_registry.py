"""Protocol messages (FIG7) and the language registry (FIG1/FIG2)."""

import pytest

from repro.bindings import Relation
from repro.grh import (Detection, ECA_ONTOLOGY, LanguageDescriptor,
                       LanguageRegistry, MessageError, RegistryError, Request,
                       detection_to_xml, error_message, error_text, is_error,
                       ok_message, request_to_xml, xml_to_detection,
                       xml_to_request)
from repro.rdf import Literal, RDF, URIRef
from repro.xmlmodel import canonicalize, parse, serialize


class TestRequestMessages:
    def test_roundtrip_with_content_and_bindings(self):
        request = Request("query", "rule-1::query-0",
                          parse("<q xmlns='urn:ql'>//car</q>"),
                          Relation([{"Person": "John Doe"}]))
        wire = serialize(request_to_xml(request))
        back = xml_to_request(parse(wire))
        assert back.kind == "query"
        assert back.component_id == "rule-1::query-0"
        assert back.content == parse("<q xmlns='urn:ql'>//car</q>")
        assert back.bindings == request.bindings

    def test_request_without_content(self):
        request = Request("unregister-event", "r::event", None,
                          Relation.unit())
        back = xml_to_request(parse(serialize(request_to_xml(request))))
        assert back.content is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(MessageError, match="unknown request kind"):
            Request("frobnicate", "id", None, Relation.unit())

    @pytest.mark.parametrize("bad", [
        "<log:request xmlns:log='http://www.semwebtech.org/languages/2006/log'/>",
        "<not-a-request/>",
    ])
    def test_malformed_request_rejected(self, bad):
        with pytest.raises(MessageError):
            xml_to_request(parse(bad))

    def test_fig7_wire_shape(self):
        # Fig. 7: "query code together with the values of the input
        # variables is communicated to the GRH"
        request = Request("query", "car-rental-offer::query-0",
                          parse("<xq xmlns='urn:xq'>for $c ...</xq>"),
                          Relation([{"Person": "John Doe", "From": "Munich",
                                     "To": "Paris"}]))
        wire = serialize(request_to_xml(request))
        assert "log:request" in wire or ":request" in wire
        assert "John Doe" in wire and "for $c" in wire


class TestDetectionMessages:
    def test_roundtrip(self):
        detection = Detection("r::event", 1.0, 3.5,
                              Relation([{"Person": "John Doe"}]))
        back = xml_to_detection(parse(serialize(detection_to_xml(detection))))
        assert back == detection

    def test_integral_times_serialized_plainly(self):
        wire = serialize(detection_to_xml(
            Detection("r::event", 2.0, 2.0, Relation.unit())))
        assert 'start="2"' in wire

    def test_missing_answers_rejected(self):
        from repro.xmlmodel import LOG_NS
        with pytest.raises(MessageError, match="answers"):
            xml_to_detection(parse(
                f'<log:detection xmlns:log="{LOG_NS}" id="x"/>'))


class TestAckMessages:
    def test_ok_and_error(self):
        assert not is_error(ok_message())
        error = error_message("boom")
        assert is_error(error)
        assert error_text(error) == "boom"


class TestLanguageRegistry:
    def descriptor(self, uri="urn:lang:x", family="query", name="x"):
        return LanguageDescriptor(uri, family, name)

    def test_register_and_lookup(self):
        registry = LanguageRegistry()
        descriptor = self.descriptor()
        registry.register(descriptor)
        assert registry.lookup("urn:lang:x") is descriptor
        assert registry.lookup_by_name("x") is descriptor
        assert "urn:lang:x" in registry

    def test_lookup_by_name_accepts_uri(self):
        registry = LanguageRegistry()
        registry.register(self.descriptor())
        assert registry.lookup_by_name("urn:lang:x").name == "x"

    def test_duplicate_rejected(self):
        registry = LanguageRegistry()
        registry.register(self.descriptor())
        with pytest.raises(RegistryError, match="already registered"):
            registry.register(self.descriptor())

    def test_unknown_lookup(self):
        registry = LanguageRegistry()
        with pytest.raises(RegistryError):
            registry.lookup("urn:ghost")
        with pytest.raises(RegistryError):
            registry.lookup_by_name("ghost")

    def test_invalid_family_rejected(self):
        with pytest.raises(RegistryError, match="family"):
            LanguageDescriptor("urn:x", "transmogrify", "x")

    def test_family_listing_fig2(self):
        # FIG2: the hierarchy of language families under the ECA level
        registry = LanguageRegistry()
        registry.register(self.descriptor("urn:e", "event", "e"))
        registry.register(self.descriptor("urn:q1", "query", "q1"))
        registry.register(self.descriptor("urn:q2", "query", "q2"))
        registry.register(self.descriptor("urn:t", "test", "t"))
        registry.register(self.descriptor("urn:a", "action", "a"))
        assert len(registry.languages()) == 5
        assert {d.name for d in registry.languages("query")} == {"q1", "q2"}

    def test_rdf_export_fig1(self):
        registry = LanguageRegistry()
        registry.register(LanguageDescriptor("urn:q", "query", "q",
                                             endpoint="svc:q"))
        graph = registry.to_rdf()
        assert (URIRef("urn:q"), RDF.type, ECA_ONTOLOGY.QueryLanguage) in graph
        assert graph.value(URIRef("urn:q"), ECA_ONTOLOGY.implementedBy) == \
            URIRef("svc:q")
        assert graph.value(URIRef("urn:q"), ECA_ONTOLOGY.name) == Literal("q")


class TestWireEquivalence:
    def test_request_canonical_bytes_stable(self):
        request = Request("query", "r::q", parse("<q xmlns='urn:l'/>"),
                          Relation([{"A": 1}]))
        first = canonicalize(request_to_xml(request))
        second = canonicalize(parse(serialize(request_to_xml(request))))
        assert first == second
