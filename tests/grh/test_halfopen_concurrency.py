"""Breaker half-open concurrency: exactly one probe passes, concurrent
callers are shed with a sane retry_after, and transitions stay race-free
(PROTOCOL.md §12 satellite)."""

import threading
import time

import pytest

from repro.grh import (BreakerPolicy, CircuitOpenError, LanguageDescriptor,
                       ResilienceManager)
from repro.grh.resilience import (ServiceReportedError,
                                  TransientServiceFailure)

DESCRIPTOR = LanguageDescriptor("urn:test:halfopen", "query", "halfopen")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def tripped_manager(reset_timeout=10.0):
    """A manager whose breaker for 'svc:x' just opened, with the clock
    advanced past the reset timeout (next call is the half-open probe)."""
    clock = FakeClock()
    manager = ResilienceManager(
        breaker=BreakerPolicy(failure_threshold=1,
                              reset_timeout=reset_timeout),
        clock=clock, sleep=lambda s: None, hedge=None)

    def fail():
        raise TransientServiceFailure("down")

    with pytest.raises(TransientServiceFailure):
        manager.call("svc:x", DESCRIPTOR, fail)
    assert manager._breakers["svc:x"].state == "open"
    clock.now = reset_timeout + 1.0
    return manager, clock


class TestSingleProbe:
    def test_only_one_probe_admitted_concurrently(self):
        manager, clock = tripped_manager()
        started = threading.Event()
        release = threading.Event()
        outcome = {}

        def slow_probe():
            started.set()
            assert release.wait(5.0)
            return "probed"

        def run_probe():
            outcome["result"] = manager.call("svc:x", DESCRIPTOR, slow_probe)

        prober = threading.Thread(target=run_probe)
        prober.start()
        try:
            assert started.wait(5.0)
            # the probe is in flight: every concurrent caller is shed
            # without touching the service, with the conservative
            # retry_after of one full reset window
            for _ in range(3):
                with pytest.raises(CircuitOpenError) as excinfo:
                    manager.call("svc:x", DESCRIPTOR, lambda: "nope")
                assert "retry after 10s" in str(excinfo.value)
        finally:
            release.set()
            prober.join(5.0)
        assert outcome["result"] == "probed"
        assert manager._breakers["svc:x"].state == "closed"

    def test_probe_failure_reopens_and_sheds(self):
        manager, clock = tripped_manager()

        def fail():
            raise TransientServiceFailure("still down")

        with pytest.raises(TransientServiceFailure):
            manager.call("svc:x", DESCRIPTOR, fail)
        breaker = manager._breakers["svc:x"]
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            manager.call("svc:x", DESCRIPTOR, lambda: "nope")

    def test_service_reported_probe_releases_the_slot(self):
        manager, clock = tripped_manager()

        def report():
            raise ServiceReportedError("clean application error")

        # the probe ends without reaching the breaker: the half-open
        # slot must be released, not latched shut forever
        with pytest.raises(ServiceReportedError):
            manager.call("svc:x", DESCRIPTOR, report)
        breaker = manager._breakers["svc:x"]
        assert breaker.state == "half_open"
        assert not breaker.probing
        # the next caller gets to probe — and closes the breaker
        assert manager.call("svc:x", DESCRIPTOR, lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_foreign_exception_releases_the_slot(self):
        manager, clock = tripped_manager()

        def explode():
            raise ValueError("not a service failure at all")

        with pytest.raises(ValueError):
            manager.call("svc:x", DESCRIPTOR, explode)
        assert not manager._breakers["svc:x"].probing
        assert manager.call("svc:x", DESCRIPTOR, lambda: "ok") == "ok"


class TestRaceFreedom:
    def test_hammered_halfopen_admits_exactly_one_probe_per_window(self):
        manager, clock = tripped_manager()
        admitted = []
        barrier = threading.Barrier(8)
        gate = threading.Event()

        def probe():
            admitted.append(threading.current_thread().name)
            assert gate.wait(5.0)
            return "ok"

        def caller():
            barrier.wait(timeout=5.0)
            try:
                manager.call("svc:x", DESCRIPTOR, probe)
            except CircuitOpenError:
                pass

        threads = [threading.Thread(target=caller) for _ in range(8)]
        for thread in threads:
            thread.start()
        try:
            # all 8 race allow() together; exactly one reaches the probe
            time.sleep(0.3)
            assert len(admitted) == 1
        finally:
            gate.set()
            for thread in threads:
                thread.join(5.0)
        assert len(admitted) == 1
        assert manager._breakers["svc:x"].state == "closed"

    def test_transitions_stay_consistent_under_load(self):
        clock = FakeClock()
        manager = ResilienceManager(
            breaker=BreakerPolicy(failure_threshold=5, reset_timeout=1e9),
            clock=clock, sleep=lambda s: None, hedge=None)

        def fail():
            raise TransientServiceFailure("down")

        def caller():
            for _ in range(25):
                try:
                    manager.call("svc:x", DESCRIPTOR, fail)
                except (TransientServiceFailure, CircuitOpenError):
                    pass

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        breaker = manager._breakers["svc:x"]
        assert breaker.state == "open"
        assert breaker.opens >= 1
        # every call either reached the service or was shed — none lost
        assert manager.attempts + manager.breaker_rejections == 100
