"""GRH stats under concurrent dispatch: no lost counter increments.

The GRH's mediation counters were plain ``int += 1`` — safe under the
engine's single-threaded drain, but the GRH is also dispatched directly
(monitoring shims, multi-threaded deployments), where unlocked
increments silently lose counts.  They are now lock-protected
:class:`repro.obs.Counter` instances, shared with the metrics registry.
"""

import threading

from repro.bindings import Relation, relation_to_answers
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry, RetryPolicy,
                       xml_to_request)
from repro.grh.resilience import TransientServiceFailure
from repro.services import InProcessTransport


def run_threads(worker, count=8):
    threads = [threading.Thread(target=worker) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class _EchoService:
    def handle(self, message):
        xml_to_request(message)
        return relation_to_answers(Relation([{"X": 1}]))


class TestConcurrentDispatch:
    def test_request_count_is_exact(self):
        grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport())
        grh.add_service(LanguageDescriptor("urn:ql", "query", "ql"),
                        _EchoService())
        spec = ComponentSpec("query", "urn:ql", opaque="q")
        per_thread, threads = 200, 8

        def worker():
            for _ in range(per_thread):
                grh.evaluate_query("r::q0", spec, Relation.unit())

        run_threads(worker, threads)
        assert grh.request_count == per_thread * threads
        assert grh.stats["requests"] == per_thread * threads
        assert grh.stats["attempts"] == per_thread * threads

    def test_opaque_cache_hits_are_exact(self):
        grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport(),
                                    cache_opaque_requests=True)
        transport_calls = []
        grh.transport.bind_opaque("svc:exist",
                                  lambda q: (transport_calls.append(q),
                                             "<r/>")[1])
        grh.add_remote_language(
            LanguageDescriptor("urn:exist", "query", "exist-like",
                               framework_aware=False), "svc:exist")
        spec = ComponentSpec("query", "exist-like", opaque="static query",
                             bind_to="V")
        per_thread, threads = 100, 8

        def worker():
            for _ in range(per_thread):
                grh.evaluate_query("r::q0", spec, Relation.unit())

        # prime the cache so every threaded evaluation is a hit
        grh.evaluate_query("r::q0", spec, Relation.unit())
        run_threads(worker, threads)
        assert grh.cache_hits == per_thread * threads
        # a cache hit is not a mediated request: only the priming miss
        # reached the service
        assert grh.request_count == 1
        assert len(transport_calls) == 1

    def test_resilience_counters_under_concurrent_retries(self):
        flaky_state = threading.local()

        class _Flaky:
            def handle(self, message):
                # first attempt per request fails, the retry succeeds
                if not getattr(flaky_state, "failed", False):
                    flaky_state.failed = True
                    raise TransientServiceFailure("flap")
                flaky_state.failed = False
                return relation_to_answers(Relation([{"X": 1}]))

        grh = GenericRequestHandler(
            LanguageRegistry(),
            InProcessTransport(serialize_messages=False))
        grh.resilience.sleep = lambda seconds: None
        grh.add_service(
            LanguageDescriptor("urn:flaky", "query", "flaky",
                               retry=RetryPolicy(max_attempts=2,
                                                 base_delay=0.0)),
            _Flaky())
        spec = ComponentSpec("query", "urn:flaky", opaque="q")
        per_thread, threads = 50, 8

        def worker():
            for _ in range(per_thread):
                grh.evaluate_query("r::q0", spec, Relation.unit())

        run_threads(worker, threads)
        total = per_thread * threads
        stats = grh.stats
        assert stats["retries"] == total
        assert stats["attempts"] == 2 * total
        assert stats["services"]["svc:flaky"]["failures"] == total
        assert stats["services"]["svc:flaky"]["successes"] == total

    def test_counters_are_read_only_properties(self):
        import pytest
        grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport())
        with pytest.raises(AttributeError):
            grh.request_count = 5
        with pytest.raises(AttributeError):
            grh.cache_hits = 5
