"""The GRH resilience subsystem: retries, breakers, dead letters."""

import pytest

from repro.bindings import Relation, relation_to_answers
from repro.grh import (BreakerPolicy, CircuitBreaker, ComponentSpec,
                       DeadLetter, DeadLetterQueue, GRHError,
                       GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry, ResilienceManager, RetryPolicy,
                       error_message)
from repro.services import InProcessTransport


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, delta):
        self.now += delta


class RecordingSleep:
    def __init__(self):
        self.slept = []

    def __call__(self, seconds):
        self.slept.append(seconds)


class FailNTimesService:
    """Aware service that crashes for the first ``fail`` calls."""

    def __init__(self, fail=2, mode="crash"):
        self.fail = fail
        self.mode = mode
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if self.calls <= self.fail:
            if self.mode == "error":
                return error_message("scripted failure")
            raise RuntimeError("scripted outage")
        return relation_to_answers(Relation([{"Q": "fine"}]))


def make_grh(resilience=None, service=None, descriptor=None):
    grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport(),
                                resilience=resilience)
    if service is not None:
        grh.add_service(descriptor or LanguageDescriptor("urn:flaky",
                                                         "query", "flaky"),
                        service)
    return grh


def query_spec():
    from repro.xmlmodel import parse
    return ComponentSpec("query", "urn:flaky",
                         content=parse("<q xmlns='urn:flaky'/>"))


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             backoff_factor=2.0, max_delay=0.3, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.3)  # capped
        assert policy.delay_for(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.2)
        first = policy.delay_for(1, "http://svc/")
        assert first == policy.delay_for(1, "http://svc/")
        assert 0.1 <= first <= 0.1 * 1.2
        # jitter varies by attempt beyond the pure backoff factor
        assert policy.delay_for(2, "http://svc/") != pytest.approx(2 * first)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)


class TestCircuitBreaker:
    def test_closed_open_half_open_cycle(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2,
                                               reset_timeout=10.0))
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "closed"
        breaker.record_failure(1.0)
        assert breaker.state == "open"
        assert not breaker.allow(2.0)          # still open
        assert breaker.allow(11.0)             # half-open probe allowed
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                               reset_timeout=5.0))
        breaker.record_failure(0.0)
        assert breaker.state == "open"
        assert breaker.allow(6.0)
        breaker.record_failure(6.0)            # probe failed
        assert breaker.state == "open"
        assert not breaker.allow(7.0)
        assert breaker.opens == 2

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state == "closed"


class TestDeadLetterQueue:
    def test_bounded_fifo_drops_oldest(self):
        queue = DeadLetterQueue(max_size=2)
        for n in range(3):
            queue.append(DeadLetter(kind="detection", error=f"e{n}"))
        assert len(queue) == 2
        assert queue.dropped == 1
        assert [letter.error for letter in queue] == ["e1", "e2"]

    def test_drain_with_limit(self):
        queue = DeadLetterQueue()
        for n in range(3):
            queue.append(DeadLetter(kind="detection", error=f"e{n}"))
        first = queue.drain(2)
        assert [letter.error for letter in first] == ["e0", "e1"]
        assert len(queue) == 1
        assert [letter.error for letter in queue.drain()] == ["e2"]

    def test_dead_letter_markup(self):
        letter = DeadLetter(kind="detection", error="boom", attempts=2)
        element = letter.to_xml()
        assert element.name.local == "deadletter"
        assert element.get("kind") == "detection"
        assert element.get("attempts") == "2"
        assert "boom" in element.text()


class TestRetryMediation:
    def test_fails_twice_then_recovers_under_retry(self):
        sleep = RecordingSleep()
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                    sleep=sleep)
        service = FailNTimesService(fail=2)
        grh = make_grh(manager, service)
        result = grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert result == Relation([{"Q": "fine"}])
        assert service.calls == 3
        assert grh.stats["retries"] == 2
        assert len(sleep.slept) == 2
        assert sleep.slept[1] > sleep.slept[0]  # backoff grows

    def test_without_retries_the_same_service_fails(self):
        service = FailNTimesService(fail=2)
        grh = make_grh(ResilienceManager(), service)
        with pytest.raises(GRHError, match="scripted outage"):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 1

    def test_retry_exhaustion_raises_last_error(self):
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=2),
                                    sleep=lambda s: None)
        service = FailNTimesService(fail=5)
        grh = make_grh(manager, service)
        with pytest.raises(GRHError, match="unreachable or crashed"):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 2

    def test_service_errors_not_retried_by_default(self):
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                    sleep=lambda s: None)
        service = FailNTimesService(fail=2, mode="error")
        grh = make_grh(manager, service)
        with pytest.raises(GRHError, match="scripted failure"):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 1

    def test_service_errors_retried_on_opt_in(self):
        policy = RetryPolicy(max_attempts=3, retry_on_service_errors=True)
        manager = ResilienceManager(retry=policy, sleep=lambda s: None)
        service = FailNTimesService(fail=2, mode="error")
        grh = make_grh(manager, service)
        result = grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert result == Relation([{"Q": "fine"}])
        assert service.calls == 3

    def test_per_language_policy_overrides_default(self):
        manager = ResilienceManager(sleep=lambda s: None)  # no retries
        descriptor = LanguageDescriptor("urn:flaky", "query", "flaky",
                                        retry=RetryPolicy(max_attempts=3))
        service = FailNTimesService(fail=2)
        grh = make_grh(manager, service, descriptor)
        result = grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert result == Relation([{"Q": "fine"}])
        assert service.calls == 3

    def test_unaware_fetch_path_is_retried_too(self):
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                    sleep=lambda s: None)
        calls = []

        class FlakyOpaque:
            def execute(self, query):
                calls.append(query)
                if len(calls) <= 2:
                    raise RuntimeError("opaque outage")
                return "value"

        grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport(),
                                    resilience=manager)
        grh.add_service(LanguageDescriptor("urn:u", "query", "u",
                                           framework_aware=False),
                        FlakyOpaque())
        spec = ComponentSpec("query", "urn:u", opaque="q", bind_to="X")
        result = grh.evaluate_query("r::q0", spec, Relation.unit())
        assert [b["X"] for b in result] == ["value"]
        assert len(calls) == 3


class TestBreakerMediation:
    def make_world(self, fail, threshold=1, reset=10.0):
        clock = FakeClock()
        manager = ResilienceManager(
            breaker=BreakerPolicy(failure_threshold=threshold,
                                  reset_timeout=reset),
            clock=clock, sleep=lambda s: None)
        service = FailNTimesService(fail=fail)
        grh = make_grh(manager, service)
        return grh, service, clock

    def test_open_breaker_sheds_without_calling_service(self):
        grh, service, clock = self.make_world(fail=10)
        with pytest.raises(GRHError):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert grh.stats["breaker_opens"] == 1
        assert grh.stats["breakers"]["svc:flaky"] == "open"
        with pytest.raises(GRHError, match="circuit open"):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 1               # second request never sent
        assert grh.stats["breaker_rejections"] == 1

    def test_half_open_probe_recovers(self):
        grh, service, clock = self.make_world(fail=1)
        with pytest.raises(GRHError):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        clock.advance(11.0)                     # past reset_timeout
        result = grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert result == Relation([{"Q": "fine"}])
        assert grh.stats["breakers"]["svc:flaky"] == "closed"

    def test_half_open_probe_failure_reopens(self):
        grh, service, clock = self.make_world(fail=5)
        with pytest.raises(GRHError):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        clock.advance(11.0)
        with pytest.raises(GRHError):           # probe fails
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 2
        with pytest.raises(GRHError, match="circuit open"):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 2

    def test_retry_stops_once_breaker_opens(self):
        # 3 attempts allowed, but the breaker opens after 2 failures:
        # the third attempt is shed instead of hammering the service
        clock = FakeClock()
        manager = ResilienceManager(
            retry=RetryPolicy(max_attempts=5),
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=10),
            clock=clock, sleep=lambda s: None)
        service = FailNTimesService(fail=10)
        grh = make_grh(manager, service)
        with pytest.raises(GRHError):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert service.calls == 2

    def test_breakers_disabled_with_none(self):
        manager = ResilienceManager(breaker=None, sleep=lambda s: None)
        service = FailNTimesService(fail=1)
        grh = make_grh(manager, service)
        with pytest.raises(GRHError):
            grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        assert grh.stats["breakers"] == {}


class TestTimeoutPropagation:
    class RecordingTransport:
        def __init__(self):
            self.timeouts = []

        def bind(self, address, handler):
            return address

        def bind_opaque(self, address, handler):
            return address

        def send(self, address, message, timeout=None):
            self.timeouts.append(timeout)
            return relation_to_answers(Relation.unit())

        def fetch(self, address, query, timeout=None):
            self.timeouts.append(timeout)
            return "v"

    def test_descriptor_timeout_reaches_transport(self):
        transport = self.RecordingTransport()
        grh = GenericRequestHandler(LanguageRegistry(), transport)
        grh.add_service(LanguageDescriptor("urn:q", "query", "q",
                                           timeout=1.5),
                        type("S", (), {"handle": staticmethod(lambda m: m)}))
        grh.evaluate_query("r::q0", ComponentSpec(
            "query", "urn:q", opaque="x", bind_to=None), Relation.unit())
        assert transport.timeouts == [1.5]

    def test_policy_timeout_reaches_fetch(self):
        transport = self.RecordingTransport()
        manager = ResilienceManager(retry=RetryPolicy(timeout=0.25))
        grh = GenericRequestHandler(LanguageRegistry(), transport,
                                    resilience=manager)
        grh.add_service(LanguageDescriptor("urn:u", "query", "u",
                                           framework_aware=False),
                        type("S", (), {"execute":
                                       staticmethod(lambda q: "v")}))
        grh.evaluate_query("r::q0", ComponentSpec(
            "query", "urn:u", opaque="x", bind_to="X"), Relation.unit())
        assert transport.timeouts == [0.25]

    def test_no_timeout_configured_omits_the_argument(self):
        calls = []

        class StrictTransport:
            def bind(self, address, handler):
                return address

            def send(self, address, message):  # no timeout parameter
                calls.append(address)
                return relation_to_answers(Relation.unit())

        grh = GenericRequestHandler(LanguageRegistry(), StrictTransport())
        grh.add_service(LanguageDescriptor("urn:q", "query", "q"),
                        type("S", (), {"handle": staticmethod(lambda m: m)}))
        grh.evaluate_query("r::q0", ComponentSpec(
            "query", "urn:q", opaque="x"), Relation.unit())
        assert calls  # legacy transports keep working untouched


class TestStatsSurface:
    def test_stats_shape(self):
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=2),
                                    sleep=lambda s: None)
        service = FailNTimesService(fail=1)
        grh = make_grh(manager, service)
        grh.evaluate_query("r::q0", query_spec(), Relation.unit())
        stats = grh.stats
        assert stats["requests"] == 1
        assert stats["retries"] == 1
        assert stats["attempts"] == 2
        rates = stats["services"]["svc:flaky"]
        assert rates["failures"] == 1 and rates["successes"] == 1
        assert rates["failure_rate"] == pytest.approx(0.5)
