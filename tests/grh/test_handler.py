"""GRH mediation: dispatch, aware/unaware adaptation, error handling."""

import pytest

from repro.bindings import Binding, Relation, relation_to_answers
from repro.grh import (ComponentSpec, GenericRequestHandler, GRHError,
                       LanguageDescriptor, LanguageRegistry, error_message,
                       ok_message, xml_to_request)
from repro.services import InProcessTransport
from repro.xmlmodel import Element, LOG_NS, QName, Text, parse, serialize
from repro.bindings import binding_to_answer


def make_grh():
    return GenericRequestHandler(LanguageRegistry(), InProcessTransport())


class _RecordingService:
    """Aware service that records requests and answers canned relations."""

    def __init__(self, respond_with=None):
        self.requests = []
        self.respond_with = respond_with if respond_with is not None \
            else Relation.unit()

    def handle(self, message):
        self.requests.append(message)
        request = xml_to_request(message)
        if request.kind in ("register-event", "unregister-event", "action"):
            return ok_message()
        return relation_to_answers(self.respond_with)


class TestDispatch:
    def test_namespace_dispatch(self):
        grh = make_grh()
        service = _RecordingService(Relation([{"X": 1}]))
        grh.add_service(LanguageDescriptor("urn:ql", "query", "ql"), service)
        spec = ComponentSpec("query", "urn:ql", content=parse(
            "<q xmlns='urn:ql'/>"))
        result = grh.evaluate_query("r::q0", spec, Relation.unit())
        assert result == Relation([{"X": 1}])
        assert len(service.requests) == 1

    def test_opaque_language_name_dispatch(self):
        grh = make_grh()
        service = _RecordingService(Relation([{"X": 1}]))
        grh.add_service(LanguageDescriptor("urn:ql", "query", "fancy-ql"),
                        service)
        spec = ComponentSpec("query", "fancy-ql", opaque="the query")
        result = grh.evaluate_query("r::q0", spec, Relation.unit())
        assert result == Relation([{"X": 1}])
        # the opaque text travelled inside an eca:opaque wrapper
        request = xml_to_request(service.requests[0])
        assert request.content.text() == "the query"

    def test_unknown_language_raises(self):
        grh = make_grh()
        spec = ComponentSpec("query", "urn:ghost", opaque="q")
        with pytest.raises(GRHError, match="no language registered"):
            grh.evaluate_query("r::q0", spec, Relation.unit())

    def test_service_error_becomes_grh_error(self):
        grh = make_grh()

        class Failing:
            def handle(self, message):
                return error_message("database on fire")

        grh.add_service(LanguageDescriptor("urn:ql", "query", "ql"),
                        Failing())
        spec = ComponentSpec("query", "urn:ql",
                             content=parse("<q xmlns='urn:ql'/>"))
        with pytest.raises(GRHError, match="database on fire"):
            grh.evaluate_query("r::q0", spec, Relation.unit())

    def test_adding_a_language_needs_no_engine_changes(self):
        # DESIGN.md §5: adding a language is just a registration
        grh = make_grh()
        for index in range(5):
            grh.add_service(LanguageDescriptor(f"urn:ql{index}", "query",
                                               f"ql{index}"),
                            _RecordingService())
        assert len(grh.registry.languages("query")) == 5


class TestFunctionalBinding:
    """eca:variable semantics over aware services (Fig. 8)."""

    def _answers_with_results(self):
        answers = Element(QName(LOG_NS, "answers"), nsdecls={"log": LOG_NS})
        answers.append(binding_to_answer(Binding({"Person": "John Doe"}),
                                         results=["Golf", "Passat"]))
        return answers

    def test_results_extend_input_tuples(self):
        grh = make_grh()
        answers = self._answers_with_results()

        class Functional:
            def handle(self, message):
                return answers

        grh.add_service(LanguageDescriptor("urn:xq", "query", "xq"),
                        Functional())
        spec = ComponentSpec("query", "urn:xq",
                             content=parse("<q xmlns='urn:xq'/>"),
                             bind_to="OwnCar")
        result = grh.evaluate_query("r::q0", spec,
                                    Relation([{"Person": "John Doe"}]))
        assert {binding["OwnCar"] for binding in result} == {"Golf", "Passat"}

    def test_conflicting_result_dropped_not_fatal(self):
        grh = make_grh()
        answers = Element(QName(LOG_NS, "answers"), nsdecls={"log": LOG_NS})
        answers.append(binding_to_answer(Binding({"OwnCar": "Clio"}),
                                         results=["Golf"]))

        class Functional:
            def handle(self, message):
                return answers

        grh.add_service(LanguageDescriptor("urn:xq", "query", "xq"),
                        Functional())
        spec = ComponentSpec("query", "urn:xq",
                             content=parse("<q xmlns='urn:xq'/>"),
                             bind_to="OwnCar")
        result = grh.evaluate_query("r::q0", spec, Relation.unit())
        assert result == Relation.empty()


class TestUnawareAdaptation:
    """Fig. 9: per-tuple substitution against framework-unaware services."""

    def setup_grh(self, responses):
        grh = make_grh()
        log = []

        class Unaware:
            def execute(self, query):
                log.append(query)
                return responses.get(query, "")

        grh.add_service(LanguageDescriptor("urn:exist", "query", "exist",
                                           framework_aware=False), Unaware())
        return grh, log

    def test_substitution_and_per_tuple_requests(self):
        grh, log = self.setup_grh({"class-of Golf": "B",
                                   "class-of Passat": "C"})
        spec = ComponentSpec("query", "urn:exist",
                             opaque="class-of {OwnCar}", bind_to="Class")
        result = grh.evaluate_query(
            "r::q1", spec, Relation([{"OwnCar": "Golf"},
                                     {"OwnCar": "Passat"}]))
        assert sorted(log) == ["class-of Golf", "class-of Passat"]
        assert {(b["OwnCar"], b["Class"]) for b in result} == {
            ("Golf", "B"), ("Passat", "C")}

    def test_empty_response_drops_tuple(self):
        grh, _ = self.setup_grh({"class-of Golf": "B"})
        spec = ComponentSpec("query", "urn:exist",
                             opaque="class-of {OwnCar}", bind_to="Class")
        result = grh.evaluate_query(
            "r::q1", spec, Relation([{"OwnCar": "Golf"},
                                     {"OwnCar": "Unknown"}]))
        assert len(result) == 1

    def test_xml_fragment_results(self):
        grh, _ = self.setup_grh({"q": "<car m='Polo'/><car m='Corsa'/>"})
        spec = ComponentSpec("query", "urn:exist", opaque="q", bind_to="Car")
        result = grh.evaluate_query("r::q1", spec, Relation.unit())
        models = {binding["Car"].get("m") for binding in result}
        assert models == {"Polo", "Corsa"}

    def test_unbound_placeholder_raises(self):
        grh, _ = self.setup_grh({})
        spec = ComponentSpec("query", "urn:exist", opaque="q {Ghost}",
                             bind_to="X")
        with pytest.raises(GRHError, match="Ghost"):
            grh.evaluate_query("r::q1", spec, Relation.unit())

    def test_results_without_variable_wrapper_rejected(self):
        grh, _ = self.setup_grh({"q": "plain text"})
        spec = ComponentSpec("query", "urn:exist", opaque="q")
        with pytest.raises(GRHError, match="eca:variable"):
            grh.evaluate_query("r::q1", spec, Relation.unit())

    def test_crlf_plain_text_lines_bind_stripped(self):
        # HTTP services answer with \r\n line endings; bound values must
        # not keep the \r (it would poison joins against clean values)
        grh, _ = self.setup_grh({"q": "Golf\r\nPassat\r\n"})
        spec = ComponentSpec("query", "urn:exist", opaque="q", bind_to="Car")
        result = grh.evaluate_query("r::q1", spec, Relation.unit())
        assert {binding["Car"] for binding in result} == {"Golf", "Passat"}
        joined = result.join(Relation([{"Car": "Golf"}]))
        assert len(joined) == 1

    def test_fake_aware_log_answers_response(self):
        # Fig. 10: the response IS a log:answers structure
        answers = relation_to_answers(Relation([{"Avail": "Polo",
                                                 "Class": "B"}]))
        grh, _ = self.setup_grh({"q": serialize(answers)})
        spec = ComponentSpec("query", "urn:exist", opaque="q")
        result = grh.evaluate_query("r::q1", spec,
                                    Relation([{"Class": "B"},
                                              {"Class": "C"}]))
        assert len(result) == 1
        (binding,) = result
        assert binding["Avail"] == "Polo"

    def test_markup_component_for_unaware_language_rejected(self):
        grh, _ = self.setup_grh({})
        spec = ComponentSpec("query", "urn:exist",
                             content=parse("<q xmlns='urn:exist'/>"))
        with pytest.raises(GRHError, match="opaque"):
            grh.evaluate_query("r::q1", spec, Relation.unit())


class TestActionsAndEvents:
    def test_action_request_per_tuple(self):
        grh = make_grh()
        service = _RecordingService()
        grh.add_service(LanguageDescriptor("urn:act", "action", "act"),
                        service)
        spec = ComponentSpec("action", "urn:act",
                             content=parse("<a xmlns='urn:act'/>"))
        count = grh.execute_action("r::a0", spec,
                                   Relation([{"X": 1}, {"X": 2}]))
        assert count == 2
        assert len(service.requests) == 2

    def test_event_component_must_be_event_family(self):
        grh = make_grh()
        spec = ComponentSpec("query", "urn:ql", opaque="q")
        with pytest.raises(GRHError, match="not an event component"):
            grh.register_event_component("r::event", spec)

    def test_request_count_tracks_mediation_load(self):
        grh = make_grh()
        service = _RecordingService()
        grh.add_service(LanguageDescriptor("urn:q", "query", "q"), service)
        spec = ComponentSpec("query", "urn:q",
                             content=parse("<q xmlns='urn:q'/>"))
        grh.evaluate_query("r::q0", spec, Relation.unit())
        grh.evaluate_query("r::q0", spec, Relation.unit())
        assert grh.request_count == 2
