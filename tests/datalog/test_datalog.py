"""Datalog: parsing, bottom-up evaluation, recursion, negation, safety."""

import pytest

from repro.datalog import (Atom, Const, DatalogEngine, DatalogSyntaxError,
                           SafetyError, StratificationError, Var, evaluate,
                           parse_atom, parse_program, query)


class TestParser:
    def test_facts_and_rules(self):
        program = parse_program("""
            % the car-rental knowledge base
            owns("John Doe", golf).
            class(golf, "B").
            offer(P, C) :- owns(P, C), class(C, K).
        """)
        assert len(program) == 3
        assert program.rules[0].is_fact
        assert not program.rules[2].is_fact

    def test_terms(self):
        atom = parse_atom('p(X, _Anon, lower, "Str ing", 42, -1.5)')
        assert atom.arguments == (Var("X"), Var("_Anon"), Const("lower"),
                                  Const("Str ing"), Const(42), Const(-1.5))

    def test_negation_and_comparison(self):
        program = parse_program(
            "p(X) :- q(X), not r(X), X > 3, X != 10.")
        body = program.rules[0].body
        kinds = [type(item).__name__ for item in body]
        assert kinds == ["BodyLiteral", "BodyLiteral", "Comparison",
                         "Comparison"]
        assert body[1].negated

    def test_not_prefix_predicate_is_not_negation(self):
        program = parse_program("p(X) :- notes(X).")
        assert not program.rules[0].body[0].negated

    @pytest.mark.parametrize("bad", [
        "p(X)",                 # missing dot
        "p(X :- q(X).",         # bad parens
        "P(x).",                # uppercase predicate
        'p("unterminated).',
        "p(X) :- .",            # empty body item
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(DatalogSyntaxError):
            parse_program(bad)


class TestEvaluation:
    def test_simple_join(self):
        rows = query("""
            owns("John Doe", golf).  owns("John Doe", passat).
            class(golf, "B").        class(passat, "C").
            owned_class(P, K) :- owns(P, C), class(C, K).
        """, 'owned_class("John Doe", K)')
        assert {row["K"] for row in rows} == {"B", "C"}

    def test_transitive_closure(self):
        rows = query("""
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
        """, "path(a, X)")
        assert {row["X"] for row in rows} == {"b", "c", "d"}

    def test_cyclic_graph_terminates(self):
        rows = query("""
            edge(a, b). edge(b, a).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
        """, "path(X, Y)")
        assert len(rows) == 4  # a-a, a-b, b-a, b-b

    def test_ground_query(self):
        engine = evaluate("p(1). p(2).")
        assert engine.holds("p(1)")
        assert not engine.holds("p(3)")

    def test_repeated_variable_in_query(self):
        rows = query("e(a, a). e(a, b).", "e(X, X)")
        assert rows == [{"X": "a"}]

    def test_repeated_variable_in_body(self):
        rows = query("""
            e(a, a). e(a, b).
            loop(X) :- e(X, X).
        """, "loop(X)")
        assert rows == [{"X": "a"}]

    def test_comparison_builtins(self):
        rows = query("""
            n(1). n(2). n(3).
            big(X) :- n(X), X >= 2.
        """, "big(X)")
        assert {row["X"] for row in rows} == {2, 3}

    def test_numeric_equality_across_int_float(self):
        rows = query("n(2). m(2.0). both(X) :- n(X), m(Y), X = Y.",
                     "both(X)")
        assert len(rows) == 1

    def test_negation(self):
        rows = query("""
            car(golf). car(passat).
            rented(passat).
            available(C) :- car(C), not rented(C).
        """, "available(C)")
        assert rows == [{"C": "golf"}]

    def test_two_strata(self):
        rows = query("""
            node(a). node(b). node(c).
            edge(a, b).
            reach(a).
            reach(Y) :- reach(X), edge(X, Y).
            unreachable(X) :- node(X), not reach(X).
        """, "unreachable(X)")
        assert {row["X"] for row in rows} == {"c"}

    def test_paper_car_rental_rule(self):
        # the full Fig. 4-11 pipeline expressed as one deductive rule
        rows = query("""
            books("John Doe", paris).
            owns("John Doe", golf). owns("John Doe", passat).
            class(golf, "B"). class(passat, "C").
            class(polo, "B"). class(espace, "D").
            available(polo, paris). available(espace, paris).
            offer(P, Dest, C) :- books(P, Dest), owns(P, Own),
                                 class(Own, K), available(C, Dest),
                                 class(C, K).
        """, "offer(P, D, C)")
        assert rows == [{"P": "John Doe", "D": "paris", "C": "polo"}]


class TestSemiNaive:
    def test_linear_chain_converges(self):
        facts = "\n".join(f"edge(n{i}, n{i+1})." for i in range(50))
        engine = evaluate(facts + """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
        """)
        assert len(engine.facts("path", 2)) == 50 * 51 // 2

    def test_facts_accessor(self):
        engine = evaluate("p(1). p(2). q(X) :- p(X).")
        assert engine.facts("q", 1) == {(1,), (2,)}
        assert engine.facts("missing", 1) == set()


class TestErrors:
    def test_unsafe_head_variable(self):
        with pytest.raises(SafetyError):
            DatalogEngine("p(X, Y) :- q(X).")

    def test_unsafe_negated_variable(self):
        with pytest.raises(SafetyError):
            DatalogEngine("p(X) :- q(X), not r(Y).")

    def test_unsafe_comparison_variable(self):
        with pytest.raises(SafetyError):
            DatalogEngine("p(X) :- q(X), Y > 1.")

    def test_fact_with_variable(self):
        with pytest.raises(SafetyError):
            evaluate("p(X).")

    def test_unstratifiable(self):
        with pytest.raises(StratificationError):
            evaluate("""
                p(X) :- q(X), not r(X).
                r(X) :- q(X), not p(X).
                q(1).
            """)

    def test_mixed_type_ordering_rejected(self):
        with pytest.raises(Exception, match="mixed"):
            query('p("a"). big(X) :- p(X), X > 1.', "big(X)")
