"""Evaluation strategies agree; semi-naive does less work."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import DatalogEngine, DatalogError, evaluate

TC_RULES = """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
"""


def closure_program(edges):
    facts = "\n".join(f"edge(n{a}, n{b})." for a, b in edges)
    return facts + TC_RULES


class TestStrategyEquivalence:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(DatalogError, match="strategy"):
            DatalogEngine("p(1).", strategy="psychic")

    def test_same_fixpoint_on_chain(self):
        program = closure_program([(i, i + 1) for i in range(20)])
        semi = DatalogEngine(program)
        naive = DatalogEngine(program, strategy="naive")
        assert semi.facts("path", 2) == naive.facts("path", 2)

    def test_semi_naive_uses_fewer_or_equal_derivation_rounds(self):
        program = closure_program([(i, i + 1) for i in range(15)])
        semi = DatalogEngine(program)
        naive = DatalogEngine(program, strategy="naive")
        semi.facts("path", 2)
        naive.facts("path", 2)
        assert semi.rounds <= naive.rounds

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                   max_size=20))
    def test_property_same_fixpoint_on_random_graphs(self, edges):
        if not edges:
            return
        program = closure_program(sorted(edges))
        semi = DatalogEngine(program)
        naive = DatalogEngine(program, strategy="naive")
        assert semi.facts("path", 2) == naive.facts("path", 2)


class TestAgainstNetworkxReference:
    """Transitive closure must equal the networkx reference result."""

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 10), st.integers(0, 10)),
                   min_size=1, max_size=25))
    def test_transitive_closure_matches_networkx(self, edges):
        import networkx as nx
        graph = nx.DiGraph(sorted(edges))
        expected = {(f"n{a}", f"n{b}")
                    for a, b in nx.transitive_closure(graph).edges()}
        engine = evaluate(closure_program(sorted(edges)))
        assert engine.facts("path", 2) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                   min_size=1, max_size=20),
           st.integers(0, 8))
    def test_reachability_matches_networkx(self, edges, source):
        import networkx as nx
        graph = nx.DiGraph(sorted(edges))
        graph.add_node(source)
        expected = {f"n{node}" for node in nx.descendants(graph, source)}
        expected.add(f"n{source}")
        facts = "\n".join(f"edge(n{a}, n{b})." for a, b in sorted(edges))
        engine = evaluate(facts + f"""
            reach(n{source}).
            reach(Y) :- reach(X), edge(X, Y).
        """)
        assert {values[0] for values in engine.facts("reach", 1)} == expected
