"""Recovery semantics: rule rebuild, dedupe, DLQ restore, exactly-once."""

import os

import pytest

from repro.core import ECAEngine, RuleRepository
from repro.durability import (CHECKPOINT_NAME, DurabilityManager,
                              JOURNAL_NAME, read_state)
from repro.services import standard_deployment
from repro.xmlmodel import E, parse, serialize

from .harness import BAD_RULE, OK_RULE, CrashWorld, CrashingJournal, RULES


@pytest.fixture()
def directory(tmp_path):
    return str(tmp_path / "durable")


def crash_at(directory, fuse, script, rules=RULES, tear=0):
    """Run ``script`` against a fresh world, crashing at journal write
    ``fuse``; returns the (detached) world."""
    from repro.durability import SimulatedCrash
    world = CrashWorld(directory)
    try:
        journal = CrashingJournal(os.path.join(directory, JOURNAL_NAME),
                                  fuse=fuse, tear=tear, sync="none")
        world.boot(journal=journal)
        world.setup_rules(rules)
        world.run_script(script)
    except SimulatedCrash:
        world.crash()
        return world
    raise AssertionError("scenario finished without crashing")


class TestReadState:
    def test_empty_directory_reads_as_fresh(self, directory):
        os.makedirs(directory)
        state = read_state(directory)
        assert state.rules == {}
        assert state.next_detection == 1
        assert not state.in_flight and not state.done
        assert state.epoch == 0

    def test_journal_off_is_the_default(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        assert engine.durability is None
        engine.register_rule(OK_RULE)
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert engine.stats["completed"] == 1


class TestRuleRebuild:
    def test_rules_reload_from_journaled_source(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.crash()
        world.boot()
        assert sorted(world.engine.rules) == ["bad", "ok"]
        # the surviving event service was not double-registered
        assert sorted(world.atomic.registered_ids) == ["bad::event",
                                                       "ok::event"]

    def test_repository_is_authoritative_when_present(self, directory):
        deployment = standard_deployment()
        manager = DurabilityManager(directory, sync="none")
        engine = ECAEngine(deployment.grh, durability=manager)
        repository = RuleRepository()
        engine.register_and_store(OK_RULE, repository)
        manager.close()

        fresh = standard_deployment()
        recovered = ECAEngine.recover(fresh.grh, directory,
                                      repository=repository)
        assert sorted(recovered.rules) == ["ok"]
        fresh.stream.emit(E("ping", {"n": "9"}))
        assert recovered.stats["completed"] == 1

    def test_deregistered_rules_stay_gone(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.engine.deregister_rule("bad")
        world.crash()
        world.boot()
        assert sorted(world.engine.rules) == ["ok"]


class TestDetectionDedupe:
    def test_duplicate_delivery_is_dropped(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("ping", {"n": "1"}),))
        assert len(world.captured) == 1
        world.redeliver()
        world.redeliver()
        assert world.effects() == {"out": ['<pong n="1"/>']}
        assert world.engine.stats["instances"] == 1

    def test_dedupe_survives_recovery(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("ping", {"n": "1"}),))
        world.crash()
        world.boot()
        world.setup_rules()
        world.redeliver()
        assert world.effects() == {"out": ['<pong n="1"/>']}

    def test_engine_assigns_ids_to_unstamped_detections(self, directory):
        from repro.grh.messages import xml_to_detection
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("ping", {"n": "1"}),))
        raw = parse(world.captured[0])
        raw.attributes.pop(next(a for a in raw.attributes
                                if a.local == "detection-id"))
        anonymous = xml_to_detection(raw)
        assert anonymous.detection_id is None
        world._notify(raw)   # same payload, no id: the engine stamps one
        assert world.engine.stats["instances"] == 2
        assert world.engine.durability.next_detection == 2


class TestInFlightReplay:
    def test_incomplete_detection_is_redriven(self, directory):
        # writes: epoch, rule-add, det — the crash hits the exec record,
        # so the detection is journaled but no effect was dispatched
        world = crash_at(directory, fuse=3, script=(E("ping", {"n": "1"}),),
                         rules=(OK_RULE,))
        assert world.effects() == {}
        world.boot()
        world.engine._replay_in_flight()
        assert world.effects() == {"out": ['<pong n="1"/>']}

    def test_journaled_exec_keys_are_not_reexecuted(self, directory):
        # a two-tuple detection, crash during the second tuple's
        # dispatch: the intent record covers both keys, the first tuple
        # really executed, the second never ran; recovery re-dispatches
        # both under their journaled wire keys and the service-side
        # dedup memory suppresses the first — each effect lands exactly
        # once
        from repro.bindings import Binding, Relation
        from repro.durability import SimulatedCrash
        from repro.grh.messages import Detection, detection_to_xml
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules((OK_RULE,))
        real_action = world.actions.action
        calls = {"n": 0}

        def crashing_action(request):
            calls["n"] += 1
            if calls["n"] == 2:
                raise SimulatedCrash("second dispatch")
            real_action(request)

        world.actions.action = crashing_action
        detection = Detection("ok::event", 0.0, 0.0,
                              Relation([Binding({"N": "1"}),
                                        Binding({"N": "2"})]), (),
                              detection_id="manual:1")
        world.captured.append(serialize(detection_to_xml(detection)))
        with pytest.raises(SimulatedCrash):
            world._notify(detection_to_xml(detection))
        world.crash()
        # the first tuple's effect landed before the crash
        assert world.effects() == {"out": ['<pong n="1"/>']}
        world.boot()
        world.engine._replay_in_flight()
        world.redeliver()
        assert world.effects() == {"out": ['<pong n="1"/>',
                                           '<pong n="2"/>']}

    def test_parked_in_flight_closes_as_failed_without_duplicate_letter(
            self, directory):
        # BAD_RULE parks an action letter, then the crash hits the done
        # record (writes: epoch, rule-add, det, exec, park): recovery
        # must keep the letter and NOT re-drive
        world = crash_at(directory, fuse=5,
                         script=(E("boom", {"n": "1"}),), rules=(BAD_RULE,))
        world.boot()
        world.engine._replay_in_flight()
        assert len(world.grh.resilience.dead_letters) == 1
        manager = world.engine.durability
        assert manager.done.get("atomic-event-matcher:1") == "failed"


class TestDeadLetterDurability:
    def test_queue_restores_across_recovery(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("boom", {"n": "1"}), E("boom", {"n": "2"})))
        before = world.dead_letters()
        assert len(before) == 2
        world.crash()
        world.boot()
        assert world.dead_letters() == before

    def test_restored_action_letters_replay(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("boom", {"n": "7"}),))
        world.crash()
        world.boot()
        # the missing document appears: replay can now succeed
        world.runtime.register_document("missing", parse("<x/>"))
        summary = world.engine.replay_dead_letters()
        assert summary == {"replayed": 1, "succeeded": 1, "failed": 0,
                           "actions": 1}
        assert len(world.grh.resilience.dead_letters) == 0
        assert serialize(world.runtime.documents["missing"]) == \
            '<x><y n="7"/></x>'

    def test_drained_letters_stay_drained(self, directory):
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("boom", {"n": "1"}),))
        world.runtime.register_document("missing", parse("<x/>"))
        world.engine.replay_dead_letters()
        world.crash()
        world.boot()
        assert world.dead_letters() == []


class TestCheckpointing:
    def test_auto_checkpoint_compacts_the_journal(self, directory):
        world = CrashWorld(directory)
        world.boot(checkpoint_interval=5)
        world.setup_rules()
        script = tuple(E("ping", {"n": str(n)}) for n in range(1, 9))
        world.run_script(script)
        manager = world.engine.durability
        assert manager.checkpointer.taken >= 1
        assert manager.epoch >= 1
        # the journal was truncated: pre-checkpoint records (e.g. the
        # rule registrations) now live only in the checkpoint
        from repro.durability import JournalReader
        records = list(JournalReader(
            os.path.join(directory, JOURNAL_NAME)).records())
        assert not any(record["t"] == "rule-add" for record in records)
        world.crash()
        world.boot()
        assert sorted(world.engine.rules) == ["bad", "ok"]
        assert world.engine.stats["completed"] == 8

    def test_stale_journal_is_ignored(self, directory):
        # crash window between checkpoint rename and journal restart:
        # the journal's records are already folded into the checkpoint
        world = CrashWorld(directory)
        world.boot()
        world.setup_rules()
        world.run_script((E("ping", {"n": "1"}),))
        manager = world.engine.durability
        manager.epoch += 1
        manager.checkpointer.write(manager.snapshot())
        world.crash()   # journal restart never happened
        state = read_state(directory)
        assert state.stale_journal
        world.boot()
        world.setup_rules()
        world.redeliver()
        assert world.effects() == {"out": ['<pong n="1"/>']}
        assert world.engine.stats["completed"] == 1

    def test_recovery_takes_a_compacting_checkpoint(self, directory):
        deployment = standard_deployment()
        manager = DurabilityManager(directory, sync="none")
        engine = ECAEngine(deployment.grh, durability=manager)
        engine.register_rule(OK_RULE)
        deployment.stream.emit(E("ping", {"n": "1"}))
        manager.close()
        fresh = standard_deployment()
        ECAEngine.recover(fresh.grh, directory)
        assert os.path.exists(os.path.join(directory, CHECKPOINT_NAME))
