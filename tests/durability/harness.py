"""Shared harness for recovery and crash-injection tests.

Crash model: the engine process dies (``SimulatedCrash``, uncatchable
by ``except Exception``) while everything *outside* the process keeps
its state — the event-detection and action services of the paper are
autonomous, possibly remote (Sec. 4.4).  A :class:`CrashWorld` therefore
owns the long-lived halves (event stream, detection service, action
runtime with its mailboxes, the durability directory, and the captured
detection messages that model an at-least-once delivery channel), while
:meth:`CrashWorld.boot` builds the crashable halves fresh each time:
transport, registry, GRH, engine, durability manager.

After a crash the driver reboots, recovers, re-delivers every captured
detection (at-least-once), re-runs the idempotent setup, and finishes
the event script.  The resulting world must equal an uncrashed oracle.
"""

from __future__ import annotations

import os

from repro.actions import ACTION_NS, ActionRuntime
from repro.core import ECAEngine, parse_rule
from repro.durability import (DurabilityManager, JOURNAL_NAME, Journal,
                              SimulatedCrash)
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, GRHError, LanguageDescriptor,
                       LanguageRegistry)
from repro.services.action_service import ActionExecutionService
from repro.services.event_service import AtomicEventService
from repro.services.transports import InProcessTransport
from repro.xmlmodel import E, ECA_NS, parse, serialize

ECA = f'xmlns:eca="{ECA_NS}"'
ACT = f'xmlns:act="{ACTION_NS}"'

#: a rule that succeeds: ping(N) → send pong(N) to the "out" mailbox
OK_RULE = f"""
<eca:rule {ECA} id="ok">
  <eca:event><ping n="{{N}}"/></eca:event>
  <eca:action>
    <act:send {ACT} to="out"><pong n="{{N}}"/></act:send>
  </eca:action>
</eca:rule>
"""

#: a rule whose action always fails (inserts into a missing document):
#: every boom(N) detection ends as one action dead letter
BAD_RULE = f"""
<eca:rule {ECA} id="bad">
  <eca:event><boom n="{{N}}"/></eca:event>
  <eca:action>
    <act:insert {ACT} document="missing" at="/x"><y n="{{N}}"/></act:insert>
  </eca:action>
</eca:rule>
"""

RULES = (OK_RULE, BAD_RULE)

#: the default event script: successes interleaved with failures
SCRIPT = (E("ping", {"n": "1"}), E("boom", {"n": "2"}),
          E("ping", {"n": "3"}), E("ping", {"n": "4"}),
          E("boom", {"n": "5"}), E("ping", {"n": "6"}))


class CrashingJournal(Journal):
    """A journal that dies on its ``fuse``-th low-level write.

    ``fuse`` counts every framed write since world start — including
    epoch records and journal restarts — so a sweep over fuse values
    visits every journaled state transition of a scenario.  ``tear``
    controls how many bytes of the fatal frame reach the file first
    (0 = nothing, models a crash just before the write; a positive
    value models a torn, partially flushed frame).
    """

    def __init__(self, path: str, fuse: int, tear: int = 0, **kwargs) -> None:
        self.fuse = fuse
        self.tear = tear
        self.writes = 0
        super().__init__(path, **kwargs)

    def _write(self, data: bytes) -> None:
        if self.writes >= self.fuse:
            if self.tear:
                super()._write(data[:self.tear])
                self._file.flush()
            raise SimulatedCrash(f"journal write #{self.writes}")
        self.writes += 1
        super()._write(data)


class CrashWorld:
    """The durable surroundings of one (crashable) engine process."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stream = EventStream()
        self.runtime = ActionRuntime(event_stream=self.stream)
        # the harness controls the service lifetime (it survives every
        # crash), so deterministic un-namespaced detection ids are safe
        self.atomic = AtomicEventService(self._deliver, incarnation="")
        self.atomic.attach(self.stream)
        self.actions = ActionExecutionService(self.runtime)
        #: every detection message the service ever emitted, in order —
        #: the at-least-once channel a real broker would re-deliver from
        self.captured: list[str] = []
        self._notify = None
        self.engine: ECAEngine | None = None
        self.grh: GenericRequestHandler | None = None

    def _deliver(self, detection_xml) -> None:
        self.captured.append(serialize(detection_xml))
        if self._notify is not None:
            self._notify(detection_xml)

    # -- process lifecycle ---------------------------------------------------

    def boot(self, journal: Journal | None = None, sync: str = "none",
             checkpoint_interval: int = 10 ** 9,
             replay: bool = False) -> ECAEngine:
        """Start a fresh engine process over the surviving services.

        ``replay=False`` (the crash-test default) leaves in-flight
        replay to the driver; ``replay=True`` runs the full
        :meth:`ECAEngine.recover` sequence, after which the engine
        reports ready (``/readyz``)."""
        registry = LanguageRegistry()
        transport = InProcessTransport(serialize_messages=True)
        grh = GenericRequestHandler(registry, transport)
        grh.add_service(
            LanguageDescriptor(ATOMIC_NS, "event", "atomic-events"),
            self.atomic)
        grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                        self.actions)
        manager = DurabilityManager(self.directory, sync=sync,
                                    checkpoint_interval=checkpoint_interval,
                                    journal=journal)
        engine = ECAEngine.recover(grh, self.directory, manager=manager,
                                   replay=replay)
        self.grh = grh
        self.engine = engine
        self._notify = grh.notify
        return engine

    def crash(self) -> None:
        """The process is gone: close the journal, detach the services."""
        self._notify = None
        if self.engine is not None and self.engine.durability is not None:
            self.engine.durability.journal.close()
        self.engine = None
        self.grh = None

    # -- application code (re-runnable after recovery) -----------------------

    def setup_rules(self, rules=RULES) -> None:
        """Register the scenario's rules; idempotent across recoveries."""
        for markup in rules:
            rule = parse_rule(markup)
            if rule.rule_id not in self.engine.rules:
                self.engine.register_rule(rule, idempotent=True)

    def redeliver(self) -> None:
        """At-least-once redelivery of every captured detection."""
        for xml in list(self.captured):
            self._notify(parse(xml))

    def run_script(self, script=SCRIPT, start: int = 0) -> int:
        """Emit ``script[start:]``; returns the index to resume from
        after a crash (the crashed emit counts as delivered iff its
        detection reached the at-least-once channel)."""
        for index in range(start, len(script)):
            seen = len(self.captured)
            try:
                self.stream.emit(script[index].copy())
            except SimulatedCrash:
                raise _ScriptCrash(
                    index + 1 if len(self.captured) > seen else index
                ) from None
        return len(script)

    # -- observable state ----------------------------------------------------

    def effects(self) -> dict[str, list[str]]:
        """Every externally visible action effect, per mailbox."""
        return {name: sorted(serialize(message.content)
                             for message in messages)
                for name, messages in self.runtime.mailboxes.items()}

    def dead_letters(self) -> list[str]:
        return sorted(serialize(letter.to_xml())
                      for letter in self.grh.resilience.dead_letters)

    def state(self) -> dict:
        return {"rules": sorted(self.engine.rules),
                "dead_letters": self.dead_letters(),
                "effects": self.effects()}


class _ScriptCrash(SimulatedCrash):
    """A SimulatedCrash annotated with where to resume the script."""

    def __init__(self, resume: int) -> None:
        super().__init__(f"resume at {resume}")
        self.resume = resume


def run_oracle(directory: str, script=SCRIPT, rules=RULES) -> dict:
    """The same scenario without any crash; returns its final state."""
    world = CrashWorld(directory)
    world.boot()
    world.setup_rules(rules)
    world.run_script(script)
    return world.state()


def run_crashing(directory: str, fuse: int, tear: int = 0, script=SCRIPT,
                 rules=RULES) -> "tuple[dict, bool]":
    """Run the scenario, crashing at journal write ``fuse``; recover
    once, finish the scenario, and return (final state, crashed)."""
    world = CrashWorld(directory)
    resume = 0
    crashed = False
    try:
        journal = CrashingJournal(os.path.join(directory, JOURNAL_NAME),
                                  fuse=fuse, tear=tear, sync="none")
        world.boot(journal=journal)
        world.setup_rules(rules)
        resume = world.run_script(script)
    except _ScriptCrash as crash:
        crashed = True
        resume = crash.resume
        world.crash()
    except SimulatedCrash:
        # died during boot/setup before any event was emitted
        crashed = True
        world.crash()
    if crashed:
        world.boot()                # plain journal: recover for real
        world.engine._replay_in_flight()
        world.setup_rules(rules)    # idempotent application setup
        world.redeliver()           # at-least-once channel re-delivers
        world.run_script(script, start=resume)
    return world.state(), crashed


__all__ = ["CrashWorld", "CrashingJournal", "run_oracle", "run_crashing",
           "OK_RULE", "BAD_RULE", "RULES", "SCRIPT", "GRHError"]
