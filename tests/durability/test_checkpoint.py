"""Checkpoint atomicity and versioning."""

import os

import pytest

from repro.durability import CHECKPOINT_NAME, Checkpointer


@pytest.fixture()
def checkpointer(tmp_path):
    return Checkpointer(str(tmp_path / CHECKPOINT_NAME))


class TestCheckpointer:
    def test_roundtrip(self, checkpointer):
        checkpointer.write({"epoch": 2, "rules": {"r1": "<rule/>"}})
        state = checkpointer.load()
        assert state["epoch"] == 2
        assert state["rules"] == {"r1": "<rule/>"}
        assert checkpointer.taken == 1

    def test_load_without_checkpoint_is_none(self, checkpointer):
        assert checkpointer.load() is None

    def test_no_tmp_file_left_behind(self, checkpointer):
        checkpointer.write({"epoch": 1})
        assert not os.path.exists(checkpointer.path + ".tmp")

    def test_rewrite_replaces_atomically(self, checkpointer):
        checkpointer.write({"epoch": 1})
        checkpointer.write({"epoch": 2})
        assert checkpointer.load()["epoch"] == 2
        assert checkpointer.taken == 2

    def test_version_mismatch_rejected(self, checkpointer):
        checkpointer.write({"epoch": 1})
        import json
        state = json.load(open(checkpointer.path))
        state["version"] = 99
        json.dump(state, open(checkpointer.path, "w"))
        with pytest.raises(ValueError, match="version"):
            checkpointer.load()

    def test_abandoned_tmp_file_is_ignored_by_load(self, checkpointer):
        # a crash between tmp write and rename leaves only the tmp file;
        # the checkpoint itself must read as absent
        open(checkpointer.path + ".tmp", "w").write("{garbage")
        assert checkpointer.load() is None
