"""Journal framing: roundtrip, torn tails, CRC damage, epochs."""

import os

import pytest

from repro.durability import JOURNAL_NAME, Journal, JournalReader


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / JOURNAL_NAME)


def read_all(path):
    reader = JournalReader(path)
    return list(reader.records()), reader


class TestRoundtrip:
    def test_records_come_back_in_order(self, path):
        journal = Journal(path, sync="none")
        journal.append({"t": "det", "id": "e:1", "xml": "<d/>"})
        journal.append({"t": "done", "id": "e:1", "s": "completed"})
        journal.commit()
        journal.close()
        records, reader = read_all(path)
        assert records == [{"t": "det", "id": "e:1", "xml": "<d/>"},
                           {"t": "done", "id": "e:1", "s": "completed"}]
        assert not reader.truncated

    def test_epoch_record_is_consumed_not_yielded(self, path):
        Journal(path, sync="always", epoch=3).close()
        records, reader = read_all(path)
        assert records == []
        assert reader.epoch == 3

    def test_missing_file_reads_as_empty(self, path):
        records, reader = read_all(path)
        assert records == []
        assert not reader.truncated

    def test_unicode_payload_survives(self, path):
        journal = Journal(path, sync="always")
        journal.append({"t": "det", "id": "e:1", "xml": "<d x='è—ß'/>"})
        journal.close()
        records, _ = read_all(path)
        assert records[0]["xml"] == "<d x='è—ß'/>"

    def test_unknown_sync_policy_rejected(self, path):
        with pytest.raises(ValueError, match="sync policy"):
            Journal(path, sync="sometimes")


class TestCrashTolerance:
    def test_torn_tail_is_discarded(self, path):
        journal = Journal(path, sync="always")
        journal.append({"t": "det", "id": "e:1", "xml": "<d/>"})
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x40\xde\xad")  # header + no payload
        records, reader = read_all(path)
        assert [r["t"] for r in records] == ["det"]
        assert reader.truncated

    def test_crc_mismatch_stops_replay(self, path):
        journal = Journal(path, sync="always")
        journal.append({"t": "det", "id": "e:1", "xml": "<d/>"})
        journal.append({"t": "done", "id": "e:1", "s": "completed"})
        journal.close()
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF  # flip a byte inside the last payload
        open(path, "wb").write(bytes(data))
        records, reader = read_all(path)
        assert [r["t"] for r in records] == ["det"]
        assert reader.truncated

    def test_reopen_truncates_torn_tail_before_appending(self, path):
        journal = Journal(path, sync="always")
        journal.append({"t": "det", "id": "e:1", "xml": "<d/>"})
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x13\x37")  # torn frame from a crash
        journal = Journal(path, sync="always")
        journal.append({"t": "done", "id": "e:1", "s": "completed"})
        journal.close()
        records, reader = read_all(path)
        assert [r["t"] for r in records] == ["det", "done"]
        assert not reader.truncated

    def test_reopen_preserves_existing_epoch(self, path):
        Journal(path, sync="always", epoch=7).close()
        journal = Journal(path, sync="always", epoch=0)
        assert journal.epoch == 7
        journal.close()


class TestRestart:
    def test_restart_truncates_and_bumps_epoch(self, path):
        journal = Journal(path, sync="always")
        journal.append({"t": "det", "id": "e:1", "xml": "<d/>"})
        journal.restart(epoch=1)
        journal.append({"t": "det", "id": "e:2", "xml": "<d/>"})
        journal.close()
        records, reader = read_all(path)
        assert [r["id"] for r in records] == ["e:2"]
        assert reader.epoch == 1

    def test_commit_flushes_buffered_appends(self, path):
        journal = Journal(path, sync="commit")
        journal.append({"t": "det", "id": "e:1", "xml": "<d/>"})
        journal.commit()
        assert os.path.getsize(path) > 0
        records, _ = read_all(path)
        assert [r["t"] for r in records] == ["det"]
        journal.close()
