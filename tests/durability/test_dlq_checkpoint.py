"""Dead-letter parking vs. checkpointing must never deadlock.

Regression: ``DeadLetterQueue.append`` used to fire the durability
``on_append`` hook while holding the queue lock; the hook takes the
manager lock.  ``DurabilityManager.checkpoint`` takes the manager lock
and then iterates the queue (snapshot), which takes the queue lock —
a classic ABBA deadlock once a worker parks a letter while another
thread checkpoints.  The queue now fires hooks after releasing its
lock (under a dedicated ordering lock), breaking the cycle.
"""

import threading

from repro.grh.resilience import DeadLetter

from .harness import CrashWorld

ROUNDS = 200


class TestParkCheckpointConcurrency:
    def test_concurrent_park_and_checkpoint_terminate(self, tmp_path):
        world = CrashWorld(str(tmp_path))
        engine = world.boot()
        manager = engine.durability
        queue = engine.grh.resilience.dead_letters
        failed = []

        def parker():
            try:
                for n in range(ROUNDS):
                    queue.append(DeadLetter(kind="detection",
                                            error=f"e{n}", attempts=1))
            except BaseException as exc:  # pragma: no cover - diagnostics
                failed.append(exc)

        def checkpointer():
            try:
                for _ in range(ROUNDS):
                    manager.checkpoint()
            except BaseException as exc:  # pragma: no cover - diagnostics
                failed.append(exc)

        threads = [threading.Thread(target=parker, daemon=True),
                   threading.Thread(target=checkpointer, daemon=True)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(15)
        stuck = [thread.name for thread in threads if thread.is_alive()]
        assert not stuck, f"park/checkpoint deadlocked: {stuck}"
        assert not failed, failed
        # every parked letter was journaled, in seq order
        assert len(queue) == ROUNDS
        seqs = [letter.seq for letter in queue]
        assert seqs == sorted(seqs)

    def test_drain_and_clear_fire_hooks_outside_queue_lock(self, tmp_path):
        """drain/clear follow the same discipline: their on_drain hook
        must be able to take the manager lock while a checkpoint holds
        it and iterates the queue."""
        world = CrashWorld(str(tmp_path))
        engine = world.boot()
        manager = engine.durability
        queue = engine.grh.resilience.dead_letters
        for n in range(50):
            queue.append(DeadLetter(kind="detection",
                                    error=f"e{n}", attempts=1))

        def churner():
            for n in range(ROUNDS):
                queue.append(DeadLetter(kind="detection",
                                        error=f"c{n}", attempts=1))
                if n % 3 == 0:
                    queue.drain(limit=2)
                if n % 50 == 49:
                    queue.clear()

        def checkpointer():
            for _ in range(ROUNDS):
                manager.checkpoint()

        threads = [threading.Thread(target=churner, daemon=True),
                   threading.Thread(target=checkpointer, daemon=True)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(15)
        assert not any(thread.is_alive() for thread in threads), \
            "drain/clear vs checkpoint deadlocked"
