"""Crash-injection sweep: kill the engine at every journal write.

For every kill point the recovered world must equal an uncrashed
oracle: same rule table, same dead-letter queue, and the same per-tuple
action-effect multiset — zero effects duplicated, zero lost — even
though the delivery channel re-delivers every detection (at-least-once)
and the application re-runs its setup after recovery.
"""

import os

import pytest

from repro.durability import JOURNAL_NAME, SimulatedCrash

from .harness import (CrashWorld, CrashingJournal, RULES, SCRIPT,
                      run_crashing, run_oracle)

SEED = int(os.environ.get("DURABILITY_SEED", "0"))


def total_journal_writes(tmp_path) -> int:
    """How many journal writes the uncrashed scenario performs."""
    directory = str(tmp_path / "probe")
    world = CrashWorld(directory)
    journal = CrashingJournal(os.path.join(directory, JOURNAL_NAME),
                              fuse=10 ** 9, sync="none")
    world.boot(journal=journal)
    world.setup_rules()
    world.run_script()
    return journal.writes


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    return run_oracle(str(tmp_path_factory.mktemp("oracle")))


class TestKillPointSweep:
    def test_every_kill_point_recovers_to_oracle(self, tmp_path, oracle):
        writes = total_journal_writes(tmp_path)
        assert writes > 20  # the scenario really exercises the journal
        for fuse in range(writes):
            for tear in (0, 3):
                directory = str(tmp_path / f"crash-{fuse}-{tear}")
                state, crashed = run_crashing(directory, fuse=fuse,
                                              tear=tear)
                assert crashed, f"fuse {fuse} never fired"
                assert state == oracle, \
                    f"divergence at kill point {fuse} (tear {tear})"

    def test_seeded_random_kill_points_with_checkpoints(self, tmp_path,
                                                        oracle):
        """Same sweep, randomized (fixed seed) and with aggressive
        checkpointing so kill points also land inside checkpoint
        truncation — the stale-journal window."""
        import random
        rng = random.Random(SEED)
        writes = total_journal_writes(tmp_path)
        for case in range(12):
            fuse = rng.randrange(writes + 4)  # a few land mid-checkpoint
            tear = rng.choice((0, 1, 3, 7))
            directory = str(tmp_path / f"ckpt-{case}")
            world = CrashWorld(directory)
            resume, crashed = 0, False
            try:
                journal = CrashingJournal(
                    os.path.join(directory, JOURNAL_NAME),
                    fuse=fuse, tear=tear, sync="none")
                world.boot(journal=journal, checkpoint_interval=5)
                world.setup_rules()
                resume = world.run_script()
            except SimulatedCrash as crash:
                crashed = True
                resume = getattr(crash, "resume", 0)
                world.crash()
            if crashed:
                world.boot(checkpoint_interval=5)
                world.engine._replay_in_flight()
                world.setup_rules()
                world.redeliver()
                world.run_script(start=resume)
            assert world.state() == oracle, \
                f"divergence at seeded kill point {fuse} (tear {tear})"


class TestDoubleCrash:
    def test_crash_during_recovery_replay(self, tmp_path, oracle):
        """A second kill while recovery is re-driving in-flight work
        must still converge after a third, clean recovery."""
        directory = str(tmp_path / "double")
        world = CrashWorld(directory)
        resume = 0
        try:
            journal = CrashingJournal(os.path.join(directory, JOURNAL_NAME),
                                      fuse=14, sync="none")
            world.boot(journal=journal)
            world.setup_rules()
            resume = world.run_script()
        except SimulatedCrash as crash:
            resume = getattr(crash, "resume", 0)
            world.crash()
        # recovery attempt #1 dies mid-replay
        second = CrashingJournal(os.path.join(directory, JOURNAL_NAME),
                                 fuse=4, sync="none")
        try:
            world.boot(journal=second)
            world.engine._replay_in_flight()
            world.setup_rules()
            world.redeliver()
            world.run_script(start=resume)
            pytest.skip("second fuse never fired")  # pragma: no cover
        except SimulatedCrash as crash:
            resume = getattr(crash, "resume", resume)
            world.crash()
        # recovery attempt #2 runs clean
        world.boot()
        world.engine._replay_in_flight()
        world.setup_rules()
        world.redeliver()
        world.run_script(start=resume)
        assert world.state() == oracle
