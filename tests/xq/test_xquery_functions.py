"""XQuery 1.0 function additions usable from XQ-lite."""

import math

import pytest

from repro.xmlmodel import parse
from repro.xq import evaluate_query

DOC = parse("""
<cars>
  <car class="B"><price>100</price></car>
  <car class="C"><price>250</price></car>
  <car class="B"><price>180</price></car>
</cars>
""")


class TestSequenceFunctions:
    def test_distinct_values(self):
        (result,) = evaluate_query(
            "string-join(distinct-values(//car/@class), ',')", DOC)
        assert result == "B,C"

    def test_string_join_default_separator(self):
        (result,) = evaluate_query(
            "string-join(distinct-values(//car/@class))", DOC)
        assert result == "BC"

    def test_exists_and_empty(self):
        assert evaluate_query("exists(//car)", DOC) == [True]
        assert evaluate_query("exists(//bike)", DOC) == [False]
        assert evaluate_query("empty(//bike)", DOC) == [True]
        assert evaluate_query("empty(//car)", DOC) == [False]

    def test_min_max_avg(self):
        assert evaluate_query("min(//price)", DOC) == [100.0]
        assert evaluate_query("max(//price)", DOC) == [250.0]
        result = evaluate_query("avg(//price)", DOC)
        assert result[0] == pytest.approx(530 / 3)

    def test_abs(self):
        assert evaluate_query("abs(-5)", DOC) == [5.0]

    def test_aggregates_of_empty_sequence_are_nan(self):
        (result,) = evaluate_query("min(//bike)", DOC)
        assert math.isnan(result)

    def test_distinct_values_in_flwor(self):
        result = evaluate_query(
            "for $k in distinct-values(//car/@class) "
            "return <class name='{$k}'/>", DOC)
        assert [node.get("name") for node in result] == ["B", "C"]
