"""XQ-lite: FLWOR evaluation, constructors, prolog, error handling."""

import pytest

from repro.xmlmodel import E, QName, parse, serialize
from repro.xq import (XQEvaluationError, XQSyntaxError, evaluate_query,
                      parse_query)

CARS = parse("""
<cars>
  <car owner="John Doe"><model>Golf</model><class>B</class></car>
  <car owner="John Doe"><model>Passat</model><class>C</class></car>
  <car owner="Jane Roe"><model>Clio</model><class>A</class></car>
</cars>
""")


class TestFLWOR:
    def test_simple_for_return(self):
        result = evaluate_query("for $c in //car return $c/model", CARS)
        assert [node.text() for node in result] == ["Golf", "Passat", "Clio"]

    def test_where_filters(self):
        result = evaluate_query(
            "for $c in //car where $c/@owner = 'John Doe' return $c/model",
            CARS)
        assert [node.text() for node in result] == ["Golf", "Passat"]

    def test_external_variable(self):
        result = evaluate_query(
            "for $c in //car where $c/@owner = $p return $c/model",
            CARS, variables={"p": "Jane Roe"})
        assert [node.text() for node in result] == ["Clio"]

    def test_let_binding(self):
        result = evaluate_query(
            "let $n := count(//car) return $n + 1", CARS)
        assert result == [4.0]

    def test_nested_for(self):
        result = evaluate_query(
            "for $a in //car, $b in //car "
            "where $a/class = $b/class and $a/model != $b/model "
            "return $a/model", CARS)
        assert result == []

    def test_order_by_string(self):
        result = evaluate_query(
            "for $c in //car order by $c/model return $c/model", CARS)
        assert [node.text() for node in result] == ["Clio", "Golf", "Passat"]

    def test_order_by_descending(self):
        result = evaluate_query(
            "for $c in //car order by $c/model descending return $c/model",
            CARS)
        assert [node.text() for node in result] == ["Passat", "Golf", "Clio"]

    def test_if_then_else(self):
        assert evaluate_query("if (1 < 2) then 'yes' else 'no'") == ["yes"]
        assert evaluate_query("if (1 > 2) then 'yes' else 'no'") == ["no"]

    def test_sequence_expression(self):
        assert evaluate_query("(1, 2, 3)") == [1.0, 2.0, 3.0]
        assert evaluate_query("()") == []

    def test_for_over_sequence(self):
        assert evaluate_query("for $i in (1, 2, 3) return $i + 10") == \
            [11.0, 12.0, 13.0]


class TestConstructors:
    def test_static_element(self):
        (result,) = evaluate_query("<answer code='1'/>")
        assert result == E("answer", {"code": "1"})

    def test_embedded_expression_in_content(self):
        (result,) = evaluate_query("<n>{1 + 2}</n>")
        assert result.text() == "3"

    def test_embedded_nodes_are_copied(self):
        (result,) = evaluate_query(
            "<owned>{for $c in //car where $c/@owner='John Doe' "
            "return $c/model}</owned>", CARS)
        assert [child.text() for child in result.elements()] == [
            "Golf", "Passat"]
        # original document untouched
        assert len(list(CARS.iter())) == 10

    def test_attribute_template(self):
        (result,) = evaluate_query("<car model='{//car[1]/model}'/>", CARS)
        assert result.get("model") == "Golf"

    def test_nested_constructors(self):
        (result,) = evaluate_query(
            "<a><b>{'x'}</b><c n='{1+1}'/></a>")
        assert result.find("b").text() == "x"
        assert result.find("c").get("n") == "2"

    def test_namespaced_constructor(self):
        (result,) = evaluate_query(
            "<t:msg xmlns:t='urn:travel'><t:inner/></t:msg>")
        assert result.name == QName("urn:travel", "msg")
        assert result.elements().__next__().name == QName("urn:travel",
                                                          "inner")

    def test_atomic_sequence_space_separated(self):
        (result,) = evaluate_query("<n>{(1, 2, 3)}</n>")
        assert result.text() == "1 2 3"

    def test_curly_brace_escape(self):
        (result,) = evaluate_query("<n>a{{b}}c</n>")
        assert result.text() == "a{b}c"

    def test_constructor_roundtrips_through_serializer(self):
        (result,) = evaluate_query(
            "for $c in //car[1] return <hit m='{$c/model}'>{$c/class}</hit>",
            CARS)
        assert parse(serialize(result)).get("m") == "Golf"


class TestProlog:
    NSDOC = parse('<t:cars xmlns:t="urn:t"><t:car>Golf</t:car></t:cars>')

    def test_declare_namespace(self):
        result = evaluate_query(
            "declare namespace t = 'urn:t'; //t:car", self.NSDOC)
        assert [node.text() for node in result] == ["Golf"]

    def test_default_element_namespace(self):
        result = evaluate_query(
            "declare default element namespace 'urn:t'; //car", self.NSDOC)
        assert [node.text() for node in result] == ["Golf"]

    def test_default_ns_applies_to_constructor(self):
        (result,) = evaluate_query(
            "declare default element namespace 'urn:t'; <car/>")
        assert result.name == QName("urn:t", "car")


class TestDocRegistry:
    def test_doc_function(self):
        result = evaluate_query("doc('cars.xml')//model",
                                documents={"cars.xml": CARS})
        assert len(result) == 3

    def test_unknown_document(self):
        with pytest.raises(XQEvaluationError, match="unknown document"):
            evaluate_query("doc('nope.xml')")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "for $x in", "let $x = 1 return $x", "if (1) then 2",
        "<a>", "<a>{1</a>", "for x in y return x",
        "1 +",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(XQSyntaxError):
            parse_query(bad)

    def test_undeclared_constructor_prefix(self):
        with pytest.raises(XQEvaluationError, match="undeclared prefix"):
            evaluate_query("<t:a/>")

    def test_path_named_for_still_works(self):
        # 'for' not followed by '$' is an ordinary element name test
        doc = parse("<root><for>x</for></root>")
        assert [n.text() for n in evaluate_query("for", doc)] == ["x"]
