"""Extended XQ-lite coverage: nested FLWOR, multi-document joins, regressions."""

import pytest

from repro.xmlmodel import E, parse, serialize
from repro.xq import XQEvaluationError, evaluate_query

PERSONS = parse("""
<persons>
  <person name="John Doe"><car>Golf</car><car>Passat</car></person>
  <person name="Jane Roe"><car>Clio</car></person>
</persons>
""")

CLASSES = parse("""
<classes>
  <entry model="Golf" class="B"/>
  <entry model="Passat" class="C"/>
  <entry model="Clio" class="A"/>
</classes>
""")


class TestNestedFLWOR:
    def test_join_across_documents(self):
        result = evaluate_query("""
            for $p in doc('persons.xml')//person,
                $c in $p/car,
                $e in doc('classes.xml')//entry
            where $e/@model = $c
            return <owned person='{$p/@name}' class='{$e/@class}'/>
        """, documents={"persons.xml": PERSONS, "classes.xml": CLASSES})
        pairs = {(node.get("person"), node.get("class")) for node in result}
        assert pairs == {("John Doe", "B"), ("John Doe", "C"),
                         ("Jane Roe", "A")}

    def test_flwor_nested_in_constructor_nested_in_flwor(self):
        result = evaluate_query("""
            for $p in //person
            return <p n='{$p/@name}'>{
                for $c in $p/car return <m>{$c/text()}</m>
            }</p>
        """, PERSONS)
        assert len(result) == 2
        first = result[0]
        assert [m.text() for m in first.elements()] == ["Golf", "Passat"]

    def test_let_captures_whole_sequence(self):
        result = evaluate_query(
            "let $cars := //car return count($cars)", PERSONS)
        assert result == [3.0]

    def test_let_then_for_over_it(self):
        result = evaluate_query(
            "let $cars := //car for $c in $cars return $c/text()", PERSONS)
        assert len(result) == 3

    def test_where_with_position_free_comparison(self):
        result = evaluate_query(
            "for $e in //entry where $e/@class != 'A' return $e/@model",
            CLASSES)
        assert {node.value for node in result} == {"Golf", "Passat"}

    def test_if_inside_flwor(self):
        result = evaluate_query("""
            for $e in //entry
            return if ($e/@class = 'B') then <small/> else <other/>
        """, CLASSES)
        assert [node.name.local for node in result] == ["small", "other",
                                                        "other"]

    def test_order_by_attribute(self):
        result = evaluate_query(
            "for $e in //entry order by $e/@model return $e/@model", CLASSES)
        assert [node.value for node in result] == ["Clio", "Golf", "Passat"]


class TestConstructorRegressions:
    def test_namespace_scope_reaches_embedded_constructor(self):
        (result,) = evaluate_query(
            "<outer xmlns:p='urn:x'>{ for $i in (1, 2) "
            "return <p:inner n='{$i}'/> }</outer>")
        inners = list(result.elements())
        assert len(inners) == 2
        assert all(node.name.uri == "urn:x" for node in inners)

    def test_constructor_output_is_detached(self):
        (result,) = evaluate_query("<wrap>{//person[1]/car[1]}</wrap>",
                                   PERSONS)
        embedded = result.elements().__next__()
        assert embedded.text() == "Golf"
        # mutating the result must not touch the source document
        embedded.append(E("extra"))
        assert PERSONS.find("person").find("car").findall("extra") == []

    def test_deeply_nested_braces(self):
        (result,) = evaluate_query(
            "<a>{ <b>{ <c>{ 1 + 1 }</c> }</b> }</a>")
        assert result.find("b").find("c").text() == "2"

    def test_serialized_output_reparses(self):
        results = evaluate_query(
            "for $e in //entry return <x m='{$e/@model}'/>", CLASSES)
        for node in results:
            assert parse(serialize(node)).get("m") == node.get("m")


class TestEvaluationErrors:
    def test_unbound_variable(self):
        with pytest.raises(XQEvaluationError, match="unbound"):
            evaluate_query("$ghost + 1")

    def test_error_inside_flwor_propagates(self):
        with pytest.raises(XQEvaluationError):
            evaluate_query("for $e in //entry return $ghost", CLASSES)
