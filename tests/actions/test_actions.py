"""Actions: templates, runtime effects, combinators, markup."""

import pytest

from repro.actions import (ACTION_NS, ActionError, ActionMarkupError,
                           ActionRuntime, AssertTriple, If, Insert, Parallel,
                           Raise, Send, Sequence, TemplateError, instantiate,
                           parse_action_component, template_variables)
from repro.bindings import Binding, Relation
from repro.conditions import TestExpression
from repro.events import EventStream
from repro.rdf import Graph, Literal, URIRef
from repro.xmlmodel import E, parse

ACT = f'xmlns:act="{ACTION_NS}"'


class TestTemplates:
    def test_attribute_and_text_substitution(self):
        template = parse('<offer person="{Person}">Take the {Car}!</offer>')
        result = instantiate(template, Binding({"Person": "John Doe",
                                                "Car": "Polo"}))
        assert result.get("person") == "John Doe"
        assert result.text() == "Take the Polo!"

    def test_lone_placeholder_embeds_fragment(self):
        template = parse("<wrap>{Car}</wrap>")
        car = parse('<car model="Polo"/>')
        result = instantiate(template, Binding({"Car": car}))
        assert result.find("car").get("model") == "Polo"

    def test_numeric_value_formatting(self):
        result = instantiate(parse('<n v="{X}"/>'), Binding({"X": 5.0}))
        assert result.get("v") == "5"

    def test_unbound_variable_raises(self):
        with pytest.raises(TemplateError, match="unbound"):
            instantiate(parse('<a k="{Nope}"/>'), Binding())

    def test_template_variables(self):
        template = parse('<a k="{X}"><b>{Y} and {Z}</b></a>')
        assert template_variables(template) == {"X", "Y", "Z"}

    def test_nested_elements_instantiated(self):
        template = parse('<a><b c="{X}"/><d>{X}</d></a>')
        result = instantiate(template, Binding({"X": "v"}))
        assert result.find("b").get("c") == "v"
        assert result.find("d").text() == "v"


class TestRuntimeEffects:
    def test_send_collects_messages(self):
        runtime = ActionRuntime()
        Send("customer", parse('<offer car="{C}"/>')).perform(
            runtime, Binding({"C": "Polo"}))
        (message,) = runtime.messages("customer")
        assert message.content.get("car") == "Polo"

    def test_insert_and_delete(self):
        runtime = ActionRuntime()
        runtime.register_document("cars.xml", parse("<cars><car id='1'/></cars>"))
        Insert("cars.xml", "/cars", parse('<car id="{I}"/>')).perform(
            runtime, Binding({"I": "2"}))
        root = runtime.documents["cars.xml"]
        assert len(root.findall("car")) == 2
        runtime.delete("cars.xml", "/cars/car[@id='1']")
        assert len(root.findall("car")) == 1

    def test_insert_into_missing_target_raises(self):
        runtime = ActionRuntime()
        runtime.register_document("d", parse("<root/>"))
        with pytest.raises(ActionError, match="selects nothing"):
            runtime.insert("d", "/nope", E("x"))

    def test_unknown_document_raises(self):
        with pytest.raises(ActionError, match="unknown document"):
            ActionRuntime().insert("ghost", "/", E("x"))

    def test_assert_triple_with_variables(self):
        runtime = ActionRuntime()
        runtime.register_graph("fleet", Graph())
        action = AssertTriple("fleet", "urn:fleet#{Car}",
                              "urn:fleet#offeredTo", "{Person}")
        action.perform(runtime, Binding({"Car": "polo",
                                         "Person": "John Doe"}))
        graph = runtime.graphs["fleet"]
        assert (URIRef("urn:fleet#polo"), URIRef("urn:fleet#offeredTo"),
                Literal("John Doe")) in graph

    def test_raise_event_feeds_stream(self):
        stream = EventStream()
        runtime = ActionRuntime(event_stream=stream)
        Raise(parse('<alert level="{L}"/>')).perform(
            runtime, Binding({"L": "high"}))
        assert len(stream) == 1
        assert stream.history[0].payload.get("level") == "high"

    def test_raise_without_stream_raises(self):
        with pytest.raises(ActionError, match="no event stream"):
            Raise(E("x")).perform(ActionRuntime(), Binding())


class TestCombinators:
    def test_sequence_order(self):
        runtime = ActionRuntime()
        Sequence((Send("a", E("first")), Send("a", E("second")))).perform(
            runtime, Binding())
        names = [m.content.name.local for m in runtime.messages("a")]
        assert names == ["first", "second"]

    def test_parallel_runs_all(self):
        runtime = ActionRuntime()
        Parallel((Send("a", E("x")), Send("b", E("y")))).perform(
            runtime, Binding())
        assert runtime.messages("a") and runtime.messages("b")

    def test_if_branches(self):
        runtime = ActionRuntime()
        action = If(TestExpression("$Class = 'B'"),
                    Send("hit", E("yes")), Send("miss", E("no")))
        action.perform(runtime, Binding({"Class": "B"}))
        action.perform(runtime, Binding({"Class": "C"}))
        assert len(runtime.messages("hit")) == 1
        assert len(runtime.messages("miss")) == 1

    def test_if_without_else_is_noop(self):
        runtime = ActionRuntime()
        If(TestExpression("$X = 1"), Send("a", E("x"))).perform(
            runtime, Binding({"X": 2}))
        assert runtime.messages("a") == []

    def test_variables_aggregate(self):
        action = Sequence((Send("m-{R}", parse('<a k="{X}"/>')),
                           If(TestExpression("$Y = 1"),
                              Send("n", parse("<b>{Z}</b>")))))
        assert action.variables() == {"R", "X", "Y", "Z"}


class TestMarkup:
    def test_bare_content_is_default_send(self):
        action = parse_action_component(parse('<offer car="{C}"/>'))
        assert isinstance(action, Send)
        assert action.recipient == "default"

    def test_send_markup(self):
        action = parse_action_component(parse(
            f'<act:send {ACT} to="customer"><offer car="{{C}}"/></act:send>'))
        assert isinstance(action, Send)
        assert action.recipient == "customer"

    def test_sequence_markup(self):
        action = parse_action_component(parse(
            f'<act:sequence {ACT}>'
            f'<act:send to="a"><x/></act:send>'
            f'<act:raise><y/></act:raise>'
            f'</act:sequence>'))
        assert isinstance(action, Sequence)
        assert len(action.actions) == 2

    def test_if_else_markup(self):
        action = parse_action_component(parse(
            f'<act:if {ACT} test="$K = \'B\'">'
            f'<act:send to="yes"><a/></act:send>'
            f'<act:else><act:send to="no"><b/></act:send></act:else>'
            f'</act:if>'))
        assert isinstance(action, If)
        assert action.otherwise is not None

    def test_insert_markup(self):
        action = parse_action_component(parse(
            f'<act:insert {ACT} document="cars.xml" at="/cars">'
            f'<car/></act:insert>'))
        assert isinstance(action, Insert)

    @pytest.mark.parametrize("bad", [
        '<act:send {act}><a/><b/></act:send>',         # two children
        '<act:insert {act} at="/x"><a/></act:insert>', # missing document
        '<act:sequence {act}/>',                       # empty
        '<act:if {act} test="$X ="><a/></act:if>',     # bad test
        '<act:if {act} test="$X = 1"/>',               # no then
        '<act:assert {act} graph="g" s="a" p="b"/>',   # missing o
        '<act:frobnicate {act}/>',                     # unknown
    ])
    def test_markup_errors(self, bad):
        with pytest.raises(ActionMarkupError):
            parse_action_component(parse(bad.format(act=ACT)))

    def test_end_to_end_per_tuple_execution(self):
        # Sec 4.5: "for each tuple of variable bindings, the action
        # component is executed"
        runtime = ActionRuntime()
        action = parse_action_component(parse(
            f'<act:send {ACT} to="customer-notifications">'
            f'<offer person="{{Person}}" car="{{Avail}}"/></act:send>'))
        relation = Relation([
            {"Person": "John Doe", "Avail": "Polo"},
            {"Person": "John Doe", "Avail": "Corsa"},
        ])
        for binding in relation:
            action.perform(runtime, binding)
        cars = {m.content.get("car")
                for m in runtime.messages("customer-notifications")}
        assert cars == {"Polo", "Corsa"}
