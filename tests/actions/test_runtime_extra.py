"""Runtime bookkeeping, RDF retraction, and protective behaviour."""

import pytest

from repro.actions import ActionError, ActionRuntime, RetractTriple
from repro.bindings import Binding
from repro.rdf import Graph, Literal, URIRef
from repro.xmlmodel import E, parse


class TestRuntimeBookkeeping:
    def test_trace_records_operations(self):
        runtime = ActionRuntime()
        runtime.register_document("d", parse("<root><x/></root>"))
        runtime.register_graph("g", Graph())
        runtime.send("box", E("m"))
        runtime.insert("d", "/root", E("y"))
        runtime.delete("d", "/root/x")
        runtime.assert_triple("g", URIRef("urn:s"), URIRef("urn:p"),
                              Literal("o"))
        runtime.retract_triple("g", URIRef("urn:s"), URIRef("urn:p"),
                               Literal("o"))
        kinds = [entry.split()[0] for entry in runtime.trace]
        assert kinds == ["send", "insert", "delete", "assert", "retract"]

    def test_delete_returns_count(self):
        runtime = ActionRuntime()
        runtime.register_document("d", parse("<r><x/><x/><y/></r>"))
        assert runtime.delete("d", "/r/x") == 2
        assert runtime.delete("d", "/r/x") == 0

    def test_cannot_delete_document_root(self):
        runtime = ActionRuntime()
        root = parse("<r/>")
        runtime.register_document("d", root)
        # the root has a synthetic Document parent; deleting it would
        # orphan the store — the runtime detaches it instead of failing,
        # so assert the store still resolves
        runtime.delete("d", "/r")
        assert runtime.documents["d"] is root

    def test_insert_into_multiple_targets_copies(self):
        runtime = ActionRuntime()
        runtime.register_document("d", parse("<r><s/><s/></r>"))
        runtime.insert("d", "/r/s", E("leaf"))
        sections = runtime.documents["d"].findall("s")
        assert all(section.find("leaf") is not None for section in sections)
        # the two inserted leaves are distinct nodes
        first, second = (section.find("leaf") for section in sections)
        assert first is not second

    def test_retract_returns_presence(self):
        runtime = ActionRuntime()
        graph = Graph([(URIRef("urn:s"), URIRef("urn:p"), Literal("o"))])
        runtime.register_graph("g", graph)
        assert runtime.retract_triple("g", URIRef("urn:s"), URIRef("urn:p"),
                                      Literal("o")) is True
        assert runtime.retract_triple("g", URIRef("urn:s"), URIRef("urn:p"),
                                      Literal("o")) is False

    def test_unknown_graph_raises(self):
        with pytest.raises(ActionError, match="unknown graph"):
            ActionRuntime().assert_triple("ghost", URIRef("urn:s"),
                                          URIRef("urn:p"), Literal("o"))


class TestRetractAction:
    def test_retract_with_literal_object(self):
        runtime = ActionRuntime()
        graph = Graph([(URIRef("urn:fleet#polo"),
                        URIRef("urn:fleet#reservedFor"),
                        Literal("John Doe"))])
        runtime.register_graph("fleet", graph)
        action = RetractTriple("fleet", "urn:fleet#{Car}",
                               "urn:fleet#reservedFor", "{Person}")
        action.perform(runtime, Binding({"Car": "polo",
                                         "Person": "John Doe"}))
        assert len(graph) == 0

    def test_retract_requires_uri_subject(self):
        runtime = ActionRuntime()
        runtime.register_graph("g", Graph())
        action = RetractTriple("g", "{S}", "urn:p", "o")
        with pytest.raises(ActionError, match="URI"):
            action.perform(runtime, Binding({"S": "not a uri"}))
