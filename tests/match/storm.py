"""Seeded random rule-set and event-storm generators for match tests.

Shared by the differential suite and ``benchmarks/bench_match.py``: a
:class:`random.Random` seed fully determines both the registered rule
population and the event storm, so any divergence between the network
and linear paths replays exactly.
"""

from __future__ import annotations

import random

from repro.xmlmodel import Element, QName

DOMAIN_NS = "urn:storm:domain"
SNOOP_NS = "http://www.semwebtech.org/languages/2006/snoop"
XCHANGE_NS = "http://www.semwebtech.org/languages/2006/xchange"
ECA_NS = "http://www.semwebtech.org/languages/2006/eca-ml"

TYPE_POOL = ("booking", "delayed", "cancelled", "checkin", "payment",
             "upgrade", "refund", "alert")
ATTR_POOL = ("person", "flight", "to", "status", "kind")
VALUE_POOL = ("mehl", "olsen", "f77", "f42", "vienna", "oslo", "gold",
              "ok", "late")
VAR_POOL = ("P", "F", "T", "S", "K")
CONTEXTS = ("unrestricted", "recent", "chronicle", "continuous",
            "cumulative")


def _qname(local: str) -> QName:
    return QName(DOMAIN_NS, local)


def random_pattern(rng: random.Random, *, bind: bool = True) -> Element:
    """A domain pattern template: constant/variable attrs, maybe a
    child element with constant/variable text, maybe an eca:bind."""
    element = Element(_qname(rng.choice(TYPE_POOL)),
                      nsdecls={"d": DOMAIN_NS})
    for name in rng.sample(ATTR_POOL, k=rng.randint(0, 3)):
        if rng.random() < 0.55:
            element.set(QName(None, name), rng.choice(VALUE_POOL))
        else:
            element.set(QName(None, name),
                        "{%s}" % rng.choice(VAR_POOL))
    roll = rng.random()
    if roll < 0.2:
        child = Element(_qname(rng.choice(ATTR_POOL)))
        child.append(rng.choice(VALUE_POOL) if rng.random() < 0.6
                     else "{%s}" % rng.choice(VAR_POOL))
        element.append(child)
    elif roll < 0.3:
        element.append(rng.choice(VALUE_POOL) if rng.random() < 0.6
                       else "{%s}" % rng.choice(VAR_POOL))
    if bind and rng.random() < 0.15:
        element.set(QName(ECA_NS, "bind"), rng.choice(("Ev", "Raw")))
    return element


def random_snoop(rng: random.Random, depth: int = 2) -> Element:
    """A SNOOP operator tree (markup) of bounded depth."""
    if depth <= 0 or rng.random() < 0.35:
        return random_pattern(rng)
    operator = rng.choice(("or", "and", "seq", "any", "not",
                           "aperiodic", "periodic"))
    element = Element(QName(SNOOP_NS, operator),
                      nsdecls={"snoop": SNOOP_NS})
    child = lambda: random_snoop(rng, depth - 1)  # noqa: E731
    if operator == "or":
        for _ in range(rng.randint(1, 3)):
            element.append(child())
    elif operator in ("and", "seq"):
        element.set(QName(None, "context"), rng.choice(CONTEXTS))
        for _ in range(2):
            element.append(child())
    elif operator == "any":
        children = [child() for _ in range(rng.randint(2, 3))]
        element.set(QName(None, "m"), str(rng.randint(1, len(children))))
        for node in children:
            element.append(node)
    elif operator == "not":
        for _ in range(3):
            element.append(child())
    elif operator == "aperiodic":
        if rng.random() < 0.5:
            element.set(QName(None, "cumulative"), "true")
        for _ in range(3):
            element.append(child())
    else:  # periodic — lands in the fallback bucket (time-driven)
        element.set(QName(None, "period"), str(rng.randint(2, 5)))
        for _ in range(2):
            element.append(child())
    return element


def random_xchange(rng: random.Random, depth: int = 2) -> Element:
    """An XChange-style query tree (markup) of bounded depth."""
    if depth <= 0 or rng.random() < 0.35:
        return random_pattern(rng)
    operator = rng.choice(("or", "and", "seq", "without"))
    element = Element(QName(XCHANGE_NS, operator),
                      nsdecls={"xchange": XCHANGE_NS})
    child = lambda: random_xchange(rng, depth - 1)  # noqa: E731
    if operator == "or":
        for _ in range(rng.randint(1, 3)):
            element.append(child())
    elif operator in ("and", "seq"):
        if rng.random() < 0.5:
            element.set(QName(None, "within"), str(rng.randint(3, 12)))
        for _ in range(2):
            element.append(child())
    else:
        for _ in range(2):
            element.append(child())
    return element


def random_event_payload(rng: random.Random) -> Element:
    """One domain event: concrete type, attrs, sometimes a child/text."""
    element = Element(_qname(rng.choice(TYPE_POOL)),
                      nsdecls={"d": DOMAIN_NS})
    for name in rng.sample(ATTR_POOL, k=rng.randint(0, 4)):
        element.set(QName(None, name), rng.choice(VALUE_POOL))
    roll = rng.random()
    if roll < 0.25:
        child = Element(_qname(rng.choice(ATTR_POOL)))
        child.append(rng.choice(VALUE_POOL))
        element.append(child)
    elif roll < 0.35:
        element.append(rng.choice(VALUE_POOL))
    return element
