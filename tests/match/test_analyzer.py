"""Unit tests for the pattern analyzer: key grammar and tree analysis."""

import random

from repro.events import parse_atomic, parse_snoop, parse_xchange
from repro.events.base import Event
from repro.events.snoop import Atomic, Detector, Periodic, Seq
from repro.match import (analyze, compile_pattern, pattern_identity,
                         probe_keys)
from repro.xmlmodel import QName, parse

from .storm import DOMAIN_NS, random_event_payload, random_pattern

SNOOP = 'xmlns:snoop="http://www.semwebtech.org/languages/2006/snoop"'
XCHANGE = 'xmlns:xc="http://www.semwebtech.org/languages/2006/xchange"'
D = f'xmlns:d="{DOMAIN_NS}"'


def pattern(markup):
    return parse_atomic(parse(markup))


class TestKeyGrammar:
    def test_constant_attribute_wins(self):
        key = compile_pattern(pattern(
            f'<d:booking {D} person="{{P}}" to="oslo">x</d:booking>'))
        assert key.kind == "attr"
        assert key.tag == QName(DOMAIN_NS, "booking")
        assert key.detail == (QName(None, "to"), "oslo")

    def test_attribute_choice_is_deterministic(self):
        first = compile_pattern(pattern(
            f'<d:a {D} b="1" c="2"/>'))
        second = compile_pattern(pattern(
            f'<d:a {D} c="2" b="1"/>'))
        assert first == second

    def test_child_text_when_no_constant_attribute(self):
        key = compile_pattern(pattern(
            f'<d:booking {D} person="{{P}}"><d:to>vienna</d:to>'
            '</d:booking>'))
        assert key.kind == "child-text"
        assert key.detail == (QName(DOMAIN_NS, "to"), "vienna")

    def test_root_text_key(self):
        key = compile_pattern(pattern(f'<d:alert {D}>red</d:alert>'))
        assert key.kind == "text"
        assert key.detail == ("red",)

    def test_variable_only_template_keys_on_tag(self):
        key = compile_pattern(pattern(
            f'<d:booking {D} person="{{P}}">{{T}}</d:booking>'))
        assert key.kind == "tag"
        assert key.detail == ()

    def test_variable_child_text_is_not_indexed(self):
        key = compile_pattern(pattern(
            f'<d:booking {D}><d:to>{{T}}</d:to></d:booking>'))
        assert key.kind == "tag"


class TestProbeCoverage:
    def test_probe_keys_cover_every_matching_pattern(self):
        """Soundness invariant of the whole index: if a pattern matches
        an event, the pattern's home key is among the event's probes."""
        rng = random.Random(7)
        patterns = [parse_atomic(random_pattern(rng)) for _ in range(300)]
        checked = 0
        for index in range(300):
            payload = random_event_payload(rng)
            event = Event(payload, float(index), index)
            probes = set(probe_keys(payload))
            for candidate in patterns:
                if candidate.match(event) is not None:
                    checked += 1
                    assert compile_pattern(candidate) in probes
        assert checked > 50  # the sweep really exercised matches


class TestIdentity:
    def test_attribute_order_and_prefixes_ignored(self):
        first = pattern(f'<d:a {D} x="1" y="2"/>')
        second = parse_atomic(parse(
            f'<q:a xmlns:q="{DOMAIN_NS}" y="2" x="1"/>'))
        assert pattern_identity(first) == pattern_identity(second)

    def test_variable_names_distinguish(self):
        assert pattern_identity(pattern(f'<d:a {D} x="{{P}}"/>')) != \
            pattern_identity(pattern(f'<d:a {D} x="{{Q}}"/>'))

    def test_bind_distinguishes(self):
        eca = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
        assert pattern_identity(pattern(
            f'<d:a {D} {eca} eca:bind="E"/>')) != \
            pattern_identity(pattern(f'<d:a {D}/>'))


class TestTreeAnalysis:
    def test_atomic_tree(self):
        analysis = analyze(Atomic(pattern(f'<d:a {D} x="1"/>')))
        assert not analysis.fallback
        assert len(analysis.patterns) == 1

    def test_composite_collects_all_leaves(self):
        detector = parse_snoop(parse(f"""
            <snoop:not {SNOOP}>
              <d:open {D}/>
              <d:forbidden {D}/>
              <d:close {D}/>
            </snoop:not>"""))
        analysis = analyze(detector)
        assert not analysis.fallback
        locals_ = sorted(p.template.name.local for p in analysis.patterns)
        assert locals_ == ["close", "forbidden", "open"]

    def test_periodic_falls_back_and_polls(self):
        detector = parse_snoop(parse(f"""
            <snoop:periodic {SNOOP} period="5">
              <d:open {D}/>
              <d:close {D}/>
            </snoop:periodic>"""))
        analysis = analyze(detector)
        assert analysis.fallback and analysis.pollable
        assert "periodic" in analysis.reason

    def test_periodic_nested_anywhere_falls_back(self):
        detector = parse_snoop(parse(f"""
            <snoop:or {SNOOP}>
              <d:plain {D}/>
              <snoop:periodic period="5">
                <d:open {D}/>
                <d:close {D}/>
              </snoop:periodic>
            </snoop:or>"""))
        assert analyze(detector).fallback

    def test_unknown_detector_type_falls_back(self):
        class Custom(Detector):
            def feed(self, event):
                return []

            def reset(self):
                pass

        analysis = analyze(Custom())
        assert analysis.fallback
        assert "Custom" in analysis.reason

    def test_subclass_of_known_operator_falls_back(self):
        class Sneaky(Atomic):
            pass

        analysis = analyze(Sneaky(pattern(f'<d:a {D}/>')))
        assert analysis.fallback

    def test_seq_chain_and_xchange_trees(self):
        detector = parse_snoop(parse(f"""
            <snoop:seq {SNOOP}>
              <d:a {D}/><d:b {D}/><d:c {D}/>
            </snoop:seq>"""))
        assert isinstance(detector, Seq)
        assert len(analyze(detector).patterns) == 3
        query = parse_xchange(parse(f"""
            <xc:and {XCHANGE} within="9">
              <d:a {D}/>
              <xc:without>
                 <d:b {D}/><d:c {D}/>
              </xc:without>
            </xc:and>"""))
        assert len(analyze(query).patterns) == 3

    def test_periodic_instance_check_is_exact(self):
        assert analyze(
            Periodic(Atomic(pattern(f'<d:a {D}/>')), 2.0,
                     Atomic(pattern(f'<d:b {D}/>')))).fallback
