"""Unit tests for the discrimination network: sharing, routing, churn."""

from repro.events import parse_atomic, parse_snoop
from repro.events.base import Event
from repro.events.snoop import Atomic, Detector
from repro.match import DiscriminationNetwork
from repro.xmlmodel import parse

from .storm import DOMAIN_NS

D = f'xmlns:d="{DOMAIN_NS}"'
SNOOP = 'xmlns:snoop="http://www.semwebtech.org/languages/2006/snoop"'


def atomic(markup):
    return Atomic(parse_atomic(parse(markup)))


def event(markup, at=0.0, sequence=0):
    return Event(parse(markup), at, sequence)


class TestSharing:
    def test_identical_leaves_share_one_alpha_node(self):
        network = DiscriminationNetwork("t")
        for index in range(500):
            network.insert(f"c{index}",
                           atomic(f'<d:a {D} person="{{P}}" to="oslo"/>'))
        assert network.alpha_node_count == 1
        assert network.shared_memory_count == 1
        assert len(network) == 500

    def test_shared_node_tests_once_per_event(self):
        network = DiscriminationNetwork("t")
        for index in range(100):
            network.insert(f"c{index}", atomic(f'<d:a {D} to="oslo"/>'))
        probe = event(f'<d:a {D} to="oslo"/>')
        candidates = network.route(probe)
        assert len(candidates) == 100
        assert network.stats()["alpha_tests"] == 1

    def test_leaf_components_reuse_the_alpha_memory(self):
        network = DiscriminationNetwork("t")
        network.insert("c0", atomic(f'<d:a {D} to="{{T}}"/>'))
        network.insert("c1", atomic(f'<d:a {D} to="{{T}}"/>'))
        candidates = network.route(event(f'<d:a {D} to="oslo"/>'))
        shared = [occurrences for _, _, occurrences in candidates]
        assert all(batch is not None for batch in shared)
        assert shared[0][0] is shared[1][0]  # one occurrence, shared

    def test_composite_components_are_fed_not_precomputed(self):
        network = DiscriminationNetwork("t")
        network.insert("c0", parse_snoop(parse(f"""
            <snoop:seq {SNOOP}><d:a {D}/><d:b {D}/></snoop:seq>""")))
        candidates = network.route(event(f'<d:a {D}/>'))
        assert candidates == [("c0", network._entries["c0"].detector, None)]


class TestRouting:
    def test_events_only_reach_affected_components(self):
        network = DiscriminationNetwork("t")
        network.insert("a", atomic(f'<d:a {D}/>'))
        network.insert("b", atomic(f'<d:b {D}/>'))
        network.insert("a-oslo", atomic(f'<d:a {D} to="oslo"/>'))
        hits = [cid for cid, _, _ in
                network.route(event(f'<d:a {D} to="vienna"/>'))]
        assert hits == ["a"]
        hits = [cid for cid, _, _ in
                network.route(event(f'<d:a {D} to="oslo"/>'))]
        assert hits == ["a", "a-oslo"]

    def test_candidates_arrive_in_registration_order(self):
        network = DiscriminationNetwork("t")
        network.insert("late", atomic(f'<d:a {D}/>'))
        network.insert("periodic", parse_snoop(parse(f"""
            <snoop:periodic {SNOOP} period="2">
              <d:a {D}/><d:z {D}/>
            </snoop:periodic>""")))
        network.insert("early", atomic(f'<d:a {D} to="oslo"/>'))
        hits = [cid for cid, _, _ in
                network.route(event(f'<d:a {D} to="oslo"/>'))]
        assert hits == ["late", "periodic", "early"]

    def test_reregistration_moves_to_the_back(self):
        """Mirrors dict re-insertion order on the linear path."""
        network = DiscriminationNetwork("t")
        network.insert("x", atomic(f'<d:a {D}/>'))
        network.insert("y", atomic(f'<d:a {D}/>'))
        network.insert("x", atomic(f'<d:a {D}/>'))
        hits = [cid for cid, _, _ in network.route(event(f'<d:a {D}/>'))]
        assert hits == ["y", "x"]

    def test_fallback_offered_every_event(self):
        network = DiscriminationNetwork("t")

        class Custom(Detector):
            def feed(self, inbound):
                return []

            def reset(self):
                pass

        network.insert("odd", Custom())
        hits = [cid for cid, _, _ in
                network.route(event(f'<d:unrelated {D}/>'))]
        assert hits == ["odd"]
        assert network.fallback_count == 1
        assert network.pollable() == [("odd",
                                       network._entries["odd"].detector)]

    def test_indexed_components_are_not_polled(self):
        network = DiscriminationNetwork("t")
        network.insert("plain", atomic(f'<d:a {D}/>'))
        assert network.pollable() == []


class TestChurn:
    def test_remove_erases_empty_nodes_and_buckets(self):
        network = DiscriminationNetwork("t")
        network.insert("c0", atomic(f'<d:a {D} to="oslo"/>'))
        network.insert("c1", atomic(f'<d:a {D} to="oslo"/>'))
        assert network.remove("c0")
        assert network.alpha_node_count == 1
        assert network.remove("c1")
        assert network.alpha_node_count == 0
        assert not network._buckets
        assert not network.remove("c1")
        assert network.route(event(f'<d:a {D} to="oslo"/>')) == []

    def test_remove_only_detaches_one_subscription(self):
        network = DiscriminationNetwork("t")
        network.insert("keep", atomic(f'<d:a {D}/>'))
        network.insert("drop", atomic(f'<d:a {D}/>'))
        network.remove("drop")
        hits = [cid for cid, _, _ in network.route(event(f'<d:a {D}/>'))]
        assert hits == ["keep"]

    def test_duplicate_leaves_in_one_component_subscribe_once(self):
        network = DiscriminationNetwork("t")
        network.insert("dup", parse_snoop(parse(f"""
            <snoop:or {SNOOP}><d:a {D}/><d:a {D}/></snoop:or>""")))
        assert network.alpha_node_count == 1
        hits = [cid for cid, _, _ in network.route(event(f'<d:a {D}/>'))]
        assert hits == ["dup"]
        network.remove("dup")
        assert network.alpha_node_count == 0

    def test_clear(self):
        network = DiscriminationNetwork("t")
        for index in range(10):
            network.insert(f"c{index}", atomic(f'<d:a {D} k="{index}"/>'))
        network.clear()
        assert len(network) == 0
        assert network.alpha_node_count == 0


class TestSnapshots:
    def test_stats_and_snapshot_shape(self):
        network = DiscriminationNetwork("svc")
        network.insert("c0", atomic(f'<d:a {D} to="oslo"/>'))
        network.insert("c1", atomic(f'<d:a {D} to="oslo"/>'))
        network.insert("per", parse_snoop(parse(f"""
            <snoop:periodic {SNOOP} period="2">
              <d:a {D}/><d:z {D}/>
            </snoop:periodic>""")))
        network.route(event(f'<d:a {D} to="oslo"/>'))
        stats = network.stats()
        assert stats["service"] == "svc"
        assert stats["registered"] == 3
        assert stats["indexed"] == 2
        assert stats["fallback"] == 1
        assert stats["shared_memories"] == 1
        assert stats["events_routed"] == 1
        assert stats["last_candidates"] == 3
        view = network.snapshot()
        assert view["key_families"] == {"attr": 1}
        assert list(view["fallback_reasons"].values()) == [1]
