"""Concurrent registration churn racing stream delivery.

The service serializes ``register_event``/``unregister_event`` against
``feed``/``poll`` under one lock, so a component is always either fully
registered (indexed, present in ``_detectors``) or fully absent — a
racing feed can neither miss a just-registered detector nor deliver to
a half-removed one.  The hammer drives all three operations from
multiple threads and then proves the index and the detector table ended
consistent.
"""

import random
import threading

import pytest

from repro.bindings import Relation
from repro.events.base import Event
from repro.grh.messages import Request, xml_to_detection
from repro.services.event_service import AtomicEventService, SnoopService
from repro.xmlmodel import parse

from .storm import DOMAIN_NS

D = f'xmlns:d="{DOMAIN_NS}"'
WORKERS = 4
ROUNDS = 120


def pattern_markup(kind):
    return parse(f'<d:booking {D} kind="k{kind}" person="{{P}}"/>')


@pytest.mark.parametrize("service_cls", [AtomicEventService, SnoopService])
def test_churn_hammer(service_cls):
    delivered = []
    delivered_lock = threading.Lock()

    def notify(element):
        with delivered_lock:
            delivered.append(xml_to_detection(element))

    service = service_cls(notify, incarnation="")
    errors = []
    barrier = threading.Barrier(WORKERS + 1)

    def churner(worker):
        rng = random.Random(worker)
        barrier.wait()
        try:
            for round_index in range(ROUNDS):
                component = f"w{worker}-r{round_index}::event"
                service.register_event(Request(
                    "register-event", component,
                    pattern_markup(rng.randrange(4)), Relation.unit()))
                if rng.random() < 0.7:
                    service.unregister_event(Request(
                        "unregister-event", component, None,
                        Relation.unit()))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=churner, args=(worker,))
               for worker in range(WORKERS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    feed_errors = []
    for sequence in range(400):
        payload = parse(
            f'<d:booking {D} kind="k{sequence % 4}" person="p"/>')
        try:
            service.feed(Event(payload, float(sequence), sequence))
            service.poll(float(sequence))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            feed_errors.append(exc)
            break
    for thread in threads:
        thread.join()
    assert not errors and not feed_errors

    # table and index ended consistent: every surviving component still
    # receives matching events, removed ones receive nothing
    survivors = set(service.registered_ids)
    if service.network is not None:
        assert set(service.network.component_ids) == survivors
    with delivered_lock:
        delivered.clear()
    for kind in range(4):
        payload = parse(f'<d:booking {D} kind="k{kind}" person="z"/>')
        service.feed(Event(payload, 1000.0 + kind, 10_000 + kind))
    with delivered_lock:
        hit = {detection.component_id for detection in delivered}
    assert hit == survivors

    # no duplicate detection ids were ever assigned
    with delivered_lock:
        identifiers = [detection.detection_id for detection in delivered]
    assert len(identifiers) == len(set(identifiers))


def test_registration_is_atomic_wrt_feed():
    """A component never appears in the table without its index entry:
    a feed running between the two would silently drop its events."""
    service = AtomicEventService(lambda element: None, incarnation="")
    stop = threading.Event()
    mismatches = []

    def auditor():
        while not stop.is_set():
            with service._lock:
                table = set(service._detectors)
                indexed = set(service.network.component_ids)
            if table != indexed:
                mismatches.append((table, indexed))

    thread = threading.Thread(target=auditor)
    thread.start()
    for index in range(300):
        component = f"c{index}::event"
        service.register_event(Request(
            "register-event", component, pattern_markup(index % 3),
            Relation.unit()))
        if index % 2:
            service.unregister_event(Request(
                "unregister-event", component, None, Relation.unit()))
    stop.set()
    thread.join()
    assert not mismatches
