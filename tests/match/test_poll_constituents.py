"""Regression: ``poll`` detections must carry their constituent events.

``EventDetectionService.poll`` used to build the ``log:detection``
without ``occurrence.constituents``, so time-driven detections
(``snoop:periodic``) lost the matched-event payloads that ``feed``
includes — Fig. 6 (1) signals "the event sequence that matched the
pattern" for *every* detection, not only stream-driven ones.
"""

import pytest

from repro.bindings import Relation
from repro.events.base import Event
from repro.grh.messages import Request, xml_to_detection
from repro.services.event_service import SnoopService
from repro.xmlmodel import parse

from .storm import DOMAIN_NS

D = f'xmlns:d="{DOMAIN_NS}"'
SNOOP = 'xmlns:snoop="http://www.semwebtech.org/languages/2006/snoop"'

PERIODIC = f"""
<snoop:periodic {SNOOP} period="5">
  <d:open {D} job="{{J}}"/>
  <d:close {D}/>
</snoop:periodic>
"""


@pytest.mark.parametrize("use_network", [True, False],
                         ids=["network", "linear"])
def test_periodic_poll_carries_constituents(use_network):
    delivered = []
    service = SnoopService(delivered.append, incarnation="",
                           use_network=use_network)
    service.register_event(Request("register-event", "tick::event",
                                   parse(PERIODIC), Relation.unit()))
    opener = parse(f'<d:open {D} job="j1"/>')
    service.feed(Event(opener, 0.0, 0))
    service.poll(11.0)
    assert len(delivered) == 2  # fires at t=5 and t=10
    for element in delivered:
        detection = xml_to_detection(element)
        assert detection.component_id == "tick::event"
        assert [payload.name.local for payload in detection.events] \
            == ["open"]
        assert detection.events[0].get("job") == "j1"
        assert detection.bindings == Relation.unit().join(
            detection.bindings)  # non-empty, consistent join
        assert [dict(binding) for binding in detection.bindings] \
            == [{"J": "j1"}]
