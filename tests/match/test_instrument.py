"""Match observability: metrics scrape and the admin view."""

import json
import urllib.error
import urllib.request

from repro.bindings import Relation
from repro.core import ECAEngine
from repro.events.base import Event
from repro.grh.messages import Request
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.ops import IntrospectionSurface, ObsAdminServer
from repro.services import standard_deployment
from repro.services.event_service import AtomicEventService
from repro.xmlmodel import parse

from .storm import DOMAIN_NS

D = f'xmlns:d="{DOMAIN_NS}"'
SNOOP = 'xmlns:snoop="http://www.semwebtech.org/languages/2006/snoop"'


def build_service(registry):
    service = AtomicEventService(lambda element: None, incarnation="",
                                 metrics=registry)
    for index in range(6):
        service.register_event(Request(
            "register-event", f"c{index}::event",
            parse(f'<d:a {D} to="oslo"/>'), Relation.unit()))
    service.register_event(Request(
        "register-event", "other::event",
        parse(f'<d:b {D} person="{{P}}"/>'), Relation.unit()))
    return service


class TestMetrics:
    def test_gauges_and_histogram_scrape(self):
        registry = MetricsRegistry()
        service = build_service(registry)
        service.feed(Event(parse(f'<d:a {D} to="oslo"/>'), 0.0, 0))
        service.feed(Event(parse(f'<d:miss {D}/>'), 1.0, 1))
        text = registry.render_prometheus()
        assert ('eca_match_alpha_nodes{service="atomic-event-matcher"} 2'
                in text)
        assert ('eca_match_shared_memories'
                '{service="atomic-event-matcher"} 1' in text)
        assert ('eca_match_events_total'
                '{service="atomic-event-matcher"} 2' in text)
        # candidate histogram: one 6-candidate event, one 0-candidate
        assert ('eca_match_candidates_bucket'
                '{service="atomic-event-matcher",le="0.0"} 1' in text)
        assert ('eca_match_candidates_bucket'
                '{service="atomic-event-matcher",le="10.0"} 2' in text)
        assert ('eca_match_candidates_count'
                '{service="atomic-event-matcher"} 2' in text)

    def test_install_is_idempotent_across_services(self):
        registry = MetricsRegistry()
        build_service(registry)
        build_service(registry)  # second install must not raise
        assert "eca_match_alpha_nodes" in registry.render_prometheus()

    def test_fallback_gauge(self):
        registry = MetricsRegistry()
        service = build_service(registry)
        from repro.services.event_service import SnoopService
        snoop = SnoopService(lambda element: None, incarnation="",
                             metrics=registry)
        snoop.register_event(Request(
            "register-event", "tick::event", parse(f"""
                <snoop:periodic {SNOOP} period="3">
                  <d:open {D}/><d:close {D}/>
                </snoop:periodic>"""), Relation.unit()))
        text = registry.render_prometheus()
        assert ('eca_match_fallback_patterns'
                '{service="snoop-detector"} 1' in text)
        assert service.network.fallback_count == 0


def http_get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAdminView:
    def test_introspect_match_surface(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        surface = IntrospectionSurface(engine, Observability())
        status, view = surface.handle("/introspect/match")
        assert status == 200
        services = {entry["service"] for entry in view["networks"]}
        # the three deployment services at least (other live networks
        # from the test process may appear too — the view is
        # process-wide by design)
        assert {"atomic-event-matcher", "snoop-detector",
                "xchange-detector"} <= services
        for entry in view["networks"]:
            assert {"registered", "alpha_nodes", "shared_memories",
                    "fallback", "key_families",
                    "fallback_reasons"} <= set(entry)

    def test_scrape_over_http(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh, observability=Observability())
        with ObsAdminServer(engine) as address:
            status, view = http_get(f"{address}/introspect/match")
        assert status == 200
        assert view["total_registered"] == sum(
            entry["registered"] for entry in view["networks"])
