"""Differential storms: network path ≡ preserved linear path.

For every event service and seeds 0–9: register the same random rule
set on a network-routed service and a linear one, drive the same seeded
event storm (with mid-storm polls and registration churn), and assert
the two emit **identical detection sequences** — same canonical XML,
which pins component ids, intervals, bindings, constituents *and*
detection ids (so ordering too).
"""

import random

import pytest

from repro.bindings import Relation
from repro.events import EventStream
from repro.grh.messages import Request
from repro.services.event_service import (AtomicEventService, SnoopService,
                                          XChangeService)
from repro.xmlmodel import canonicalize

from .storm import (random_event_payload, random_pattern, random_snoop,
                    random_xchange)

SERVICES = {
    AtomicEventService: lambda rng: random_pattern(rng),
    SnoopService: lambda rng: random_snoop(rng),
    XChangeService: lambda rng: random_xchange(rng),
}


def register(service, component_id, content):
    service.register_event(Request("register-event", component_id,
                                   content, Relation.unit()))


def unregister(service, component_id):
    service.unregister_event(Request("unregister-event", component_id,
                                     None, Relation.unit()))


def run_storm(service_cls, make_rule, seed, rules=24, events=110):
    """Drive one seeded storm through both paths; return both outputs."""
    outputs = {"network": [], "linear": []}
    services = {
        name: service_cls(outputs[name].append, incarnation="",
                          use_network=(name == "network"))
        for name in outputs
    }
    rng = random.Random(seed)
    contents = [make_rule(rng) for _ in range(rules)]
    for index, content in enumerate(contents):
        for service in services.values():
            register(service, f"rule-{index}::event", content.copy())

    storm = random.Random(seed + 1000)
    streams = {name: EventStream() for name in services}
    for name, service in services.items():
        service.attach(streams[name])
    spare = rules  # ids for churn re-registrations
    for _ in range(events):
        roll = storm.random()
        payload = random_event_payload(storm)
        advance = storm.choice((0.0, 0.5, 1.0, 3.0))
        for name, stream in streams.items():
            stream.advance(advance)
            stream.emit(payload.copy())
        if roll < 0.08:  # poll both paths at the same instant
            now = next(iter(streams.values())).now
            for service in services.values():
                service.poll(now)
        elif roll < 0.16:  # churn: drop one component on both paths
            victim = storm.randrange(spare)
            for service in services.values():
                unregister(service, f"rule-{victim}::event")
        elif roll < 0.22:  # churn: register a fresh component mid-storm
            content = make_rule(storm)
            for service in services.values():
                register(service, f"rule-{spare}::event", content.copy())
            spare += 1
    final_poll = next(iter(streams.values())).now + 25.0
    for service in services.values():
        service.poll(final_poll)
    return ([canonicalize(element) for element in outputs["network"]],
            [canonicalize(element) for element in outputs["linear"]])


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("service_cls", list(SERVICES),
                         ids=lambda cls: cls.service_name)
def test_network_equals_linear(service_cls, seed):
    network, linear = run_storm(service_cls, SERVICES[service_cls], seed)
    assert network == linear
    # the storm must actually exercise matching, not vacuously pass
    assert linear, f"seed {seed} produced no detections"


def test_detection_ids_are_monotonic_per_service():
    network, _ = run_storm(SnoopService, SERVICES[SnoopService], seed=3)
    ids = [line.split('detection-id="')[1].split('"')[0]
           for line in network if 'detection-id="' in line]
    sequence = [int(identifier.rsplit(":", 1)[1]) for identifier in ids]
    assert sequence == sorted(sequence)
    assert len(set(sequence)) == len(sequence)
