"""SPARQL join-ordering equivalence and the GRH opaque-request cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bindings import Relation
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry)
from repro.rdf import Graph, Literal, Namespace, select
from repro.services import InProcessTransport

EX = Namespace("urn:x#")


def random_graph(triples):
    graph = Graph()
    for s, p, o in triples:
        graph.add(EX[f"s{s}"], EX[f"p{p}"], Literal(f"o{o}"))
    return graph


class TestJoinOrderingEquivalence:
    QUERY = ("PREFIX ex: <urn:x#> SELECT ?a ?b WHERE { "
             "?x ex:p0 ?a . ?x ex:p1 ?b }")

    def _canonical(self, solutions):
        return sorted(tuple(sorted((k, str(v)) for k, v in s.items()))
                      for s in solutions)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 2),
                             st.integers(0, 5)), max_size=30))
    def test_reordering_never_changes_results(self, triples):
        graph = random_graph(triples)
        ordered = select(graph, self.QUERY, reorder=True)
        textual = select(graph, self.QUERY, reorder=False)
        assert self._canonical(ordered) == self._canonical(textual)


class _CountingService:
    def __init__(self):
        self.calls = 0

    def execute(self, query: str) -> str:
        self.calls += 1
        return f"result-for({query})"


class TestOpaqueCache:
    def _setup(self, cache):
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, InProcessTransport(),
                                    cache_opaque_requests=cache)
        service = _CountingService()
        grh.add_service(LanguageDescriptor("urn:svc", "query", "svc",
                                           framework_aware=False), service)
        spec = ComponentSpec("query", "urn:svc", opaque="q({K})",
                             bind_to="V")
        return grh, service, spec

    def test_cache_collapses_duplicate_queries(self):
        grh, service, spec = self._setup(cache=True)
        relation = Relation({"K": i % 2, "N": i} for i in range(10))
        result = grh.evaluate_query("r::q", spec, relation)
        assert len(result) == 10          # every tuple still extended
        assert service.calls == 2         # only two distinct queries
        assert grh.cache_hits == 8

    def test_without_cache_every_tuple_is_a_request(self):
        grh, service, spec = self._setup(cache=False)
        relation = Relation({"K": i % 2, "N": i} for i in range(10))
        grh.evaluate_query("r::q", spec, relation)
        assert service.calls == 10
        assert grh.cache_hits == 0

    def test_cache_respects_distinct_endpoints_and_queries(self):
        grh, service, spec = self._setup(cache=True)
        grh.evaluate_query("r::q", spec, Relation([{"K": 1}]))
        grh.evaluate_query("r::q", spec, Relation([{"K": 2}]))
        assert service.calls == 2

    def test_clear_cache(self):
        grh, service, spec = self._setup(cache=True)
        grh.evaluate_query("r::q", spec, Relation([{"K": 1}]))
        grh.clear_opaque_cache()
        grh.evaluate_query("r::q", spec, Relation([{"K": 1}]))
        assert service.calls == 2

    def test_results_identical_with_and_without_cache(self):
        cached_grh, _, cached_spec = self._setup(cache=True)
        plain_grh, _, plain_spec = self._setup(cache=False)
        relation = Relation({"K": i % 3} for i in range(9))
        assert cached_grh.evaluate_query("r::q", cached_spec, relation) == \
            plain_grh.evaluate_query("r::q", plain_spec, relation)
