"""Triple store, Turtle parsing and N-Triples output."""

import pytest

from repro.rdf import (BNode, Graph, Literal, Namespace, RDF, TurtleSyntaxError,
                       URIRef, XSD, parse_turtle, to_ntriples)

EX = Namespace("http://example.org/")


class TestTerms:
    def test_namespace_factory(self):
        assert EX.car == URIRef("http://example.org/car")
        assert EX["car"] == EX.car

    def test_literal_python_roundtrip(self):
        assert Literal.from_python(5).to_python() == 5
        assert Literal.from_python(2.5).to_python() == 2.5
        assert Literal.from_python(True).to_python() is True
        assert Literal.from_python("x").to_python() == "x"

    def test_literal_datatype_language_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, language="en")

    def test_bnode_fresh_ids(self):
        assert BNode() != BNode()
        assert BNode("fixed") == BNode("fixed")


class TestGraph:
    def test_add_idempotent(self):
        graph = Graph()
        graph.add(EX.s, EX.p, EX.o)
        graph.add(EX.s, EX.p, EX.o)
        assert len(graph) == 1

    def test_remove(self):
        graph = Graph([(EX.s, EX.p, EX.o)])
        assert graph.remove(EX.s, EX.p, EX.o) is True
        assert graph.remove(EX.s, EX.p, EX.o) is False
        assert len(graph) == 0

    def test_contains(self):
        graph = Graph([(EX.s, EX.p, EX.o)])
        assert (EX.s, EX.p, EX.o) in graph
        assert (EX.s, EX.p, EX.s) not in graph

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError, match="subject"):
            Graph().add(Literal("x"), EX.p, EX.o)

    def test_nonuri_predicate_rejected(self):
        with pytest.raises(ValueError, match="predicate"):
            Graph().add(EX.s, Literal("p"), EX.o)

    @pytest.fixture
    def fleet(self):
        graph = Graph()
        graph.add(EX.golf, RDF.type, EX.Car)
        graph.add(EX.golf, EX.carClass, Literal("B"))
        graph.add(EX.passat, RDF.type, EX.Car)
        graph.add(EX.passat, EX.carClass, Literal("C"))
        graph.add(EX.john, EX.owns, EX.golf)
        graph.add(EX.john, EX.owns, EX.passat)
        return graph

    def test_pattern_all_positions(self, fleet):
        assert len(list(fleet.triples(EX.john, None, None))) == 2
        assert len(list(fleet.triples(None, RDF.type, None))) == 2
        assert len(list(fleet.triples(None, None, EX.golf))) == 1
        assert len(list(fleet.triples(EX.john, EX.owns, EX.golf))) == 1
        assert len(list(fleet.triples(None, None, None))) == 6

    def test_pattern_no_match(self, fleet):
        assert list(fleet.triples(EX.nobody, None, None)) == []
        assert list(fleet.triples(None, EX.rents, None)) == []

    def test_subjects_objects_value(self, fleet):
        assert set(fleet.subjects(RDF.type, EX.Car)) == {EX.golf, EX.passat}
        assert set(fleet.objects(EX.john, EX.owns)) == {EX.golf, EX.passat}
        assert fleet.value(EX.golf, EX.carClass) == Literal("B")
        assert fleet.value(EX.golf, EX.owns) is None

    def test_instances_of(self, fleet):
        assert set(fleet.instances_of(EX.Car)) == {EX.golf, EX.passat}

    def test_count(self, fleet):
        assert fleet.count() == 6
        assert fleet.count(predicate=EX.owns) == 2

    def test_subject_object_pattern_answered_by_osp(self, fleet):
        # (s, ?, o): only the predicates linking the pair, no scan
        assert list(fleet.triples(EX.john, None, EX.golf)) == \
            [(EX.john, EX.owns, EX.golf)]
        assert list(fleet.triples(EX.golf, None, EX.john)) == []

    def test_count_every_bound_mask(self, fleet):
        assert fleet.count(subject=EX.john) == 2
        assert fleet.count(obj=EX.golf) == 1
        assert fleet.count(subject=EX.john, predicate=EX.owns) == 2
        assert fleet.count(subject=EX.john, obj=EX.golf) == 1
        assert fleet.count(predicate=RDF.type, obj=EX.Car) == 2
        assert fleet.count(EX.john, EX.owns, EX.golf) == 1
        assert fleet.count(EX.nobody) == 0
        assert fleet.count(obj=EX.nothing) == 0

    def test_counts_walk_back_on_remove(self, fleet):
        assert fleet.remove(EX.john, EX.owns, EX.golf)
        assert fleet.count(subject=EX.john) == 1
        assert fleet.count(obj=EX.golf) == 0
        # empty index buckets are pruned, not left as dead keys
        assert list(fleet.triples(None, None, EX.golf)) == []
        assert fleet.count(EX.john, None, EX.golf) == 0

    def test_version_counts_successful_mutations_only(self, fleet):
        version = fleet.version
        fleet.add(EX.extra, EX.owns, EX.golf)
        assert fleet.version == version + 1
        fleet.add(EX.extra, EX.owns, EX.golf)  # idempotent duplicate
        assert fleet.version == version + 1
        assert fleet.remove(EX.extra, EX.owns, EX.golf)
        assert not fleet.remove(EX.extra, EX.owns, EX.golf)
        assert fleet.version == version + 2


TURTLE = """
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:golf a ex:Car ;
    ex:carClass "B" ;
    ex:doors 5 ;
    ex:price 19999.5 ;
    ex:electric false .

ex:john ex:owns ex:golf, ex:passat ;
    ex:name "John Doe"@en .

_:station ex:locatedIn ex:paris .
[ ex:model "Clio" ] ex:carClass "A" .
"""


class TestTurtle:
    def test_parse_counts(self):
        graph = parse_turtle(TURTLE)
        assert len(graph) == 11

    def test_prefixed_names_and_a(self):
        graph = parse_turtle(TURTLE)
        assert (EX.golf, RDF.type, EX.Car) in graph

    def test_typed_literals(self):
        graph = parse_turtle(TURTLE)
        assert graph.value(EX.golf, EX.doors) == Literal("5",
                                                         datatype=XSD.integer)
        assert graph.value(EX.golf, EX.price).to_python() == 19999.5
        assert graph.value(EX.golf, EX.electric).to_python() is False

    def test_language_literal(self):
        graph = parse_turtle(TURTLE)
        assert graph.value(EX.john, EX.name) == Literal("John Doe",
                                                        language="en")

    def test_object_list(self):
        graph = parse_turtle(TURTLE)
        assert set(graph.objects(EX.john, EX.owns)) == {EX.golf, EX.passat}

    def test_blank_nodes(self):
        graph = parse_turtle(TURTLE)
        stations = list(graph.subjects(EX.locatedIn, EX.paris))
        assert len(stations) == 1
        assert isinstance(stations[0], BNode)

    def test_anonymous_bnode_with_properties(self):
        graph = parse_turtle(TURTLE)
        anon = list(graph.subjects(EX.model, Literal("Clio")))
        assert len(anon) == 1
        assert graph.value(anon[0], EX.carClass) == Literal("A")

    def test_string_escapes(self):
        graph = parse_turtle(
            '@prefix ex: <urn:x#> . ex:a ex:b "line\\nbreak\\t\\"q\\"" .')
        literal = graph.value(URIRef("urn:x#a"), URIRef("urn:x#b"))
        assert literal.lexical == 'line\nbreak\t"q"'

    def test_explicit_datatype(self):
        graph = parse_turtle(
            '@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n'
            '<urn:s> <urn:p> "42"^^xsd:integer .')
        assert graph.value(URIRef("urn:s"), URIRef("urn:p")).to_python() == 42

    def test_base_resolution(self):
        graph = parse_turtle('@base <http://example.org/> . <a> <b> <c> .')
        assert (URIRef("http://example.org/a"),
                URIRef("http://example.org/b"),
                URIRef("http://example.org/c")) in graph

    @pytest.mark.parametrize("bad", [
        "ex:a ex:b ex:c .",            # undeclared prefix
        "@prefix ex: <urn:x> . ex:a ex:b .",  # missing object
        '<urn:a> <urn:b> "unterminated .',
        "<urn:a> <urn:b> <urn:c>",     # missing dot
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(TurtleSyntaxError):
            parse_turtle(bad)

    def test_error_has_line_number(self):
        with pytest.raises(TurtleSyntaxError) as excinfo:
            parse_turtle("@prefix ex: <urn:x#> .\nex:a ex:b .")
        assert excinfo.value.line == 2


class TestNTriples:
    def test_roundtrip_through_ntriples(self):
        graph = parse_turtle(TURTLE)
        # N-Triples is valid Turtle: reparse and compare URI/literal triples
        reparsed = parse_turtle(to_ntriples(graph))
        assert len(reparsed) == len(graph)

    def test_deterministic_for_same_graph(self):
        graph = parse_turtle(TURTLE)
        assert to_ntriples(graph) == to_ntriples(graph)
        # across parses only anonymous bnode labels may differ
        import re as _re
        scrub = lambda text: _re.sub(r"_:b\d+", "_:anon", text)
        assert scrub(to_ntriples(graph)) == scrub(
            to_ntriples(parse_turtle(TURTLE)))

    def test_empty_graph(self):
        assert to_ntriples(Graph()) == ""


from hypothesis import given, settings, strategies as st


class TestTurtleRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 6), st.integers(0, 3),
                             st.integers(0, 6)), max_size=25),
           st.sets(st.tuples(st.integers(0, 6), st.integers(0, 3),
                             st.text(alphabet='ab "\\\n', max_size=6)),
                   max_size=10))
    def test_ntriples_roundtrip_random_graphs(self, uri_triples,
                                              literal_triples):
        graph = Graph()
        for s, p, o in uri_triples:
            graph.add(EX[f"s{s}"], EX[f"p{p}"], EX[f"o{o}"])
        for s, p, text in literal_triples:
            graph.add(EX[f"s{s}"], EX[f"p{p}"], Literal(text))
        reparsed = parse_turtle(to_ntriples(graph))
        assert set(reparsed) == set(graph)
