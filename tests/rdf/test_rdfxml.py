"""RDF/XML subset: RDF fragments as embeddable XML (Sec. 3 values)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bindings import Binding, Relation, answers_to_relation, \
    relation_to_answers
from repro.rdf import (BNode, Graph, Literal, Namespace, RdfXmlError, XSD,
                       describe_subject, graph_to_rdfxml, parse_turtle,
                       rdfxml_to_graph)
from repro.xmlmodel import parse, serialize

EX = Namespace("http://example.org/")

TURTLE = """
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:golf a ex:Car ;
    ex:carClass "B" ;
    ex:doors "5"^^xsd:integer ;
    ex:name "Golf"@en ;
    ex:soldBy _:dealer .
_:dealer ex:city ex:munich .
"""


class TestRoundTrip:
    def test_graph_roundtrips_through_rdfxml(self):
        graph = parse_turtle(TURTLE)
        reparsed = rdfxml_to_graph(graph_to_rdfxml(graph))
        assert len(reparsed) == len(graph)
        assert (EX.golf, EX.carClass, Literal("B")) in reparsed
        assert reparsed.value(EX.golf, EX.doors) == Literal(
            "5", datatype=XSD.integer)
        assert reparsed.value(EX.golf, EX.name) == Literal("Golf",
                                                           language="en")

    def test_bnode_links_preserved(self):
        graph = parse_turtle(TURTLE)
        reparsed = rdfxml_to_graph(graph_to_rdfxml(graph))
        dealer = reparsed.value(EX.golf, EX.soldBy)
        assert isinstance(dealer, BNode)
        assert reparsed.value(dealer, EX.city) == EX.munich

    def test_wire_roundtrip_through_serializer(self):
        graph = parse_turtle(TURTLE)
        wire = serialize(graph_to_rdfxml(graph))
        assert len(rdfxml_to_graph(parse(wire))) == len(graph)

    def test_describe_subject_is_partial(self):
        graph = parse_turtle(TURTLE)
        fragment = describe_subject(graph, EX.golf)
        partial = rdfxml_to_graph(fragment)
        assert len(partial) == 5  # only golf's triples
        assert partial.value(EX.golf, EX.carClass) == Literal("B")

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 3),
                             st.integers(0, 5)), min_size=1, max_size=15))
    def test_property_roundtrip_random_graphs(self, triples):
        graph = Graph()
        for s, p, o in triples:
            graph.add(EX[f"s{s}"], EX[f"p{p}"], Literal(f"o{o}"))
        reparsed = rdfxml_to_graph(parse(serialize(graph_to_rdfxml(graph))))
        assert set(reparsed) == set(graph)


class TestAsBindingValue:
    def test_rdf_fragment_travels_in_log_answers(self):
        """Sec. 3: a variable bound to an RDF fragment crosses the wire."""
        graph = parse_turtle(TURTLE)
        fragment = describe_subject(graph, EX.golf)
        relation = Relation([Binding({"CarDescription": fragment})])
        wire = serialize(relation_to_answers(relation))
        (binding,) = answers_to_relation(parse(wire))
        recovered = rdfxml_to_graph(binding["CarDescription"])
        assert recovered.value(EX.golf, EX.carClass) == Literal("B")


class TestErrors:
    def test_wrong_root_rejected(self):
        with pytest.raises(RdfXmlError, match="rdf:RDF"):
            rdfxml_to_graph(parse("<notrdf/>"))

    def test_typed_node_form_rejected(self):
        from repro.rdf import RDF_SYNTAX_NS
        markup = (f'<rdf:RDF xmlns:rdf="{RDF_SYNTAX_NS}" '
                  f'xmlns:ex="http://example.org/">'
                  f'<ex:Car rdf:about="http://example.org/golf"/></rdf:RDF>')
        with pytest.raises(RdfXmlError, match="rdf:Description"):
            rdfxml_to_graph(parse(markup))

    def test_property_without_namespace_rejected(self):
        from repro.rdf import RDF_SYNTAX_NS
        markup = (f'<rdf:RDF xmlns:rdf="{RDF_SYNTAX_NS}">'
                  f'<rdf:Description rdf:about="urn:x">'
                  f"<plain>v</plain></rdf:Description></rdf:RDF>")
        with pytest.raises(RdfXmlError, match="namespace"):
            rdfxml_to_graph(parse(markup))
