"""Regression suite for evaluator corners the planner must preserve.

These pin the naive evaluator's semantics — unbound variables in
filters, typed-literal comparisons, duplicate solutions, ``UNION``
multiset behaviour — as the reference the ``repro.sparql`` differential
suite (tests/sparql/) checks the planned executor against.
"""

from collections import Counter

import pytest

from repro.rdf import (Graph, Literal, Namespace, XSD, ask, parse_turtle,
                       select)

EX = Namespace("http://example.org/")
PREFIX = "PREFIX ex: <http://example.org/>\n"

DATA = """
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:golf ex:carClass "B" ; ex:doors 5 ; ex:price 19999.5 ;
    ex:electric false .
ex:passat ex:carClass "C" ; ex:doors 5 .
ex:clio ex:carClass "A" ; ex:doors 3 ; ex:electric true .
ex:john ex:owns ex:golf, ex:passat .
ex:jane ex:owns ex:clio .
"""


@pytest.fixture(scope="module")
def graph():
    return parse_turtle(DATA)


def multiset(solutions):
    return Counter(tuple(sorted(solution.items()))
                   for solution in solutions)


class TestFilterUnboundVariables:
    def test_comparison_on_unbound_variable_eliminates(self, graph):
        # ex:passat has no ex:electric: the filter errors, the row dies
        rows = select(graph, PREFIX + (
            "SELECT ?car WHERE { ?car ex:doors ?d "
            "OPTIONAL { ?car ex:electric ?e } FILTER(?e = false) }"))
        assert [row["car"] for row in rows] == [EX.golf]

    def test_wholly_unbound_filter_variable_kills_all_rows(self, graph):
        rows = select(graph, PREFIX + (
            "SELECT ?car WHERE { ?car ex:doors ?d . FILTER(?nope > 1) }"))
        assert rows == []

    def test_bound_rescues_unbound_variable(self, graph):
        rows = select(graph, PREFIX + (
            "SELECT ?car WHERE { ?car ex:doors ?d "
            "OPTIONAL { ?car ex:electric ?e } FILTER(!BOUND(?e)) }"))
        assert [row["car"] for row in rows] == [EX.passat]


class TestTypedLiterals:
    def test_integer_comparison_is_numeric_not_lexical(self, graph):
        rows = select(graph, PREFIX +
                      "SELECT ?car WHERE { ?car ex:doors ?d . "
                      "FILTER(?d > 4) }")
        assert {row["car"] for row in rows} == {EX.golf, EX.passat}

    def test_double_and_boolean_literals(self, graph):
        assert ask(graph, PREFIX +
                   "ASK { ?car ex:price ?p . FILTER(?p < 20000) }")
        assert ask(graph, PREFIX + "ASK { ?car ex:electric true }")
        assert not ask(graph, PREFIX +
                       "ASK { ex:golf ex:electric true }")

    def test_typed_literal_object_match_respects_datatype(self, graph):
        # "5" as a plain string is a different term from 5^^xsd:integer
        plain = Graph([(EX.thing, EX.doors, Literal("5"))])
        assert not ask(plain, PREFIX + "ASK { ?x ex:doors 5 }")
        assert ask(graph, PREFIX + "ASK { ex:golf ex:doors 5 }")

    def test_solutions_carry_typed_terms(self, graph):
        rows = select(graph, PREFIX +
                      "SELECT ?d WHERE { ex:clio ex:doors ?d }")
        assert rows == [{"d": Literal("3", datatype=XSD.integer)}]


class TestDuplicateSolutions:
    def test_projection_keeps_duplicates(self, graph):
        rows = select(graph, PREFIX +
                      "SELECT ?d WHERE { ?car ex:doors ?d }")
        assert multiset(rows) == Counter({
            (("d", Literal("5", datatype=XSD.integer)),): 2,
            (("d", Literal("3", datatype=XSD.integer)),): 1,
        })

    def test_distinct_collapses_them(self, graph):
        rows = select(graph, PREFIX +
                      "SELECT DISTINCT ?d WHERE { ?car ex:doors ?d }")
        assert len(rows) == 2

    def test_union_preserves_branch_duplicates(self, graph):
        # ex:golf matches both branches: it appears twice (multiset
        # union, SPARQL semantics), once per branch
        rows = select(graph, PREFIX + (
            "SELECT ?car WHERE { { ?car ex:carClass \"B\" } UNION "
            "{ ?car ex:doors 5 } }"))
        counts = Counter(row["car"] for row in rows)
        assert counts[EX.golf] == 2
        assert counts[EX.passat] == 1
        assert counts[EX.polo] == 0

    def test_union_branches_evaluated_in_textual_order(self, graph):
        rows = select(graph, PREFIX + (
            "SELECT ?who WHERE { { ex:john ex:owns ?who } UNION "
            "{ ex:jane ex:owns ?who } }"))
        assert set(rows[-1].values()) == {EX.clio}

    def test_union_with_disjoint_variables_leaves_gaps(self, graph):
        rows = select(graph, PREFIX + (
            "SELECT * WHERE { { ?p ex:owns ?c } UNION "
            "{ ?q ex:electric true } }"))
        owner_rows = [row for row in rows if "p" in row]
        electric_rows = [row for row in rows if "q" in row]
        assert len(owner_rows) == 3
        assert electric_rows == [{"q": EX.clio}]
        assert all("q" not in row for row in owner_rows)
