"""SPARQL-subset parsing and evaluation."""

import pytest

from repro.rdf import (Graph, Literal, Namespace, SparqlEvaluationError,
                       SparqlSyntaxError, URIRef, ask, parse_sparql,
                       parse_turtle, select)

DATA = """
@prefix ex: <http://example.org/> .

ex:golf a ex:Car ; ex:carClass "B" ; ex:owner ex:john ; ex:doors 5 .
ex:passat a ex:Car ; ex:carClass "C" ; ex:owner ex:john ; ex:doors 5 .
ex:clio a ex:Car ; ex:carClass "A" ; ex:owner ex:jane .
ex:polo a ex:Car ; ex:carClass "B" ; ex:location ex:paris .
ex:espace a ex:Car ; ex:carClass "D" ; ex:location ex:paris .

ex:john ex:name "John Doe" .
ex:jane ex:name "Jane Roe" .
"""

EX = Namespace("http://example.org/")


@pytest.fixture(scope="module")
def graph():
    return parse_turtle(DATA)


PREFIX = "PREFIX ex: <http://example.org/>\n"


class TestSelect:
    def test_single_pattern(self, graph):
        rows = select(graph, PREFIX + "SELECT ?c WHERE { ?c a ex:Car }")
        assert len(rows) == 5

    def test_join_over_shared_variable(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?car ?name WHERE {
                ?car ex:owner ?p .
                ?p ex:name ?name .
            }""")
        assert {(str(r["car"]), r["name"].lexical) for r in rows} == {
            (str(EX.golf), "John Doe"),
            (str(EX.passat), "John Doe"),
            (str(EX.clio), "Jane Roe"),
        }

    def test_paper_scenario_available_classes(self, graph):
        # cars available in Paris and their classes (Fig. 10 analogue)
        rows = select(graph, PREFIX + """
            SELECT ?car ?class WHERE {
                ?car ex:location ex:paris ; ex:carClass ?class .
            } ORDER BY ?class""")
        assert [r["class"].lexical for r in rows] == ["B", "D"]

    def test_predicate_object_list_syntax(self, graph):
        rows = select(graph, PREFIX +
                      'SELECT ?c WHERE { ?c ex:carClass "B" ; a ex:Car . }')
        assert len(rows) == 2

    def test_literal_object_match(self, graph):
        rows = select(graph, PREFIX +
                      'SELECT ?c WHERE { ?c ex:carClass "A" }')
        assert [str(row["c"]) for row in rows] == [str(EX.clio)]

    def test_numeric_literal_object(self, graph):
        rows = select(graph, PREFIX + "SELECT ?c WHERE { ?c ex:doors 5 }")
        assert len(rows) == 2

    def test_star_projection(self, graph):
        rows = select(graph, PREFIX +
                      "SELECT * WHERE { ?c ex:owner ?p . ?p ex:name ?n }")
        assert set(rows[0]) == {"c", "p", "n"}

    def test_distinct(self, graph):
        rows = select(graph, PREFIX +
                      "SELECT DISTINCT ?p WHERE { ?c ex:owner ?p }")
        assert len(rows) == 2

    def test_order_by_desc_and_limit(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?class WHERE { ?c ex:carClass ?class }
            ORDER BY DESC(?class) LIMIT 2""")
        assert [r["class"].lexical for r in rows] == ["D", "C"]

    def test_no_match_returns_empty(self, graph):
        assert select(graph, PREFIX +
                      "SELECT ?x WHERE { ?x ex:rents ?y }") == []


class TestFilters:
    def test_string_inequality(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE {
                ?c ex:carClass ?k . FILTER(?k != "B")
            }""")
        assert len(rows) == 3

    def test_numeric_comparison(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE { ?c ex:doors ?d . FILTER(?d > 4) }""")
        assert len(rows) == 2

    def test_boolean_connectives(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE {
                ?c ex:carClass ?k .
                FILTER(?k = "B" || ?k = "D")
            }""")
        assert len(rows) == 3

    def test_negation(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE { ?c ex:carClass ?k . FILTER(!(?k = "B")) }""")
        assert len(rows) == 3

    def test_regex(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?p WHERE { ?p ex:name ?n . FILTER(REGEX(?n, "^John")) }""")
        assert [str(row["p"]) for row in rows] == [str(EX.john)]

    def test_bound_with_optional(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE {
                ?c a ex:Car .
                OPTIONAL { ?c ex:owner ?o }
                FILTER(!BOUND(?o))
            }""")
        assert {str(r["c"]) for r in rows} == {str(EX.polo), str(EX.espace)}

    def test_filter_error_eliminates_solution(self, graph):
        # comparing a URI with < is an error → solution dropped, not raised
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE { ?c ex:owner ?o . FILTER(?o > 3) }""")
        assert rows == []

    def test_arithmetic_in_filter(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c WHERE { ?c ex:doors ?d . FILTER(?d * 2 = 10) }""")
        assert len(rows) == 2


class TestOptional:
    def test_optional_extends_when_present(self, graph):
        rows = select(graph, PREFIX + """
            SELECT ?c ?o WHERE {
                ?c a ex:Car . OPTIONAL { ?c ex:owner ?o }
            }""")
        with_owner = [r for r in rows if "o" in r and r["o"] is not None]
        assert len(rows) == 5
        assert len(with_owner) == 3


class TestAsk:
    def test_ask_true(self, graph):
        assert ask(graph, PREFIX + 'ASK { ?c ex:carClass "D" }') is True

    def test_ask_false(self, graph):
        assert ask(graph, PREFIX + 'ASK { ?c ex:carClass "Z" }') is False

    def test_ask_with_filter(self, graph):
        assert ask(graph, PREFIX +
                   "ASK { ?c ex:doors ?d . FILTER(?d > 10) }") is False


class TestParsing:
    def test_parse_result_structure(self):
        query = parse_sparql(PREFIX + "SELECT ?a ?b WHERE { ?a ex:p ?b }")
        assert query.form == "SELECT"
        assert query.variables == ("a", "b")
        assert len(query.where.patterns) == 1

    @pytest.mark.parametrize("bad", [
        "SELECT WHERE { ?a ?b ?c }",        # no variables
        "SELECT ?a { ?a ex:p ?b }",          # undeclared prefix
        "FROB ?a WHERE { ?a ?b ?c }",        # unknown form
        "SELECT ?a WHERE { ?a ?b }",         # incomplete triple
        "SELECT ?a WHERE { ?a ?b ?c ",       # unterminated group
        PREFIX + "SELECT ?a WHERE { ?a ex:p ?b } garbage",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(bad)

    def test_select_on_ask_query_rejected(self, graph):
        with pytest.raises(SparqlEvaluationError):
            select(graph, "ASK { ?a ?b ?c }")
        with pytest.raises(SparqlEvaluationError):
            ask(graph, "SELECT * WHERE { ?a ?b ?c }")
