"""Serialization round-trips on the travel-domain graph.

A graph must survive Turtle → graph → N-Triples → graph and
graph → RDF/XML → graph unchanged — including prefixed names, language
tags, typed literals and escaped literal content — because the ECA
engine ships RDF fragments between services in both syntaxes.
"""

from repro.domain import fleet_graph
from repro.domain.travel import FLEET_NS
from repro.rdf import (Graph, Literal, Namespace, URIRef, graph_to_rdfxml,
                       parse_turtle, rdfxml_to_graph, to_ntriples)

FLEET = Namespace(FLEET_NS)

EXTENDED = f"""
@prefix fleet: <{FLEET_NS}> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

fleet:f1 a fleet:RentalCar ;
    fleet:model "Polo" ;
    fleet:seats "5"^^xsd:integer ;
    fleet:rate "49.5"^^xsd:double ;
    fleet:available true ;
    fleet:city "M\\u00fcnchen"@de ;
    fleet:note "line one\\nline \\"two\\" \\\\ done" .
fleet:f2 fleet:partner fleet:f1 ;
    fleet:city "Rome"@en .
"""


def no_bnodes(graph: Graph) -> bool:
    return all(isinstance(s, URIRef) for s, _p, _o in graph)


class TestNTriplesRoundTrip:
    def test_fleet_graph_survives(self):
        graph = fleet_graph()
        again = parse_turtle(to_ntriples(graph))
        assert set(again) == set(graph)
        assert len(again) == len(graph)

    def test_prefixed_names_expand_to_the_same_terms(self):
        graph = fleet_graph()
        assert (FLEET.f1, FLEET.model, Literal("Polo")) in set(graph)

    def test_language_tags_and_escapes_survive(self):
        graph = parse_turtle(EXTENDED)
        again = parse_turtle(to_ntriples(graph))
        assert set(again) == set(graph)
        cities = {o for _s, p, o in graph if p == FLEET.city}
        assert Literal("München", language="de") in cities
        notes = [o for _s, p, o in again if p == FLEET.note]
        assert notes == [Literal('line one\nline "two" \\ done')]

    def test_serialization_is_deterministic(self):
        first = parse_turtle(EXTENDED)
        second = parse_turtle(EXTENDED)
        assert to_ntriples(first) == to_ntriples(second)


class TestRdfXmlRoundTrip:
    def test_fleet_graph_survives(self):
        graph = fleet_graph()
        assert no_bnodes(graph)
        again = rdfxml_to_graph(graph_to_rdfxml(graph))
        assert set(again) == set(graph)

    def test_typed_language_and_escaped_literals_survive(self):
        graph = parse_turtle(EXTENDED)
        again = rdfxml_to_graph(graph_to_rdfxml(graph))
        assert set(again) == set(graph)

    def test_double_round_trip_is_stable(self):
        graph = parse_turtle(EXTENDED)
        once = rdfxml_to_graph(graph_to_rdfxml(graph))
        twice = rdfxml_to_graph(graph_to_rdfxml(once))
        assert set(twice) == set(once) == set(graph)
