"""The test language: comparisons over bound variables."""

import pytest

from repro.bindings import Binding, Relation, Uri
from repro.conditions import (TestEvaluationError, TestExpression,
                              TestSyntaxError)
from repro.xmlmodel import parse


class TestBasicPredicates:
    @pytest.mark.parametrize("source,binding,expected", [
        ("$Class = 'B'", {"Class": "B"}, True),
        ("$Class = 'B'", {"Class": "C"}, False),
        ("$Price < 100", {"Price": 50}, True),
        ("$Price < 100", {"Price": 150}, False),
        ("$A = $B", {"A": "x", "B": "x"}, True),
        ("$A != $B", {"A": "x", "B": "y"}, True),
        ("$N + 1 = 3", {"N": 2}, True),
        ("$N mod 2 = 0", {"N": 4}, True),
        ("not($Flag)", {"Flag": False}, True),
        ("$A = 'x' and $B > 1", {"A": "x", "B": 2}, True),
        ("$A = 'x' or $B > 1", {"A": "z", "B": 2}, True),
        ("contains($City, 'Par')", {"City": "Paris"}, True),
        ("starts-with($Name, 'John')", {"Name": "John Doe"}, True),
        ("string-length($Name) > 3", {"Name": "John"}, True),
    ])
    def test_predicates(self, source, binding, expected):
        assert TestExpression(source).holds(Binding(binding)) is expected

    def test_uri_values_compare_as_strings(self):
        test = TestExpression("$Ref = 'http://example.org/x'")
        assert test.holds(Binding({"Ref": Uri("http://example.org/x")}))


class TestXMLNavigation:
    def test_navigate_into_fragment(self):
        car = parse("<car><model>Golf</model><class>B</class></car>")
        test = TestExpression("$Car/class = 'B'")
        assert test.holds(Binding({"Car": car})) is True
        assert test.holds(Binding({"Car": parse(
            "<car><class>C</class></car>")})) is False

    def test_attribute_of_fragment(self):
        test = TestExpression("$Car/@doors > 3")
        assert test.holds(Binding({"Car": parse('<car doors="5"/>')}))


class TestRelationFiltering:
    def test_filter_keeps_satisfying_tuples(self):
        relation = Relation([
            {"OwnCar": "Golf", "Class": "B"},
            {"OwnCar": "Passat", "Class": "C"},
        ])
        filtered = TestExpression("$Class = 'B'").filter(relation)
        assert len(filtered) == 1
        (binding,) = filtered
        assert binding["OwnCar"] == "Golf"

    def test_filter_empty_relation(self):
        assert TestExpression("$X = 1").filter(Relation()) == Relation()


class TestValidation:
    def test_variables_are_reported(self):
        test = TestExpression("$A = $B and contains($C, 'x')")
        assert test.variables() == {"A", "B", "C"}

    @pytest.mark.parametrize("bad", [
        "",                      # empty
        "$A = ",                 # incomplete
        "book = 'x'",            # free path
        "/a/b = 1",              # absolute path
        ". = 1",                 # context item
        "$A[. = 1]/x | b",       # free path inside union
    ])
    def test_rejected_expressions(self, bad):
        with pytest.raises(TestSyntaxError):
            TestExpression(bad)

    def test_unbound_variable_raises_at_evaluation(self):
        with pytest.raises(TestEvaluationError, match="Missing"):
            TestExpression("$Missing = 1").holds(Binding({"Other": 1}))


class TestNamespacedFragments:
    def test_navigation_with_prefix(self):
        from repro.xmlmodel import parse
        car = parse('<t:car xmlns:t="urn:t"><t:class>B</t:class></t:car>')
        test = TestExpression("$Car/t:class = 'B'",
                              namespaces={"t": "urn:t"})
        assert test.holds(Binding({"Car": car})) is True

    def test_undeclared_prefix_fails_at_evaluation(self):
        from repro.xmlmodel import parse
        # the element must have children for the name test to be applied
        car = parse('<car><klass>B</klass></car>')
        test = TestExpression("$Car/t:klass = 'B'")
        with pytest.raises(TestEvaluationError):
            test.holds(Binding({"Car": car}))
