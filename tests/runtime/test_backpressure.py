"""Admission control: bounded queue, the three policies, the gate."""

import threading
import time

import pytest

from repro.bindings import Relation
from repro.grh.messages import Detection
from repro.runtime import BackpressureError, Runtime

from .harness import build_world
from repro.domain import WorkloadConfig, booking_payloads
from repro.domain.workload import simple_rule_markup


def _detection(n: int) -> Detection:
    return Detection("c1", 0.0, 1.0, Relation([{"N": str(n)}]),
                     detection_id=f"d{n}")


def _gated_engine(runtime):
    """An engine whose _handle blocks until ``release`` is set, so the
    ingestion queue can be filled deterministically."""
    deployment, engine = build_world(runtime)
    release = threading.Event()
    original = engine._handle

    def gated(detection):
        release.wait(10)
        original(detection)

    engine._handle = gated
    engine.register_rule(simple_rule_markup("r1"))
    return deployment, engine, release


class TestRejectPolicy:
    def test_overflow_raises_to_producer(self):
        runtime = Runtime(workers=1, queue_capacity=2, backpressure="reject")
        deployment, engine, release = _gated_engine(runtime)
        payloads = booking_payloads(WorkloadConfig(), 8)
        try:
            errors = 0
            for payload in payloads:
                try:
                    deployment.stream.emit(payload)
                except BackpressureError:
                    errors += 1
            # 1 in execution (blocked), 2 queued, the rest rejected
            assert errors >= 1
            assert runtime.rejected == errors
            release.set()
            assert engine.drain(10)
        finally:
            release.set()
            engine.shutdown(5)
        # accepted work still completed; rejected work journalled away
        assert engine.stats["completed"] == 8 - errors

    def test_rejected_detection_closed_in_journal(self, tmp_path):
        from repro.durability import DurabilityManager
        manager = DurabilityManager(str(tmp_path), sync="always")
        runtime = Runtime(workers=1, queue_capacity=1, backpressure="reject")
        deployment, engine = build_world(runtime)
        engine.durability = manager  # late attach: simplest durable wiring
        release = threading.Event()
        original = engine._handle

        def gated(detection):
            release.wait(10)
            original(detection)

        engine._handle = gated
        engine.register_rule(simple_rule_markup("r1"))
        payloads = booking_payloads(WorkloadConfig(), 6)
        rejected = 0
        try:
            for payload in payloads:
                try:
                    deployment.stream.emit(payload)
                except BackpressureError:
                    rejected += 1
            assert rejected >= 1
            release.set()
            assert engine.drain(10)
        finally:
            release.set()
            engine.shutdown(5)
        # nothing is left in flight: every admitted detection finished,
        # every rejected one was journalled "dropped" at rejection time
        assert not manager.in_flight


class TestDropOldestPolicy:
    def test_oldest_is_shed_and_counted(self):
        runtime = Runtime(workers=1, queue_capacity=2,
                          backpressure="drop-oldest")
        deployment, engine, release = _gated_engine(runtime)
        payloads = booking_payloads(WorkloadConfig(), 8)
        try:
            for payload in payloads:
                deployment.stream.emit(payload)  # never raises
            release.set()
            assert engine.drain(10)
        finally:
            release.set()
            engine.shutdown(5)
        assert runtime.dropped >= 1
        assert engine.stats["completed"] == 8 - runtime.dropped


class TestBlockPolicy:
    def test_producer_blocks_until_space(self):
        runtime = Runtime(workers=1, queue_capacity=1,
                          backpressure="block")
        deployment, engine, release = _gated_engine(runtime)
        payloads = booking_payloads(WorkloadConfig(), 4)
        done = threading.Event()

        def producer():
            for payload in payloads:
                deployment.stream.emit(payload)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        try:
            thread.start()
            time.sleep(0.2)
            assert not done.is_set()        # producer is being held back
            release.set()
            assert done.wait(10)            # and released once space frees
            assert engine.drain(10)
        finally:
            release.set()
            engine.shutdown(5)
        assert engine.stats["completed"] == 4
        assert runtime.dropped == 0 and runtime.rejected == 0

    def test_submit_timeout_turns_block_into_reject(self):
        runtime = Runtime(workers=1, queue_capacity=1,
                          backpressure="block", submit_timeout=0.05)
        deployment, engine, release = _gated_engine(runtime)
        payloads = booking_payloads(WorkloadConfig(), 4)
        try:
            with pytest.raises(BackpressureError):
                for payload in payloads:
                    deployment.stream.emit(payload)
            release.set()
            assert engine.drain(10)
        finally:
            release.set()
            engine.shutdown(5)
        assert runtime.rejected >= 1

    def test_chained_detections_bypass_the_gate(self):
        """An event raised from inside a worker must never block on
        capacity only workers can free (self-deadlock)."""
        runtime = Runtime(workers=1, queue_capacity=1,
                          backpressure="block")
        deployment, engine = build_world(runtime)
        # chain: booking → send to mailbox raising chained event → r2
        from repro.actions import ACTION_NS
        from repro.domain.workload import TRAVEL_NS
        from repro.xmlmodel import ECA_NS
        engine.register_rule(f"""
        <eca:rule xmlns:eca="{ECA_NS}" id="chainer">
          <eca:event>
            <travel:booking xmlns:travel="{TRAVEL_NS}"
                            person="{{Person}}" to="{{To}}"/>
          </eca:event>
          <eca:action>
            <act:raise xmlns:act="{ACTION_NS}">
              <travel:chained xmlns:travel="{TRAVEL_NS}"
                              person="{{Person}}" to="{{To}}"/>
            </act:raise>
          </eca:action>
        </eca:rule>""")
        engine.register_rule(
            simple_rule_markup("r2", event_name="chained"))
        try:
            for payload in booking_payloads(WorkloadConfig(), 3):
                deployment.stream.emit(payload)
            assert engine.drain(15)
        finally:
            engine.shutdown(5)
        # both the original and the chained rules completed every time
        assert engine.stats["completed"] == 6


class TestCapacityCountsQueuedOnly:
    def test_executing_detection_frees_queue_space(self):
        """Regression: the capacity gate used to count *executing*
        detections, so at small capacities every in-flight item could
        be on a worker, shed() found nothing to drop, and submit
        silently pushed past capacity.  Capacity now gates queued
        detections only: space frees at worker pickup, and drop-oldest
        always has a genuinely queued victim when the gate fires."""
        runtime = Runtime(workers=1, queue_capacity=1,
                          backpressure="drop-oldest")
        deployment, engine, release = _gated_engine(runtime)
        payloads = booking_payloads(WorkloadConfig(), 3)
        try:
            deployment.stream.emit(payloads[0])
            for _ in range(200):        # wait for worker pickup
                counters = runtime.counters()
                if counters["active"] == 1 and counters["queued"] == 0:
                    break
                time.sleep(0.01)
            counters = runtime.counters()
            assert counters["active"] == 1 and counters["queued"] == 0
            assert runtime.accepting    # executing work doesn't saturate
            deployment.stream.emit(payloads[1])
            assert runtime.counters()["queued"] == 1
            assert not runtime.accepting
            deployment.stream.emit(payloads[2])   # gate fires: must shed
            assert runtime.dropped == 1
            assert runtime.counters()["queued"] == 1
            release.set()
            assert engine.drain(10)
        finally:
            release.set()
            engine.shutdown(5)
        assert engine.stats["completed"] == 2


class TestAdmissionGate:
    def test_gate_reflects_saturation(self):
        runtime = Runtime(workers=1, queue_capacity=1, backpressure="reject")
        deployment, engine, release = _gated_engine(runtime)
        try:
            assert runtime.accepting and not runtime.saturated
            emitted = 0
            for payload in booking_payloads(WorkloadConfig(), 6):
                try:
                    deployment.stream.emit(payload)
                    emitted += 1
                except BackpressureError:
                    break
            assert runtime.saturated and not runtime.accepting
            release.set()
            assert engine.drain(10)
            assert runtime.accepting and not runtime.saturated
        finally:
            release.set()
            engine.shutdown(5)
        assert not runtime.accepting  # stopped runtime never accepts
