"""Stress: 4 workers against a flaky HTTP service — no deadlock, no
lost detections.

The short smoke always runs (a few seconds).  The CI ``runtime`` job
sets ``RUNTIME_STRESS=1`` to run the full 30-second soak instead
(ISSUE 5): multiple producer threads emitting continuously while the
HTTP query service randomly fails ~15% of requests; at the end, every
admitted detection must be accounted for — completed, failed, or
dead-lettered — and the pool must quiesce.
"""

import os
import random
import threading
import time

import pytest

from repro.actions import ACTION_NS, ActionRuntime
from repro.bindings import Relation, relation_to_answers
from repro.core import ECAEngine
from repro.domain import WorkloadConfig, booking_payloads
from repro.domain.workload import TRAVEL_NS
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry, ResilienceManager, RetryPolicy)
from repro.runtime import Runtime
from repro.services import (ActionExecutionService, AtomicEventService,
                            HttpServiceServer, HybridTransport)
from repro.xmlmodel import ECA_NS

FLAKY_LANG = "urn:test:stress-flaky"


class FlakyHttpService:
    """Randomly crashes (HTTP 500) with a seeded failure rate."""

    def __init__(self, failure_rate: float = 0.15, seed: int = 0) -> None:
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.calls = 0

    def handle(self, message):
        with self._lock:
            self.calls += 1
            flaky = self._rng.random() < self.failure_rate
        if flaky:
            # connection abort → transient in the §11 taxonomy (an HTTP
            # 500 would be a non-retryable service report)
            raise ConnectionResetError("transient outage (simulated)")
        return relation_to_answers(Relation([{"Q": "ok"}]))


def _stress_world(workers: int):
    registry = LanguageRegistry()
    resilience = ResilienceManager(retry=RetryPolicy(max_attempts=2),
                                   sleep=lambda s: None)
    grh = GenericRequestHandler(registry, HybridTransport(timeout=5.0),
                                resilience=resilience)
    stream = EventStream()
    actions = ActionRuntime(event_stream=stream)
    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                    atomic)
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(actions))
    service = FlakyHttpService()
    server = HttpServiceServer(aware_handler=service.handle)
    url = server.start()
    grh.add_remote_language(
        LanguageDescriptor(FLAKY_LANG, "query", "stress-flaky"), url)
    runtime = Runtime(workers=workers, queue_capacity=512,
                      backpressure="block")
    engine = ECAEngine(grh, runtime=runtime, keep_instances=False)
    engine.register_rule(f"""
    <eca:rule xmlns:eca="{ECA_NS}" id="stress">
      <eca:event>
        <travel:booking xmlns:travel="{TRAVEL_NS}"
                        person="{{Person}}" to="{{To}}"/>
      </eca:event>
      <eca:query><q xmlns="{FLAKY_LANG}">whatever</q></eca:query>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>""")
    return engine, stream, server, service


def _soak(duration: float, producers: int = 3, workers: int = 4) -> None:
    engine, stream, server, service = _stress_world(workers)
    emitted = [0] * producers
    stop = threading.Event()

    def producer(index: int) -> None:
        config = WorkloadConfig(persons=20, fleet_size=10, cities=3,
                                seed=index)
        payloads = booking_payloads(config, 50)
        n = 0
        while not stop.is_set():
            stream.emit(payloads[n % len(payloads)].copy())
            emitted[index] += 1
            n += 1

    threads = [threading.Thread(target=producer, args=(i,), daemon=True)
               for i in range(producers)]
    try:
        for thread in threads:
            thread.start()
        time.sleep(duration)
        stop.set()
        for thread in threads:
            thread.join(10)
        assert engine.drain(60), "pool failed to quiesce (deadlock?)"
    finally:
        stop.set()
        quiesced = engine.shutdown(30)
        server.stop()
    assert quiesced
    total = sum(emitted)
    stats = engine.stats
    runtime = engine.runtime
    assert total > 0 and service.calls > 0
    # no lost detections: every emitted event was admitted, and every
    # admitted detection ended in exactly one terminal state
    assert runtime.submitted == total
    assert stats["detections"] == total
    assert stats["completed"] + stats["failed"] == total
    assert runtime.completed + runtime.errors == total
    assert runtime.errors == 0              # failures are contained per
    assert stats["failed"] >= 0             # instance, never thrown at
    assert runtime.dropped == 0             # the pool or shed silently
    assert runtime.rejected == 0


def test_stress_smoke():
    """Always-on short soak: a few seconds, full accounting."""
    _soak(duration=2.0)


@pytest.mark.skipif(os.environ.get("RUNTIME_STRESS") != "1",
                    reason="30s soak only runs with RUNTIME_STRESS=1")
def test_stress_soak_30s():
    _soak(duration=30.0)
