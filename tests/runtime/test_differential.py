"""Zero semantic drift: sync engine vs 1-, 2-, 4-worker runtime.

The acceptance oracle of the concurrent runtime (ISSUE 5): for the
same seeded workload, the sorted set of externally visible action
effects must be *identical* across the synchronous engine and every
worker count.  Concurrency may reorder execution, never change what
is executed.
"""

import pytest

from repro.domain import WorkloadConfig
from repro.runtime import Runtime

from .harness import run_workload

WORKER_COUNTS = (1, 2, 4)
EVENTS = 20


def _config(seed: int) -> WorkloadConfig:
    return WorkloadConfig(persons=10, fleet_size=8, cities=3, seed=seed)


@pytest.mark.parametrize("seed", range(10))
def test_sync_vs_concurrent_effects_identical(seed):
    config = _config(seed)
    baseline = run_workload(config, EVENTS)
    assert baseline, "oracle produced no effects — workload is broken"
    for workers in WORKER_COUNTS:
        concurrent = run_workload(
            config, EVENTS, runtime=Runtime(workers=workers))
        assert concurrent == baseline, (
            f"seed {seed}, {workers} workers: effects diverged")


def test_batched_dispatch_preserves_effects():
    """Batching on top of the pool must not change semantics either."""
    config = _config(42)
    baseline = run_workload(config, EVENTS)
    batched = run_workload(
        config, EVENTS,
        runtime=Runtime(workers=4, batching=True, batch_window=0.01))
    assert batched == baseline
