"""Batched GRH dispatch: envelope codec, transports, fan-back, errors."""

import threading
import time

import pytest

from repro.bindings import Relation, relation_to_answers
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry, error_message, ok_message)
from repro.grh.messages import (MessageError, Request, batch_results_to_xml,
                                batch_to_xml, is_batch, request_to_xml,
                                xml_to_batch, xml_to_batch_results)
from repro.runtime import DispatchBatcher, Runtime
from repro.services import (HttpServiceServer, HttpTransport,
                            HybridTransport, InProcessTransport)
from repro.services.transports import handle_batch
from repro.xmlmodel import parse, serialize


def _request(n: int, kind: str = "query") -> "Request":
    return Request(kind, f"c{n}", None, Relation([{"N": str(n)}]))


def _payloads(count: int):
    return [request_to_xml(_request(n)) for n in range(count)]


class TestBatchCodec:
    def test_roundtrip_through_serialization(self):
        envelope = batch_to_xml(_payloads(3))
        assert is_batch(envelope)
        parsed = parse(serialize(envelope))
        children = xml_to_batch(parsed)
        assert len(children) == 3
        assert [child.get("id") for child in children] == ["c0", "c1", "c2"]

    def test_batch_count_mismatch_rejected(self):
        envelope = batch_to_xml(_payloads(2))
        envelope.attributes[next(iter(envelope.attributes))] = "5"
        with pytest.raises(MessageError):
            xml_to_batch(parse(serialize(envelope)))

    def test_batch_rejects_non_request_children(self):
        envelope = batch_to_xml([ok_message()])
        with pytest.raises(MessageError):
            xml_to_batch(envelope)

    def test_results_roundtrip_positional(self):
        results = [relation_to_answers(Relation([{"Q": "a"}])),
                   error_message("slot two failed"),
                   ok_message()]
        wire = parse(serialize(batch_results_to_xml(results)))
        back = xml_to_batch_results(wire, expected=3)
        assert len(back) == 3
        assert back[1].name.local == "error"

    def test_results_expected_count_enforced(self):
        wire = batch_results_to_xml([ok_message()])
        with pytest.raises(MessageError):
            xml_to_batch_results(wire, expected=2)


class TestHandleBatchShim:
    def test_per_request_failure_is_scoped(self):
        def handler(request):
            if request.get("id") == "c1":
                raise RuntimeError("slot exploded")
            return ok_message()

        response = handle_batch(handler, batch_to_xml(_payloads(3)))
        results = xml_to_batch_results(response, expected=3)
        assert results[0].name.local == "ok"
        assert results[1].name.local == "error"
        assert "slot exploded" in results[1].text()
        assert results[2].name.local == "ok"


class TestTransportBatchSupport:
    def test_in_process_send_batch(self):
        transport = InProcessTransport()
        transport.bind("svc:q", lambda request: ok_message())
        assert transport.supports_batch("svc:q")
        assert not transport.supports_batch("svc:unknown")
        response = transport.send_batch("svc:q", batch_to_xml(_payloads(2)))
        assert len(xml_to_batch_results(response, expected=2)) == 2

    def test_http_server_unwraps_batch(self):
        calls = []

        def handler(request):
            calls.append(request.get("id"))
            return relation_to_answers(Relation([{"Q": request.get("id")}]))

        server = HttpServiceServer(aware_handler=handler)
        url = server.start()
        try:
            transport = HttpTransport(timeout=5.0)
            assert transport.supports_batch(url)
            response = transport.send_batch(url, batch_to_xml(_payloads(3)))
        finally:
            server.stop()
        results = xml_to_batch_results(response, expected=3)
        assert calls == ["c0", "c1", "c2"]       # one POST, three handles
        assert all(r.name.local == "answers" for r in results)

    def test_hybrid_routes_batches_both_ways(self):
        transport = HybridTransport()
        transport.bind("svc:local", lambda request: ok_message())
        assert transport.supports_batch("svc:local")
        response = transport.send_batch("svc:local",
                                        batch_to_xml(_payloads(1)))
        assert len(xml_to_batch_results(response, expected=1)) == 1


class _CountingService:
    """Aware query service that records how it was invoked."""

    def __init__(self):
        self.lock = threading.Lock()
        self.handled = 0

    def handle(self, request):
        with self.lock:
            self.handled += 1
        return relation_to_answers(
            Relation([{"Q": f"answer-{request.get('id')}"}]))


class TestDispatchBatcher:
    def _grh_over_http(self, service):
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, HybridTransport(timeout=5.0))
        server = HttpServiceServer(aware_handler=service.handle)
        url = server.start()
        grh.add_remote_language(
            LanguageDescriptor("urn:test:batchq", "query", "batchq"), url)
        descriptor = registry.lookup("urn:test:batchq")
        return grh, server, descriptor, url

    def test_concurrent_submits_coalesce(self):
        service = _CountingService()
        grh, server, descriptor, url = self._grh_over_http(service)
        batcher = DispatchBatcher(grh, window=0.05, max_batch=8)
        results = {}

        def submit(n):
            payload = request_to_xml(_request(n))
            results[n] = batcher.submit(url, descriptor, payload)

        try:
            threads = [threading.Thread(target=submit, args=(n,))
                       for n in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
        finally:
            batcher.stop()
            server.stop()
        assert service.handled == 6
        assert batcher.batches < 6          # at least some coalescing
        assert batcher.batched_requests == 6
        # positional fan-back: each caller got exactly its own answer
        for n, answer in results.items():
            assert f"answer-c{n}" in serialize(answer)

    def test_max_batch_forces_immediate_flush(self):
        service = _CountingService()
        grh, server, descriptor, url = self._grh_over_http(service)
        batcher = DispatchBatcher(grh, window=60.0, max_batch=2)
        results = []

        def submit(n):
            results.append(
                batcher.submit(url, descriptor,
                               request_to_xml(_request(n))))

        try:
            threads = [threading.Thread(target=submit, args=(n,))
                       for n in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)  # would hang for 60s without size flush
        finally:
            batcher.stop()
            server.stop()
        assert len(results) == 2
        assert batcher.size_flushes == 1

    def test_envelope_failure_is_scoped_per_caller(self):
        """Regression: a whole-envelope failure handed the *same*
        exception object to every parked caller; concurrent re-raises
        mutated its ``__traceback__`` racily.  Each caller now gets its
        own copy, chained to the shared envelope failure."""
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, HybridTransport(timeout=0.5))
        address = "http://127.0.0.1:9/down"      # nothing listens here
        grh.add_remote_language(
            LanguageDescriptor("urn:test:downq", "query", "downq"), address)
        descriptor = registry.lookup("urn:test:downq")
        batcher = DispatchBatcher(grh, window=60.0, max_batch=2)
        errors = {}

        def submit(n):
            try:
                batcher.submit(address, descriptor,
                               request_to_xml(_request(n)))
            except BaseException as exc:
                errors[n] = exc

        try:
            threads = [threading.Thread(target=submit, args=(n,))
                       for n in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
        finally:
            batcher.stop()
        assert set(errors) == {0, 1}
        assert errors[0] is not errors[1]            # distinct objects
        assert type(errors[0]) is type(errors[1])
        # both chain back to the one envelope failure
        assert errors[0].__cause__ is errors[1].__cause__
        assert errors[0].__cause__ is not None

    def test_engine_batched_query_equivalence(self):
        """The same HTTP workload with and without batching yields the
        same effects, and batching actually reduces POST round-trips."""
        from repro.actions import ACTION_NS, ActionRuntime
        from repro.core import ECAEngine
        from repro.conditions import TEST_NS
        from repro.events import ATOMIC_NS, EventStream
        from repro.services import (ActionExecutionService,
                                    AtomicEventService, TestLanguageService,
                                    XQ_LANG, XQService)
        from repro.domain import (WorkloadConfig, booking_payloads,
                                  synthetic_persons)
        from repro.xmlmodel import ECA_NS

        def run(runtime):
            config = WorkloadConfig(persons=8, fleet_size=6, cities=2)
            registry = LanguageRegistry()
            grh = GenericRequestHandler(registry,
                                        HybridTransport(timeout=5.0))
            stream = EventStream()
            actions = ActionRuntime(event_stream=stream)
            atomic = AtomicEventService(grh.notify)
            atomic.attach(stream)
            grh.add_service(
                LanguageDescriptor(ATOMIC_NS, "event", "atomic"), atomic)
            grh.add_service(
                LanguageDescriptor(TEST_NS, "test", "test"),
                TestLanguageService())
            grh.add_service(
                LanguageDescriptor(ACTION_NS, "action", "actions"),
                ActionExecutionService(actions))
            xq = XQService({"persons.xml": synthetic_persons(config)})
            server = HttpServiceServer(aware_handler=xq.handle)
            url = server.start()
            grh.add_remote_language(
                LanguageDescriptor(XQ_LANG, "query", "xquery-lite"), url)
            engine = ECAEngine(grh, runtime=runtime)
            from repro.domain.workload import TRAVEL_NS
            engine.register_rule(f"""
            <eca:rule xmlns:eca="{ECA_NS}" id="q">
              <eca:event>
                <travel:booking xmlns:travel="{TRAVEL_NS}"
                                person="{{Person}}" to="{{To}}"/>
              </eca:event>
              <eca:variable name="Car">
                <eca:query>
                  <xq:xquery xmlns:xq="{XQ_LANG}">
                    for $c in doc('persons.xml')
                        //person[@name = $Person]/car
                    return $c/model/text()
                  </xq:xquery>
                </eca:query>
              </eca:variable>
              <eca:action>
                <act:send xmlns:act="{ACTION_NS}" to="out">
                  <owns person="{{Person}}" car="{{Car}}"/>
                </act:send>
              </eca:action>
            </eca:rule>""")
            try:
                for payload in booking_payloads(config, 12):
                    stream.emit(payload)
                assert engine.drain(30)
            finally:
                engine.shutdown(10)
                server.stop()
            effects = sorted(serialize(m.content)
                             for m in actions.messages("out"))
            return effects, xq

        plain_effects, _ = run(Runtime(workers=4))
        batched_runtime = Runtime(workers=4, batching=True,
                                  batch_window=0.02, max_batch=8)
        batched_effects, _ = run(batched_runtime)
        assert batched_effects == plain_effects
        assert batched_runtime.batcher is None  # detached on shutdown


class TestCounterIntegrity:
    """The ISSUE 6 regression: lifetime counters were incremented
    without the lock from submitters and the flusher concurrently,
    losing increments under contention."""

    def test_concurrent_submit_hammer_counts_exactly(self):
        service = _CountingService()
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, HybridTransport(timeout=10.0))
        server = HttpServiceServer(aware_handler=service.handle)
        url = server.start()
        grh.add_remote_language(
            LanguageDescriptor("urn:test:hammer", "query", "hammer"), url)
        descriptor = registry.lookup("urn:test:hammer")
        batcher = DispatchBatcher(grh, window=0.002, max_batch=4)
        total = 96
        errors = []

        def submit(n):
            try:
                batcher.submit(url, descriptor, request_to_xml(_request(n)))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        try:
            threads = [threading.Thread(target=submit, args=(n,))
                       for n in range(total)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
        finally:
            batcher.stop()
            server.stop()
        assert not errors
        assert service.handled == total
        counters = batcher.counters()
        # every request travelled in exactly one flushed envelope; a
        # lost increment shows up as a short count here
        assert counters["batched_requests"] == total
        assert counters["batches"] >= counters["size_flushes"]
        assert counters["batches"] * 4 >= total


class _SpyBatchTransport(InProcessTransport):
    """Records the timeout each envelope was shipped with."""

    def __init__(self):
        super().__init__()
        self.batch_timeouts = []

    def send_batch(self, address, envelope, timeout=None):
        self.batch_timeouts.append(timeout)
        return super().send_batch(address, envelope, timeout)


class TestEnvelopeTimeoutScaling:
    """PROTOCOL.md §10: a deep envelope gets one per-request budget per
    entry, capped at max_timeout_scale — not a single request's."""

    def _world(self, per_request_timeout, **batcher_kwargs):
        from repro.grh import ResilienceManager, RetryPolicy
        registry = LanguageRegistry()
        transport = _SpyBatchTransport()
        grh = GenericRequestHandler(
            registry, transport,
            resilience=ResilienceManager(
                retry=RetryPolicy(timeout=per_request_timeout)))
        address = transport.bind("svc:scale", lambda m: handle_batch(
            lambda r: relation_to_answers(Relation([{"Q": "ok"}])), m)
            if is_batch(m) else relation_to_answers(Relation([{"Q": "ok"}])))
        grh.add_remote_language(
            LanguageDescriptor("urn:test:scale", "query", "scale"), address)
        descriptor = registry.lookup("urn:test:scale")
        batcher = DispatchBatcher(grh, window=2.0, **batcher_kwargs)
        return transport, batcher, descriptor, address

    def _submit_n(self, batcher, address, descriptor, n, flush_at=None):
        threads = [threading.Thread(
            target=batcher.submit,
            args=(address, descriptor, request_to_xml(_request(i))))
            for i in range(n)]
        for thread in threads:
            thread.start()
        if flush_at is not None:
            # a partial bucket never size-flushes: wait until every
            # submitter is parked, then force the flush ourselves
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with batcher._lock:
                    bucket = batcher._buckets.get(address)
                    parked = len(bucket.entries) if bucket else 0
                if parked >= flush_at:
                    break
                time.sleep(0.005)
            batcher.flush()
        for thread in threads:
            thread.join(10)

    def test_full_envelope_scales_to_the_cap(self):
        transport, batcher, descriptor, address = self._world(
            0.5, max_batch=8, max_timeout_scale=4)
        try:
            self._submit_n(batcher, address, descriptor, 8)
        finally:
            batcher.stop()
        # 8 entries, cap 4: 0.5s/request -> 2.0s for the envelope
        assert transport.batch_timeouts == [pytest.approx(2.0)]

    def test_small_envelope_scales_linearly(self):
        transport, batcher, descriptor, address = self._world(
            0.5, max_batch=8, max_timeout_scale=4)
        try:
            self._submit_n(batcher, address, descriptor, 2, flush_at=2)
        finally:
            batcher.stop()
        assert transport.batch_timeouts == [pytest.approx(1.0)]

    def test_no_policy_timeout_means_no_deadline(self):
        transport, batcher, descriptor, address = self._world(
            None, max_batch=4)
        try:
            self._submit_n(batcher, address, descriptor, 4)
        finally:
            batcher.stop()
        assert transport.batch_timeouts == [None]

    def test_rejects_bad_scale(self):
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, InProcessTransport())
        with pytest.raises(ValueError):
            DispatchBatcher(grh, max_timeout_scale=0)
