"""Dead-letter replay is deterministic under concurrent parking."""

import threading

from repro.core import ECAEngine
from repro.grh import LanguageDescriptor, error_message
from repro.grh.resilience import DeadLetter, DeadLetterQueue
from repro.runtime import Runtime
from repro.services import standard_deployment
from repro.bindings import Relation, relation_to_answers

from .harness import build_world
from repro.domain import WorkloadConfig, booking_payloads
from repro.domain.workload import TRAVEL_NS, simple_rule_markup
from repro.grh.messages import Detection
from repro.xmlmodel import ECA_NS


def _letter(n: int) -> DeadLetter:
    return DeadLetter(kind="detection", error=f"e{n}", attempts=1)


class TestDeadLetterQueueOrdering:
    def test_seq_stamped_in_append_order(self):
        queue = DeadLetterQueue()
        for n in range(5):
            queue.append(_letter(n))
        assert [letter.seq for letter in queue] == [1, 2, 3, 4, 5]

    def test_drain_returns_journal_sequence_order(self):
        queue = DeadLetterQueue()
        for n in range(8):
            queue.append(_letter(n))
        drained = queue.drain()
        assert [letter.seq for letter in drained] == list(range(1, 9))

    def test_concurrent_parking_yields_consistent_replay_order(self):
        """However the racing appends interleave, drain order always
        equals seq order, and journal hooks fired in the same order."""
        queue = DeadLetterQueue()
        journal_order = []
        queue.on_append = lambda letter: journal_order.append(letter.seq)
        threads = [threading.Thread(
            target=lambda base=base: [queue.append(_letter(base + n))
                                      for n in range(25)])
            for base in (0, 100, 200, 300)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5)
        assert len(queue) == 100
        # the journal saw seqs in stamping order (the queue's hook lock
        # spans stamp + hook, so the orders cannot diverge)
        assert journal_order == sorted(journal_order)
        drained = queue.drain()
        assert [letter.seq for letter in drained] == sorted(
            letter.seq for letter in drained)

    def test_restore_preserves_recovered_order(self):
        queue = DeadLetterQueue()
        fired = []
        queue.on_append = lambda letter: fired.append(letter)
        letters = [_letter(n) for n in range(4)]
        queue.restore(letters)
        assert not fired                       # hooks bypassed
        assert [letter.seq for letter in queue.drain()] == [1, 2, 3, 4]

    def test_overflow_still_drops_oldest(self):
        queue = DeadLetterQueue(max_size=3)
        for n in range(5):
            queue.append(_letter(n))
        assert queue.dropped == 2
        assert [letter.seq for letter in queue.drain()] == [3, 4, 5]


class TestReplayAttribution:
    def test_replay_captures_its_own_instance_not_a_concurrent_one(self):
        """Regression: the replay observer used to capture the first
        instance created by ANY thread; an instance a runtime worker
        created for an unrelated detection mid-replay was mis-attributed
        to the letter.  The observer now matches the exact detection
        object being replayed."""
        deployment, engine = build_world(None)
        engine.register_rule(simple_rule_markup("replayed"))
        engine.register_rule(simple_rule_markup("bystander"))
        bindings = Relation([{"Person": "alice", "To": "oslo"}])
        target = Detection("replayed::event", 0.0, 1.0, bindings,
                           detection_id="dT")
        other = Detection("bystander::event", 0.0, 1.0, bindings,
                          detection_id="dO")
        original = engine._handle

        def interleaving(detection):
            if detection is target:
                # simulate a concurrent worker creating an unrelated
                # instance while the replay's detection is being handled
                original(other)
            original(detection)

        engine._handle = interleaving
        instance = engine._replay_detection(target)
        assert instance is not None
        assert instance.rule_id == "replayed"


FLAKY_LANG = "urn:test:replay-flaky"


class _SwitchableService:
    """Fails every query until ``healthy`` flips to True."""

    def __init__(self):
        self.healthy = False

    def handle(self, message):
        if not self.healthy:
            return error_message("down for maintenance")
        return relation_to_answers(Relation([{"Q": "up"}]))


class TestReplayUnderRuntime:
    def test_concurrent_failures_replay_deterministically(self):
        deployment, engine = build_world(Runtime(workers=4))
        service = _SwitchableService()
        deployment.grh.add_service(
            LanguageDescriptor(FLAKY_LANG, "query", "replay-flaky"),
            service)
        engine.register_rule(f"""
        <eca:rule xmlns:eca="{ECA_NS}" id="flaky">
          <eca:event>
            <travel:booking xmlns:travel="{TRAVEL_NS}"
                            person="{{Person}}" to="{{To}}"/>
          </eca:event>
          <eca:query><q xmlns="{FLAKY_LANG}">whatever</q></eca:query>
          <eca:action><out q="{{Q}}"/></eca:action>
        </eca:rule>""")
        try:
            for payload in booking_payloads(WorkloadConfig(seed=3), 10):
                deployment.stream.emit(payload)
            assert engine.drain(30)
            assert engine.stats["failed"] == 10
            letters = list(deployment.grh.resilience.dead_letters)
            assert len(letters) == 10
            # parked from racing workers, yet seq is a total order and
            # iteration respects arrival
            assert sorted(letter.seq for letter in letters) == \
                [letter.seq for letter in letters]
            service.healthy = True
            summary = engine.replay_dead_letters()
        finally:
            engine.shutdown(5)
        assert summary["replayed"] == 10
        assert summary["succeeded"] == 10
        assert len(deployment.grh.resilience.dead_letters) == 0
