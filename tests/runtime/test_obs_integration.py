"""Observability over the concurrent runtime: metrics, probes, views."""

from repro.obs import Observability
from repro.obs.ops import INTROSPECTION_ROUTES, IntrospectionSurface
from repro.runtime import Runtime

from .harness import build_world, run_workload
from repro.domain import WorkloadConfig


def _observed_world(runtime):
    obs = Observability()
    deployment, engine = build_world(runtime, observability=obs)
    return deployment, engine, obs


class TestRuntimeMetrics:
    def test_pool_metrics_render(self):
        _, engine, obs = _observed_world(Runtime(workers=2))
        try:
            text = obs.render_prometheus()
        finally:
            engine.shutdown(5)
        assert "eca_runtime_queue_depth" in text
        assert "eca_runtime_worker_utilization" in text
        assert 'eca_runtime_accepting 1' in text
        assert 'outcome="submitted"' in text

    def test_batcher_metrics_register_when_batching(self):
        # regression: runtime.attach() must run before obs.install()
        # or the batcher gauge block never fires
        _, engine, obs = _observed_world(Runtime(workers=2, batching=True))
        try:
            text = obs.render_prometheus()
        finally:
            engine.shutdown(5)
        assert "eca_runtime_batches_total" in text
        assert "eca_runtime_batched_requests_total" in text

    def test_queue_wait_histogram_observes_real_work(self):
        obs = Observability()
        effects = run_workload(WorkloadConfig(seed=7), 10,
                               runtime=Runtime(workers=2),
                               observability=obs)
        assert effects
        text = obs.render_prometheus()
        assert "eca_runtime_queue_wait_seconds_count" in text
        count = [line for line in text.splitlines()
                 if line.startswith("eca_runtime_queue_wait_seconds_count")]
        assert count and float(count[0].split()[-1]) > 0


class TestRuntimeAdminSurface:
    def test_route_is_registered(self):
        assert "/introspect/runtime" in INTROSPECTION_ROUTES

    def test_runtime_view_sync_engine(self):
        _, engine = build_world()
        assert IntrospectionSurface(engine).runtime() == \
            {"concurrent": False}

    def test_runtime_view_concurrent_engine(self):
        _, engine, _ = _observed_world(
            Runtime(workers=3, queue_capacity=64, batching=True))
        try:
            status, view = IntrospectionSurface(engine).handle(
                "/introspect/runtime")
        finally:
            engine.shutdown(5)
        assert status == 200
        assert view["concurrent"] is True
        assert view["workers"] == 3
        assert view["queue_capacity"] == 64
        assert view["backpressure"] == "block"
        assert len(view["queue_depths"]) == 3
        assert len(view["utilization"]) == 3
        assert "submitted" in view["counters"]
        assert "batches" in view["batcher"]

    def test_readyz_reflects_admission_gate(self):
        _, engine, _ = _observed_world(Runtime(workers=2))
        surface = IntrospectionSurface(engine)
        status, payload = surface.readyz()
        assert status == 200
        assert payload["checks"]["runtime_accepting"] is True
        engine.shutdown(5)
        status, payload = surface.readyz()
        assert status == 503
        assert payload["checks"]["runtime_accepting"] is False
