"""The sharded worker pool: lifecycle, sharding, ordering, quiesce."""

import threading
import time

import pytest

from repro.core import ECAEngine
from repro.core.engine import _DetectionQueue
from repro.grh.messages import Detection
from repro.bindings import Relation
from repro.runtime import Runtime
from repro.services import standard_deployment

from .harness import build_world
from repro.domain import WorkloadConfig, booking_payloads
from repro.domain.workload import simple_rule_markup


def _emit_bookings(deployment, count, seed=0):
    for payload in booking_payloads(WorkloadConfig(seed=seed), count):
        deployment.stream.emit(payload)


def _detection(n: int, component: str = "c1") -> Detection:
    return Detection(component, 0.0, 1.0, Relation([{"N": str(n)}]),
                     detection_id=f"d{n}")


class TestRuntimeConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Runtime(workers=0)
        with pytest.raises(ValueError):
            Runtime(queue_capacity=0)
        with pytest.raises(ValueError):
            Runtime(backpressure="drop-newest")

    def test_attach_is_exclusive(self):
        deployment, engine = build_world(Runtime(workers=1))
        try:
            other = standard_deployment()
            with pytest.raises(RuntimeError):
                ECAEngine(other.grh, runtime=engine.runtime)
        finally:
            engine.shutdown(5)

    def test_default_engine_has_no_runtime(self):
        deployment, engine = build_world()
        assert engine.runtime is None
        assert engine.drain(1) is True      # sync drain still works
        assert engine.shutdown(1) is True   # and shutdown is a no-op


class TestConcurrentExecution:
    def test_detections_execute_on_worker_threads(self):
        seen = []
        deployment, engine = build_world(Runtime(workers=2))
        try:
            engine.register_rule(simple_rule_markup("r1"))
            original = engine._handle

            def spy(detection):
                seen.append(threading.current_thread().name)
                original(detection)

            engine._handle = spy
            _emit_bookings(deployment, 8)
            assert engine.drain(10)
        finally:
            engine.shutdown(5)
        assert len(seen) == 8
        assert all(name.startswith("eca-runtime-") for name in seen)

    def test_instances_run_in_parallel(self):
        """Two slow instances on different shards overlap in time."""
        deployment, engine = build_world(Runtime(workers=4))
        barrier = threading.Barrier(2, timeout=5)
        import itertools
        entries = itertools.count(1)
        original = engine._handle

        def slow(detection):
            # only the first two arrivals synchronize: the first blocks
            # in the barrier, so the second can only come from another
            # worker — a genuine cross-shard overlap.  Later detections
            # pass straight through (shard assignment is hash-random;
            # making *every* call wait deadlocked on uneven splits,
            # e.g. three detections on one shard running serially)
            if next(entries) <= 2:
                barrier.wait()
            original(detection)

        engine._handle = slow
        try:
            engine.register_rule(simple_rule_markup("r1"))
            _emit_bookings(deployment, 8)
            assert engine.drain(10)
        finally:
            engine.shutdown(5)
        assert not barrier.broken        # the overlap actually happened
        assert engine.stats["completed"] == 8

    def test_same_detection_id_lands_on_same_shard(self):
        runtime = Runtime(workers=4)
        detection = _detection(7)
        shards = {runtime._shard_of(detection) for _ in range(20)}
        assert len(shards) == 1

    def test_worker_survives_handler_exception(self):
        deployment, engine = build_world(Runtime(workers=1))
        try:
            engine.register_rule(simple_rule_markup("r1"))
            original = engine._handle
            calls = []

            def explode_once(detection):
                calls.append(1)
                if len(calls) == 1:
                    raise RuntimeError("boom (simulated)")
                original(detection)

            engine._handle = explode_once
            _emit_bookings(deployment, 2)
            assert engine.drain(10)
        finally:
            engine.shutdown(5)
        assert engine.runtime.errors == 1
        assert isinstance(engine.runtime.last_error, RuntimeError)
        assert engine.stats["completed"] == 1  # the second one still ran

    def test_shutdown_falls_back_to_synchronous_path(self):
        deployment, engine = build_world(Runtime(workers=2))
        engine.register_rule(simple_rule_markup("r1"))
        _emit_bookings(deployment, 1)
        assert engine.shutdown(10)
        assert not engine.runtime.running
        _emit_bookings(deployment, 1, seed=1)
        assert engine.stats["completed"] == 2

    def test_batch_context_quiesces_runtime(self):
        deployment, engine = build_world(Runtime(workers=2))
        try:
            engine.register_rule(simple_rule_markup("r1"))
            with engine.batch():
                _emit_bookings(deployment, 6)
            # post-condition of batch(): all triggered rules have run
            assert engine.stats["completed"] == 6
        finally:
            engine.shutdown(5)


class TestMonitoringSurface:
    def test_counters_and_depths(self):
        deployment, engine = build_world(Runtime(workers=2))
        try:
            engine.register_rule(simple_rule_markup("r1"))
            _emit_bookings(deployment, 5)
            assert engine.drain(10)
            counters = engine.runtime.counters()
            assert counters["submitted"] == 5
            assert counters["completed"] == 5
            assert counters["queued"] == 0 and counters["active"] == 0
            assert engine.runtime.queue_depths() == [0, 0]
            assert len(engine.runtime.utilization()) == 2
        finally:
            engine.shutdown(5)

    def test_queue_wait_hook_fires(self):
        waits = []
        runtime = Runtime(workers=1)
        runtime.on_wait = waits.append
        deployment, engine = build_world(runtime)
        try:
            engine.register_rule(simple_rule_markup("r1"))
            _emit_bookings(deployment, 1)
            assert engine.drain(10)
        finally:
            engine.shutdown(5)
        assert len(waits) == 1 and waits[0] >= 0.0


class TestDetectionQueueConcurrency:
    def test_concurrent_push_pop_loses_nothing(self):
        queue = _DetectionQueue()
        total = 400
        popped = []
        lock = threading.Lock()

        def producer(base):
            for n in range(base, base + 100):
                queue.push(n % 3, _detection(n))

        def consumer():
            while True:
                detection = queue.wait(timeout=0.5)
                if detection is None:
                    return
                with lock:
                    popped.append(detection.detection_id)

        producers = [threading.Thread(target=producer, args=(i * 100,))
                     for i in range(4)]
        consumers = [threading.Thread(target=consumer) for _ in range(3)]
        for thread in producers + consumers:
            thread.start()
        for thread in producers:
            thread.join(5)
        for thread in consumers:
            thread.join(5)
        assert sorted(popped) == sorted(f"d{n}" for n in range(total))

    def test_shed_removes_oldest_of_lowest_priority(self):
        queue = _DetectionQueue()
        queue.push(5, _detection(1))
        queue.push(0, _detection(2))
        queue.push(0, _detection(3))
        victim = queue.shed()
        assert victim.detection_id == "d2"
        assert len(queue) == 2
        # remaining pops still come out priority-first
        assert queue.pop().detection_id == "d1"
        assert queue.pop().detection_id == "d3"

    def test_shed_empty_returns_none(self):
        assert _DetectionQueue().shed() is None

    def test_wait_times_out(self):
        queue = _DetectionQueue()
        start = time.monotonic()
        assert queue.wait(timeout=0.05) is None
        assert time.monotonic() - start >= 0.04
