"""The per-shard in-flight window (Runtime(inflight=N), PROTOCOL §11).

Two families of guarantees:

* semantics — the differential oracle (sync vs windowed effects) and
  the §10 per-source ordering contract must survive ``inflight > 1``;
* mechanics — same-shard overlap actually happens, chained detections
  do not deadlock, lanes shield the pool, drain sees windowed work.
"""

import random
import threading
import time

import pytest

from repro.bindings import Relation
from repro.domain import WorkloadConfig
from repro.grh.messages import Detection
from repro.runtime import Runtime

from .harness import run_workload

EVENTS = 20


def _config(seed: int) -> WorkloadConfig:
    return WorkloadConfig(persons=10, fleet_size=8, cities=3, seed=seed)


def _detection(n: int, key: str) -> Detection:
    return Detection("c1", 0.0, 1.0, Relation([{"N": str(n)}]),
                     detection_id=key)


class _StubEngine:
    """Just enough engine for Runtime.attach: records handle order."""

    grh = None
    durability = None

    def __init__(self, tags, delay=0.0, jitter=0.0, seed=0):
        #: id(detection) -> (source key, sequence number)
        self.tags = tags
        self.delay = delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self.lock = threading.Lock()
        self.order: dict[str, list[int]] = {}
        self.concurrent = 0
        self.max_concurrent = 0

    def _handle(self, detection):
        with self.lock:
            self.concurrent += 1
            self.max_concurrent = max(self.max_concurrent, self.concurrent)
            pause = self.delay + self._rng.random() * self.jitter
        if pause:
            time.sleep(pause)
        key, seq = self.tags[id(detection)]
        with self.lock:
            self.order.setdefault(key, []).append(seq)
            self.concurrent -= 1

    def _discard(self, detection):
        pass


def _windowed_runtime(engine, **kwargs):
    runtime = Runtime(**kwargs)
    runtime.attach(engine)
    return runtime


class TestConstruction:
    def test_rejects_bad_inflight(self):
        with pytest.raises(ValueError):
            Runtime(inflight=0)

    def test_monitoring_shapes(self):
        tags = {}
        engine = _StubEngine(tags)
        runtime = _windowed_runtime(engine, workers=3, inflight=2)
        try:
            assert runtime.inflight_depths() == [0, 0, 0]
            assert runtime.counters()["inflight"] == 0
        finally:
            runtime.shutdown(5)


class TestDifferentialWithWindow:
    """ISSUE 6 acceptance: seeds 0-9, sync vs inflight-windowed."""

    @pytest.mark.parametrize("seed", range(10))
    def test_sync_vs_windowed_effects_identical(self, seed):
        config = _config(seed)
        baseline = run_workload(config, EVENTS)
        assert baseline, "oracle produced no effects — workload is broken"
        windowed = run_workload(
            config, EVENTS, runtime=Runtime(workers=2, inflight=4))
        assert windowed == baseline, (
            f"seed {seed}: effects diverged with the in-flight window")

    def test_batching_plus_window_preserves_effects(self):
        config = _config(42)
        baseline = run_workload(config, EVENTS)
        combined = run_workload(
            config, EVENTS,
            runtime=Runtime(workers=2, inflight=4, batching=True,
                            batch_window=0.01))
        assert combined == baseline


class TestPerSourceOrdering:
    def test_same_source_detections_run_in_submit_order(self):
        """200 detections over 4 source keys, hammered with jittered
        handler latency: each key's sequence must come out exactly in
        submit order even though distinct keys overlap freely."""
        tags = {}
        engine = _StubEngine(tags, delay=0.001, jitter=0.004)
        runtime = _windowed_runtime(engine, workers=2, inflight=8,
                                    queue_capacity=512)
        keys = [f"k{i}" for i in range(4)]
        expected = {key: [] for key in keys}
        try:
            for n in range(200):
                key = keys[n % len(keys)]
                detection = _detection(n, key)
                tags[id(detection)] = (key, n)
                expected[key].append(n)
                runtime.submit(detection)
            assert runtime.drain(30)
        finally:
            runtime.shutdown(5)
        assert engine.order == expected
        # the window was real: distinct sources overlapped
        assert engine.max_concurrent > 1

    def test_single_shard_overlaps_distinct_sources(self):
        """workers=1, inflight=2: two different sources overlap on ONE
        shard — the capability the classic one-thread path lacks."""
        tags = {}
        engine = _StubEngine(tags)
        barrier = threading.Barrier(2, timeout=5)
        inner = engine._handle

        def rendezvous(detection):
            barrier.wait()
            inner(detection)

        engine._handle = rendezvous
        runtime = _windowed_runtime(engine, workers=1, inflight=2)
        try:
            for n, key in enumerate(("a", "b")):
                detection = _detection(n, key)
                tags[id(detection)] = (key, n)
                runtime.submit(detection)
            assert runtime.drain(10)
        finally:
            runtime.shutdown(5)
        assert not barrier.broken       # both lanes arrived concurrently


class TestWindowMechanics:
    def test_chained_submit_from_lane_does_not_deadlock(self):
        """A handler that submits a follow-up detection runs on a lane
        thread; the chained-detection admission bypass must recognize
        lanes as workers even at queue_capacity=1."""
        tags = {}
        engine = _StubEngine(tags)
        inner = engine._handle
        runtime_holder = {}

        def chaining(detection):
            key, seq = tags[id(detection)]
            if key == "root":
                follow = _detection(seq + 1, "chained")
                tags[id(follow)] = ("chained", seq + 1)
                runtime_holder["rt"].submit(follow)
            inner(detection)

        engine._handle = chaining
        runtime = _windowed_runtime(engine, workers=1, inflight=2,
                                    queue_capacity=1)
        runtime_holder["rt"] = runtime
        try:
            root = _detection(0, "root")
            tags[id(root)] = ("root", 0)
            runtime.submit(root)
            assert runtime.drain(10)
        finally:
            runtime.shutdown(5)
        assert engine.order == {"root": [0], "chained": [1]}

    def test_lane_survives_handler_exception(self):
        tags = {}
        engine = _StubEngine(tags)
        inner = engine._handle
        calls = []

        def explode_once(detection):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("boom (simulated)")
            inner(detection)

        engine._handle = explode_once
        runtime = _windowed_runtime(engine, workers=1, inflight=2)
        try:
            for n in range(2):
                detection = _detection(n, f"k{n}")
                tags[id(detection)] = (f"k{n}", n)
                runtime.submit(detection)
            assert runtime.drain(10)
        finally:
            runtime.shutdown(5)
        assert runtime.errors == 1
        assert runtime.completed == 1
        assert isinstance(runtime.last_error, RuntimeError)

    def test_drain_waits_for_windowed_work(self):
        tags = {}
        engine = _StubEngine(tags, delay=0.05)
        runtime = _windowed_runtime(engine, workers=2, inflight=4)
        try:
            for n in range(16):
                detection = _detection(n, f"k{n}")
                tags[id(detection)] = (f"k{n}", n)
                runtime.submit(detection)
            assert runtime.drain(30)
            counters = runtime.counters()
            assert counters["completed"] == 16
            assert counters["inflight"] == 0
            assert runtime.inflight_depths() == [0, 0]
        finally:
            runtime.shutdown(5)

    def test_permits_bound_popped_work(self):
        """With every source blocked behind one executing key, the
        dispatcher must stop popping at the permit bound instead of
        draining the whole queue into memory."""
        tags = {}
        engine = _StubEngine(tags)
        release = threading.Event()
        started = threading.Event()
        inner = engine._handle

        def gate(detection):
            started.set()
            release.wait(10)
            inner(detection)

        engine._handle = gate
        runtime = _windowed_runtime(engine, workers=1, inflight=2,
                                    queue_capacity=256)
        try:
            # one source key: everything chains behind the first
            for n in range(32):
                detection = _detection(n, "hot")
                tags[id(detection)] = ("hot", n)
                runtime.submit(detection)
            assert started.wait(5)
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                time.sleep(0.02)
            # at most `inflight` detections plus the one the dispatcher
            # holds while waiting on a permit ever left the queue
            assert runtime.counters()["inflight"] <= 2
            assert runtime.queue_depths()[0] >= 29
            release.set()
            assert runtime.drain(30)
        finally:
            release.set()
            runtime.shutdown(5)
        assert engine.order["hot"] == list(range(32))
