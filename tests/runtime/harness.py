"""Shared harness for the concurrent-runtime tests.

The differential pattern mirrors ``tests/durability``: drive the same
seeded workload through differently-configured engines and compare the
*externally visible* action effects (mailbox contents, sorted — the
concurrent engine may interleave instances arbitrarily, but the set of
effects must be exactly the synchronous engine's set).
"""

from __future__ import annotations

from repro.core import ECAEngine
from repro.domain import (WorkloadConfig, booking_payloads,
                          synthetic_classes, synthetic_fleet,
                          synthetic_persons)
from repro.domain.workload import (full_pipeline_rule_markup,
                                   simple_rule_markup)
from repro.services import standard_deployment
from repro.xmlmodel import serialize

#: the default differential rule set: one Event→Action rule and one
#: full Fig. 4 pipeline (query/opaque-query/action) so both the fast
#: path and every component kind cross the worker pool
DEFAULT_RULES = (simple_rule_markup("simple"),
                 full_pipeline_rule_markup("pipeline"))


def build_world(runtime=None, config: WorkloadConfig | None = None,
                observability=None):
    """A wired in-process deployment + engine over synthetic documents."""
    config = config or WorkloadConfig(persons=10, fleet_size=8, cities=3)
    deployment = standard_deployment()
    deployment.add_document("persons.xml", synthetic_persons(config))
    deployment.add_document("classes.xml", synthetic_classes())
    deployment.add_document("fleet.xml", synthetic_fleet(config))
    engine = ECAEngine(deployment.grh, runtime=runtime,
                       observability=observability)
    return deployment, engine


def effects(deployment) -> dict[str, list[str]]:
    """Every externally visible action effect, per mailbox, sorted."""
    return {name: sorted(serialize(message.content)
                         for message in messages)
            for name, messages in deployment.runtime.mailboxes.items()}


def run_workload(config: WorkloadConfig, count: int, runtime=None,
                 rules=DEFAULT_RULES,
                 observability=None) -> dict[str, list[str]]:
    """Drive *count* seeded bookings through a fresh world; return its
    sorted effect sets.  The runtime (when given) is drained and shut
    down before effects are read, so nothing is still in flight."""
    deployment, engine = build_world(runtime, config, observability)
    for markup in rules:
        engine.register_rule(markup)
    for payload in booking_payloads(config, count):
        deployment.stream.emit(payload)
    assert engine.drain(60), "engine failed to quiesce"
    assert engine.shutdown(10), "runtime failed to shut down"
    return effects(deployment)
