"""Regression: ``_enqueued_at`` wait stamps never leak.

The runtime stamps every queued detection's enqueue time keyed by
``id(detection)`` so the worker that pops it can attribute queue wait.
Every exit path — normal execution, drop-oldest eviction, rejection,
block timeout, shutdown with work still queued — must pop (or sweep)
its entry, or the dict grows for the life of the process and stale ids
mis-attribute waits when CPython reuses the address.  ``counters()``
exposes the live stamp count as ``wait_stamps``.
"""

import threading

from repro.runtime import BackpressureError, Runtime
from repro.domain import WorkloadConfig, booking_payloads
from repro.domain.workload import simple_rule_markup

from .harness import build_world


def _gated_engine(runtime):
    deployment, engine = build_world(runtime)
    release = threading.Event()
    original = engine._handle

    def gated(detection):
        release.wait(10)
        original(detection)

    engine._handle = gated
    engine.register_rule(simple_rule_markup("r1"))
    return deployment, engine, release


class TestWaitStampBookkeeping:
    def test_normal_churn_leaves_no_stamps(self):
        runtime = Runtime(workers=2, queue_capacity=64)
        deployment, engine = build_world(runtime)
        engine.register_rule(simple_rule_markup("r1"))
        try:
            for payload in booking_payloads(WorkloadConfig(), 50):
                deployment.stream.emit(payload)
            assert engine.drain(10)
            assert runtime.counters()["wait_stamps"] == 0
        finally:
            engine.shutdown(5)

    def test_drop_oldest_pops_the_victims_stamp(self):
        runtime = Runtime(workers=1, queue_capacity=2,
                          backpressure="drop-oldest")
        deployment, engine, release = _gated_engine(runtime)
        try:
            for payload in booking_payloads(WorkloadConfig(), 10):
                deployment.stream.emit(payload)
            assert runtime.dropped > 0
            # stamps only for what is actually queued (not the dropped)
            assert runtime.counters()["wait_stamps"] <= \
                runtime.queue_capacity
            release.set()
            assert engine.drain(10)
            assert runtime.counters()["wait_stamps"] == 0
        finally:
            release.set()
            engine.shutdown(5)

    def test_rejected_submissions_never_stamp(self):
        runtime = Runtime(workers=1, queue_capacity=2,
                          backpressure="reject")
        deployment, engine, release = _gated_engine(runtime)
        try:
            rejected = 0
            for payload in booking_payloads(WorkloadConfig(), 10):
                try:
                    deployment.stream.emit(payload)
                except BackpressureError:
                    rejected += 1
            assert rejected > 0
            assert runtime.counters()["wait_stamps"] <= \
                runtime.queue_capacity
            release.set()
            assert engine.drain(10)
            assert runtime.counters()["wait_stamps"] == 0
        finally:
            release.set()
            engine.shutdown(5)

    def test_block_timeout_never_stamps(self):
        runtime = Runtime(workers=1, queue_capacity=1,
                          backpressure="block", submit_timeout=0.05)
        deployment, engine, release = _gated_engine(runtime)
        try:
            timed_out = 0
            for payload in booking_payloads(WorkloadConfig(), 5):
                try:
                    deployment.stream.emit(payload)
                except BackpressureError:
                    timed_out += 1
            assert timed_out > 0
            assert runtime.counters()["wait_stamps"] <= \
                runtime.queue_capacity
            release.set()
            assert engine.drain(10)
            assert runtime.counters()["wait_stamps"] == 0
        finally:
            release.set()
            engine.shutdown(5)

    def test_shutdown_with_queued_work_sweeps_stamps(self):
        runtime = Runtime(workers=1, queue_capacity=16)
        deployment, engine, release = _gated_engine(runtime)
        try:
            for payload in booking_payloads(WorkloadConfig(), 8):
                deployment.stream.emit(payload)
            assert runtime.counters()["wait_stamps"] > 0
        finally:
            release.set()
            engine.shutdown(5)
        assert runtime.counters()["wait_stamps"] == 0

    def test_sustained_churn_is_bounded(self):
        """Stamp count never exceeds queued+in-flight work."""
        runtime = Runtime(workers=4, queue_capacity=32)
        deployment, engine = build_world(runtime)
        engine.register_rule(simple_rule_markup("r1"))
        ceiling = runtime.queue_capacity + runtime.workers * \
            max(runtime.inflight, 1)
        try:
            for round_no in range(5):
                for payload in booking_payloads(WorkloadConfig(), 20):
                    deployment.stream.emit(payload)
                assert runtime.counters()["wait_stamps"] <= ceiling
                assert engine.drain(10)
            assert runtime.counters()["wait_stamps"] == 0
        finally:
            engine.shutdown(5)
