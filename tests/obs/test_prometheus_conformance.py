"""Prometheus text exposition (0.0.4) conformance checks.

Scrapers are unforgiving parsers: a label value with an unescaped
quote, a histogram missing its ``+Inf`` bucket, or a ``# TYPE`` line
after its first sample silently corrupts the whole scrape.  These
tests pin the renderer to the format contract rather than to golden
strings.
"""

import math
import re

from repro.obs import MetricsRegistry

_SAMPLE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$')
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (value.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\"))


def _parse(text: str):
    """(samples, help_lines, type_lines) from one exposition."""
    samples = []
    helps, types = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            helps[name] = line
            continue
        if line.startswith("# TYPE "):
            name = line.split(" ", 3)[2]
            types[name] = line
            continue
        match = _SAMPLE.match(line)
        assert match is not None, f"unparseable sample line {line!r}"
        name, _, raw_labels, value = match.groups()
        labels = {}
        if raw_labels:
            reassembled = ",".join(
                f'{k}="{v}"' for k, v in _LABEL.findall(raw_labels))
            assert reassembled == raw_labels, \
                f"junk between labels in {line!r}"
            labels = {k: _unescape(v) for k, v in _LABEL.findall(raw_labels)}
        samples.append((name, labels, float(value)))
    return samples, helps, types


class TestLabelEscaping:
    def test_quotes_backslashes_newlines_round_trip(self):
        registry = MetricsRegistry()
        family = registry.counter("esc_total", "escapes", labels=("v",))
        nasty = ['plain', 'with "quotes"', 'back\\slash', 'new\nline',
                 'mix "\\" \n end']
        for value in nasty:
            family.labels(value).inc()
        samples, _, _ = _parse(registry.render_prometheus())
        seen = {labels["v"] for name, labels, _ in samples
                if name == "esc_total"}
        assert seen == set(nasty)

    def test_help_text_stays_single_line(self):
        registry = MetricsRegistry()
        registry.counter("h_total", "help text here")
        for line in registry.render_prometheus().splitlines():
            if line.startswith("# HELP h_total"):
                assert line == "# HELP h_total help text here"


class TestHistogramContract:
    def _histogram_text(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency",
                                       buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 7.0):
            histogram.observe(value)
        return registry.render_prometheus()

    def test_inf_bucket_present_and_equals_count(self):
        samples, _, _ = _parse(self._histogram_text())
        buckets = {labels["le"]: value for name, labels, value in samples
                   if name == "lat_seconds_bucket"}
        assert "+Inf" in buckets
        count = next(value for name, _, value in samples
                     if name == "lat_seconds_count")
        assert buckets["+Inf"] == count == 4

    def test_buckets_are_cumulative_and_ordered(self):
        samples, _, _ = _parse(self._histogram_text())
        rows = [(labels["le"], value) for name, labels, value in samples
                if name == "lat_seconds_bucket"]
        bounds = [float("inf") if le == "+Inf" else float(le)
                  for le, _ in rows]
        assert bounds == sorted(bounds)
        counts = [value for _, value in rows]
        assert counts == sorted(counts)

    def test_sum_matches_observations(self):
        samples, _, _ = _parse(self._histogram_text())
        total = next(value for name, _, value in samples
                     if name == "lat_seconds_sum")
        assert math.isclose(total, 0.05 + 0.5 + 0.5 + 7.0)

    def test_labelled_histogram_series_complete_per_child(self):
        registry = MetricsRegistry()
        family = registry.histogram("rt_seconds", "rt", labels=("kind",),
                                    buckets=(1.0,))
        family.labels("query").observe(0.5)
        family.labels("action").observe(2.0)
        samples, _, _ = _parse(registry.render_prometheus())
        for kind in ("query", "action"):
            series = [(name, labels) for name, labels, _ in samples
                      if labels.get("kind") == kind]
            names = {name for name, _ in series}
            assert names == {"rt_seconds_bucket", "rt_seconds_sum",
                             "rt_seconds_count"}


class TestMetadataOrdering:
    def test_help_then_type_then_samples_grouped_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "first", labels=("k",)).labels("x").inc()
        registry.gauge("b_depth", "second").set(3)
        registry.histogram("c_seconds", "third").observe(0.2)
        lines = [line for line in
                 registry.render_prometheus().splitlines() if line]
        position = {}
        for index, line in enumerate(lines):
            if line.startswith("#"):
                kind, name = line.split(" ", 3)[1:3]
                position.setdefault(name, {})[kind] = index
            else:
                name = _SAMPLE.match(line).group(1)
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                metric = base if base in position else name
                position.setdefault(metric, {}).setdefault(
                    "samples", []).append(index)
        for name, spots in position.items():
            if "HELP" in spots:
                assert spots["HELP"] < spots["TYPE"]
            assert all(spots["TYPE"] < index for index in spots["samples"]), \
                f"sample for {name} before its TYPE line"
            # samples of one metric are contiguous: no other metric's
            # line interleaves the block
            block = spots["samples"]
            assert block == list(range(block[0], block[0] + len(block)))

    def test_every_sample_has_a_type_line(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x").inc()
        registry.histogram("y_seconds", "y").observe(0.1)
        samples, _, types = _parse(registry.render_prometheus())
        for name, _, _ in samples:
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert base in types or name in types

    def test_type_lines_match_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c")
        registry.gauge("g_depth", "g")
        registry.histogram("h_seconds", "h")
        _, _, types = _parse(registry.render_prometheus())
        assert types["c_total"].endswith(" counter")
        assert types["g_depth"].endswith(" gauge")
        assert types["h_seconds"].endswith(" histogram")
