"""Size-capped rotation: RotatingSink and the JSONL span exporter."""

import json
import os
import threading

from repro.obs import JsonlExporter, RotatingSink, Span, Tracer


def write_lines(sink, count, width=20):
    for index in range(count):
        sink.write(f"{index:0{width}d}")


class TestRotatingSink:
    def test_uncapped_sink_never_rotates(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = RotatingSink(str(path))
        write_lines(sink, 100)
        sink.close()
        assert sink.rotations == 0
        assert len(path.read_text().splitlines()) == 100
        assert not (tmp_path / "out.jsonl.1").exists()

    def test_rotation_ladder_shifts_and_prunes(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = RotatingSink(str(path), max_bytes=100, backups=2)
        write_lines(sink, 30)  # 21 bytes/line -> rotates every 4-5 lines
        sink.close()
        assert sink.rotations > 2
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["out.jsonl", "out.jsonl.1", "out.jsonl.2"]
        # newest data in the live file, older in .1, oldest in .2
        newest = int(path.read_text().splitlines()[-1])
        oldest = int((tmp_path / "out.jsonl.2").read_text().splitlines()[0])
        assert newest == 29 and oldest < newest
        # no line was lost or torn across the rotation boundary
        kept = [line for name in names
                for line in (tmp_path / name).read_text().splitlines()]
        assert sorted(int(line) for line in kept) == \
            list(range(30 - len(kept), 30))

    def test_zero_backups_truncates_in_place(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = RotatingSink(str(path), max_bytes=60, backups=0)
        write_lines(sink, 10)
        sink.close()
        assert sink.rotations > 0
        assert list(tmp_path.iterdir()) == [path]
        assert os.path.getsize(path) <= 60

    def test_oversize_line_still_lands(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = RotatingSink(str(path), max_bytes=10, backups=1)
        sink.write("x" * 50)  # larger than the whole cap
        sink.close()
        assert path.read_text() == "x" * 50 + "\n"

    def test_size_resumes_from_an_existing_file(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("a" * 90 + "\n")
        sink = RotatingSink(str(path), max_bytes=100, backups=1)
        sink.write("b" * 20)  # 91 + 21 > 100 -> must rotate first
        sink.close()
        assert sink.rotations == 1
        assert (tmp_path / "out.jsonl.1").read_text().startswith("a")
        assert path.read_text().startswith("b")

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = RotatingSink(str(path), max_bytes=400, backups=5)
        errors = []

        def worker(tag):
            try:
                for index in range(50):
                    sink.write(f"{tag}:{index:04d}:" + "p" * 10)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in "abcd"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        assert errors == []
        lines = [line for p in tmp_path.iterdir()
                 for line in p.read_text().splitlines()]
        # every surviving line is whole — never torn mid-rotation; the
        # ladder prunes oldest backups, so the count is bounded not exact
        expected_len = len("a:0000:" + "p" * 10)
        assert lines and all(len(line) == expected_len for line in lines)
        # per thread, whatever survived is a suffix of its writes — a
        # rotation may prune old lines but never reorders or skips
        for tag in "abcd":
            indexes = sorted(int(line.split(":")[1]) for line in lines
                             if line.startswith(tag))
            if indexes:  # a fast finisher can be pruned out entirely
                assert indexes == list(range(min(indexes), 50))


class TestJsonlExporterRotation:
    def test_exporter_rotates_and_keeps_valid_json(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlExporter(str(path), max_bytes=2000, backups=3)
        tracer = Tracer([exporter])
        for _ in range(30):
            span = tracer.begin("rule", attributes={"rule": "r"})
            tracer.finish(span)
        exporter.close()
        assert exporter.rotations > 0
        total = 0
        for candidate in tmp_path.iterdir():
            for line in candidate.read_text().splitlines():
                assert json.loads(line)["name"] == "rule"
                total += 1
        assert 0 < total <= 30

    def test_exporter_default_is_unrotated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlExporter(str(path))
        exporter.export(Span("s", "t", "i", None, 0.0))
        exporter.close()
        assert exporter.rotations == 0
        assert len(list(tmp_path.iterdir())) == 1
