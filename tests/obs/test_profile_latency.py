"""The critical-path analyzer: decomposition, self-check, introspection.

The unit tests hand-build span trees with exact timestamps, so every
budget line has a known right answer.  The differential tests then
drive real seeded workloads through sync and 4-worker engines and
assert the arithmetic guarantee end to end: the self-check — phases
sum to the instance's wall time within tolerance — never fires
``out_of_tolerance``.
"""

import itertools

import pytest

from repro.domain import WorkloadConfig
from repro.obs import (BUDGET_PHASES, CriticalPathAnalyzer, MetricsRegistry,
                       Observability, Span, WAIT_KINDS)
from repro.obs.ops.admin import IntrospectionSurface
from repro.runtime import Runtime

from ..runtime.harness import build_world, run_workload

_ids = itertools.count(1)


def _span(name, trace, parent, start, end, **attributes):
    span = Span(name, trace, f"s{next(_ids)}", parent, start,
                attributes=dict(attributes))
    span.ended_at = end
    return span


def _export_tree(analyzer, spans):
    """Feed spans children-first, root last (finish order)."""
    for span in sorted(spans, key=lambda s: s.parent_id is None):
        analyzer.export(span)


class TestDecomposition:
    def test_simple_instance_splits_exactly(self):
        analyzer = CriticalPathAnalyzer()
        root = _span("rule", "t1", None, 0.0, 1.0, rule="r1",
                     queue_wait=0.5)
        phase = _span("phase:query", "t1", root.span_id, 0.1, 0.9)
        request = _span("grh.request", "t1", phase.span_id, 0.2, 0.8,
                        pool_wait=0.1)
        service = _span("service.query", "t1", request.span_id, 0.3, 0.6)
        _export_tree(analyzer, [service, request, phase, root])
        assert analyzer.instances == 1
        assert analyzer.selfcheck_failed == 0
        view = analyzer.snapshot()
        # wall = 1.0 duration + 0.5 queue = 1.5s
        assert view["wall"]["p50_ms"] == pytest.approx(1500.0)
        phases = view["phases"]
        assert phases["queue_wait"]["p50_ms"] == pytest.approx(500.0)
        assert phases["engine"]["p50_ms"] == pytest.approx(200.0)
        assert phases["query"]["p50_ms"] == pytest.approx(200.0)
        assert phases["pool_wait"]["p50_ms"] == pytest.approx(100.0)
        assert phases["service"]["p50_ms"] == pytest.approx(300.0)
        assert phases["network"]["p50_ms"] == pytest.approx(200.0)

    def test_waits_clamped_into_request_budget(self):
        """Hedge branches may jointly over-report; clamping keeps the
        sum exact."""
        analyzer = CriticalPathAnalyzer()
        root = _span("rule", "t2", None, 0.0, 1.0, rule="r1")
        phase = _span("phase:query", "t2", root.span_id, 0.0, 1.0)
        request = _span("grh.request", "t2", phase.span_id, 0.0, 0.5,
                        hedge_wait=0.4, retry_backoff=9.0)
        _export_tree(analyzer, [request, phase, root])
        assert analyzer.selfcheck_failed == 0
        view = analyzer.snapshot()
        # waits clamp in WAIT_KINDS order: retry_backoff (9s claimed)
        # absorbs the whole 0.5s request, hedge_wait gets nothing
        assert view["phases"]["retry_backoff"]["p50_ms"] == \
            pytest.approx(500.0)
        assert "hedge_wait" not in view["phases"]
        assert "network" not in view["phases"]

    def test_fetch_spans_without_children_land_in_network(self):
        analyzer = CriticalPathAnalyzer()
        root = _span("rule", "t3", None, 0.0, 0.6, rule="r2")
        phase = _span("phase:query", "t3", root.span_id, 0.0, 0.5)
        fetch = _span("grh.fetch", "t3", phase.span_id, 0.1, 0.4)
        _export_tree(analyzer, [fetch, phase, root])
        view = analyzer.snapshot()
        assert view["phases"]["network"]["p50_ms"] == pytest.approx(300.0)

    def test_dominant_phase_and_shares(self):
        analyzer = CriticalPathAnalyzer()
        root = _span("rule", "t4", None, 0.0, 1.0, rule="r1")
        phase = _span("phase:action", "t4", root.span_id, 0.0, 0.9)
        _export_tree(analyzer, [phase, root])
        view = analyzer.snapshot()
        assert view["dominant_phase"] == "action"
        assert view["shares"]["action"] == pytest.approx(0.9)
        assert sum(view["shares"].values()) == pytest.approx(1.0)

    def test_selfcheck_flags_unattributed_time(self):
        """A phase span missing from the tree (lost export) must be
        caught by the self-check, not silently absorbed."""
        analyzer = CriticalPathAnalyzer()
        root = _span("rule", "t5", None, 0.0, 1.0, rule="r1",
                     queue_wait=-3.0)       # negative: clamped to 0
        # claim a wall of 1.0s but attach a phase of only 0.2s — the
        # engine remainder absorbs it, so this one stays in tolerance …
        phase = _span("phase:event", "t5", root.span_id, 0.0, 0.2)
        _export_tree(analyzer, [phase, root])
        assert analyzer.selfcheck_ok == 1
        # … but a request OUTLIVING its phase cannot be absorbed:
        # attributed > wall by more than tolerance
        root2 = _span("rule", "t6", None, 0.0, 0.1, rule="r1")
        phase2 = _span("phase:event", "t6", root2.span_id, 0.0, 0.5)
        _export_tree(analyzer, [phase2, root2])
        assert analyzer.selfcheck_failed == 1

    def test_rule_lru_is_bounded(self):
        analyzer = CriticalPathAnalyzer(max_rules=4)
        for n in range(10):
            root = _span("rule", f"lru{n}", None, 0.0, 0.01, rule=f"r{n}")
            _export_tree(analyzer, [root])
        assert len(analyzer.snapshot()["rules"]) == 4

    def test_rootless_buffers_evicted(self):
        analyzer = CriticalPathAnalyzer(max_buffered_traces=3)
        for n in range(8):
            analyzer.export(_span("phase:event", f"orph{n}", "missing",
                                  0.0, 0.1))
        assert analyzer.pending_traces() <= 3 + 1
        assert analyzer.evicted >= 4

    def test_budget_histograms_feed_metrics(self):
        registry = MetricsRegistry()
        analyzer = CriticalPathAnalyzer()
        analyzer.bind_metrics(registry)
        root = _span("rule", "m1", None, 0.0, 1.0, rule="r1")
        _export_tree(analyzer, [root])
        text = registry.render_prometheus()
        assert 'eca_latency_budget_seconds_count{phase="engine"} 1' in text
        assert 'eca_latency_selfcheck_total{outcome="ok"} 1' in text


class TestDifferentialSelfCheck:
    """Seeds 0–2, sync and 4-worker engines: the decomposition's
    arithmetic holds for every real instance the engine produces."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("workers", [None, 4])
    def test_phases_sum_to_wall(self, seed, workers):
        config = WorkloadConfig(persons=10, fleet_size=8, cities=3,
                                seed=seed)
        obs = Observability(critical=True)
        runtime = Runtime(workers=workers) if workers else None
        run_workload(config, 12, runtime=runtime, observability=obs)
        analyzer = obs.critical
        assert analyzer.instances > 0
        assert analyzer.selfcheck_failed == 0, \
            f"{analyzer.selfcheck_failed}/{analyzer.instances} instances " \
            f"out of tolerance: {analyzer.snapshot()}"
        assert analyzer.pending_traces() == 0
        obs.close()

    def test_concurrent_run_reports_queue_wait(self):
        """Under a worker pool the budget includes nonzero queue wait
        for at least some instances (the pool stamps the root)."""
        obs = Observability(critical=True)
        run_workload(WorkloadConfig(persons=10, fleet_size=8, cities=3),
                     30, runtime=Runtime(workers=2), observability=obs)
        phases = obs.critical.snapshot()["phases"]
        assert "queue_wait" in phases
        obs.close()


class TestIntrospectionRoutes:
    def _engine(self, **obs_kwargs):
        obs = Observability(**obs_kwargs)
        deployment, engine = build_world(observability=obs)
        return deployment, engine, obs

    def test_latency_route(self):
        deployment, engine, obs = self._engine(critical=True)
        try:
            surface = IntrospectionSurface(engine, obs)
            status, view = surface.handle("/introspect/latency")
            assert status == 200
            assert view["enabled"] is True
            assert view["instances"] == 0
            for phase in view["phases"]:
                assert phase in BUDGET_PHASES
        finally:
            engine.shutdown(5)
            obs.close()

    def test_latency_route_disabled(self):
        deployment, engine, obs = self._engine()
        try:
            surface = IntrospectionSurface(engine, obs)
            status, view = surface.handle("/introspect/latency")
            assert status == 200
            assert view == {"enabled": False}
        finally:
            engine.shutdown(5)
            obs.close()

    def test_profile_route_snapshot_and_capture(self):
        from repro.obs import SamplingProfiler

        deployment, engine, obs = self._engine(
            profiler=SamplingProfiler(hz=200.0))
        try:
            surface = IntrospectionSurface(engine, obs)
            status, view = surface.handle("/introspect/profile")
            assert status == 200
            assert view["enabled"] is True and view["running"]
            status, view = surface.handle(
                "/introspect/profile",
                {"seconds": "0.1", "format": "folded"})
            assert status == 200
            assert "folded" in view
            status, view = surface.handle("/introspect/profile",
                                          {"seconds": "bogus"})
            assert status == 400
        finally:
            engine.shutdown(5)
            obs.close()

    def test_profile_route_disabled(self):
        deployment, engine, obs = self._engine()
        try:
            surface = IntrospectionSurface(engine, obs)
            status, view = surface.handle("/introspect/profile")
            assert status == 200
            assert view == {"enabled": False}
        finally:
            engine.shutdown(5)
            obs.close()

    def test_wait_kinds_are_budget_phases(self):
        for kind in WAIT_KINDS:
            assert kind in BUDGET_PHASES
