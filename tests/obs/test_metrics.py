"""The metrics registry: instruments, labels, callbacks, exposition."""

import threading

import pytest

from repro.obs import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                       MetricsRegistry)


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        cumulative, total_sum, count = histogram.snapshot()
        assert cumulative == [1, 3, 4]      # le=0.1, le=1.0, +Inf
        assert count == 4
        assert total_sum == pytest.approx(6.05)

    def test_histogram_boundary_lands_in_its_bucket(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.1)              # le means <=
        cumulative, _, _ = histogram.snapshot()
        assert cumulative[0] == 1

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_counter_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestRegistry:
    def test_labelled_family(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labels=("kind",))
        family.labels("query").inc()
        family.labels("query").inc()
        family.labels("action").inc()
        assert family.labels("query").value == 2
        assert family.labels("action").value == 1

    def test_label_arity_is_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labels=("kind",))
        with pytest.raises(ValueError, match="label value"):
            family.labels("a", "b")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "has space", "1starts_with_digit", "dash-ed"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total")
        assert registry.counter("c_total") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c_total")

    def test_reregistration_rebinds_callback(self):
        # a recovered engine re-installs over the same registry: the
        # scrape must read the *new* engine's state
        registry = MetricsRegistry()
        registry.counter("c_total", callback=lambda: 1)
        registry.counter("c_total", callback=lambda: 2)
        assert "c_total 2" in registry.render_prometheus()


class TestExposition:
    def test_plain_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs processed").inc(3)
        registry.gauge("queue_depth").set(7)
        text = registry.render_prometheus()
        assert "# HELP jobs_total Jobs processed" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 7" in text
        assert text.endswith("\n")

    def test_labelled_samples(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labels=("kind",))
        family.labels("query").inc(2)
        text = registry.render_prometheus()
        assert 'req_total{kind="query"} 2' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", labels=("path",))
        family.labels('a"b\\c\nd').set(1)
        assert 'g{path="a\\"b\\\\c\\nd"} 1' in registry.render_prometheus()

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1.0"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text
        assert "latency_seconds_sum 0.55" in text

    def test_labelled_histogram_family(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", labels=("phase",),
                                    buckets=(1.0,))
        family.labels("query").observe(0.5)
        text = registry.render_prometheus()
        assert 'lat_seconds_bucket{phase="query",le="1.0"} 1' in text
        assert 'lat_seconds_count{phase="query"} 1' in text

    def test_scalar_callback(self):
        registry = MetricsRegistry()
        registry.counter("detections_total", callback=lambda: 42)
        assert "detections_total 42" in registry.render_prometheus()

    def test_dict_callback_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("outcomes_total", labels=("endpoint", "outcome"),
                         callback=lambda: {("svc:a", "ok"): 3,
                                           ("svc:b", "fail"): 1})
        text = registry.render_prometheus()
        assert 'outcomes_total{endpoint="svc:a",outcome="ok"} 3' in text
        assert 'outcomes_total{endpoint="svc:b",outcome="fail"} 1' in text

    def test_scalar_key_dict_callback(self):
        registry = MetricsRegistry()
        registry.gauge("state", labels=("endpoint",),
                       callback=lambda: {"svc:a": 0.5})
        assert 'state{endpoint="svc:a"} 0.5' in registry.render_prometheus()

    def test_failing_callback_never_fails_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("bad_total", callback=lambda: 1 / 0)
        registry.counter("good_total", callback=lambda: 1)
        text = registry.render_prometheus()
        assert "good_total 1" in text
        samples = [line for line in text.splitlines()
                   if not line.startswith("#")]
        assert not any(line.startswith("bad_total") for line in samples)

    def test_default_buckets_cover_micro_to_seconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.0001)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(10.0)
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
