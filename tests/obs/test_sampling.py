"""Head and tail trace sampling: samplers, tracer gating, propagation."""

import pytest

from repro.bindings import Relation
from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event, fleet_graph
from repro.grh.messages import Request, request_to_xml
from repro.obs import Observability, RingBufferExporter, Span, Tracer
from repro.obs.trace import SPANS_QNAME
from repro.obs.ops import (ProbabilisticSampler, RateLimitedSampler,
                           Sampler, TailSampler)
from repro.services import DATALOG_LANG, standard_deployment
from repro.services.base import LanguageService

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
ACT = 'xmlns:act="http://www.semwebtech.org/languages/2006/actions"'

PROGRAM = """
    owns("John Doe", "Golf"). owns("John Doe", "Passat").
    class("Golf", "B"). class("Passat", "C").
    owned_class(P, K) :- owns(P, C), class(C, K).
"""

RULE = f"""
<eca:rule {ECA} id="offers">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" to="{{To}}"/>
  </eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">owned_class("{{Person}}", Class)</dl:query>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="offers"><offer class="{{Class}}"/></act:send>
  </eca:action>
</eca:rule>
"""

FAILING_RULE = f"""
<eca:rule {ECA} id="doomed">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}" person="{{P}}"/>
  </eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">)( not datalog</dl:query>
  </eca:query>
  <eca:action><act:send {ACT} to="x"><y/></act:send></eca:action>
</eca:rule>
"""


def make_span(trace_id, span_id, parent=None, name="s", status="ok",
              duration=0.0, attributes=None):
    span = Span(name, trace_id, span_id, parent, 0.0, attributes)
    span.ended_at = duration
    span.status = status
    return span


class TestHeadSamplers:
    def test_probabilistic_is_deterministic_and_seeded(self):
        sampler = ProbabilisticSampler(0.5, seed=7)
        ids = [f"{i:032x}" for i in range(200)]
        first = [sampler.sample(trace_id) for trace_id in ids]
        second = [sampler.sample(trace_id) for trace_id in ids]
        assert first == second
        # a different seed gives a different keep-set
        other = ProbabilisticSampler(0.5, seed=8)
        assert [other.sample(trace_id) for trace_id in ids] != first
        # and the rate is roughly the probability
        assert 60 <= sum(first) <= 140

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ProbabilisticSampler(1.5)
        assert all(ProbabilisticSampler(1.0).sample(f"{i:032x}")
                   for i in range(50))
        assert not any(ProbabilisticSampler(0.0).sample(f"{i:032x}")
                       for i in range(50))

    def test_rate_limited_sheds_over_the_rate(self):
        now = [0.0]
        sampler = RateLimitedSampler(10.0, clock=lambda: now[0])
        verdicts = [sampler.sample(f"{i:032x}") for i in range(25)]
        assert sum(verdicts) == 10  # one second's burst
        assert sampler.shed == 15
        now[0] += 0.5  # half a second refills five tokens
        assert sum(sampler.sample(f"r{i:031x}") for i in range(25)) == 5

    def test_samplers_satisfy_the_protocol(self):
        assert isinstance(ProbabilisticSampler(0.5), Sampler)
        assert isinstance(RateLimitedSampler(1.0), Sampler)
        assert isinstance(TailSampler(), Sampler) is False or True  # duck


class TestTracerHeadSampling:
    def test_unsampled_trace_is_timed_but_not_exported(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring], sampler=ProbabilisticSampler(0.0))
        root = tracer.begin("rule")
        child = tracer.begin("phase:query")
        tracer.finish(child)
        tracer.finish(root)
        assert not child.sampled and not root.sampled
        assert child.ended_at is not None
        assert ring.spans() == []
        assert tracer.started == 2
        assert tracer.finished == 2
        assert tracer.unsampled == 2

    def test_children_inherit_the_root_verdict(self):
        kept = {"value": True}

        class Flip:
            def sample(self, trace_id):
                return kept["value"]

        ring = RingBufferExporter()
        tracer = Tracer([ring], sampler=Flip())
        root = tracer.begin("rule")
        kept["value"] = False  # must not affect children of a kept root
        child = tracer.begin("phase:query")
        tracer.finish(child)
        tracer.finish(root)
        assert root.sampled and child.sampled
        assert len(ring.spans()) == 2

    def test_flags_byte_rides_the_traceparent(self):
        tracer = Tracer(sampler=ProbabilisticSampler(0.0))
        unsampled = tracer.begin("rule")
        assert unsampled.traceparent.endswith("-00")
        tracer.finish(unsampled)
        tracer.sampler = None
        sampled = tracer.begin("rule")
        assert sampled.traceparent.endswith("-01")
        tracer.finish(sampled)

    def test_engine_head_sampling_end_to_end(self):
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=PROGRAM)
        obs = Observability(sampler=ProbabilisticSampler(0.0))
        engine = ECAEngine(deployment.grh, observability=obs)
        engine.register_rule(RULE)
        deployment.stream.emit(booking_event())
        assert engine.instances[-1].status == "completed"
        # evaluation worked, metrics still counted, but no trace kept
        assert obs.trace_ids() == []
        assert obs.tracer.unsampled > 0
        assert "eca_rule_instances_total 1" in obs.render_prometheus()


class TestTailSampler:
    def test_erroring_trace_is_kept(self):
        ring = RingBufferExporter()
        tail = TailSampler(probability=0.0, downstream=[ring])
        tail.export(make_span("t1", "b", parent="a", status="error"))
        tail.export(make_span("t1", "a", name="rule"))
        assert tail.kept == 1 and tail.dropped == 0
        assert {span.span_id for span in ring.spans()} == {"a", "b"}

    def test_marker_attribute_keeps_the_trace(self):
        ring = RingBufferExporter()
        tail = TailSampler(probability=0.0, downstream=[ring])
        tail.export(make_span("t1", "b", parent="a",
                              attributes={"retries": 2}))
        tail.export(make_span("t1", "a", name="rule"))
        assert tail.kept == 1
        assert len(ring.spans()) == 2

    def test_slow_root_keeps_the_trace(self):
        ring = RingBufferExporter()
        tail = TailSampler(probability=0.0, latency_threshold=0.5,
                           downstream=[ring])
        tail.export(make_span("slow", "a", name="rule", duration=0.9))
        tail.export(make_span("fast", "b", name="rule", duration=0.1))
        assert tail.kept == 1 and tail.dropped == 1
        assert ring.spans()[0].trace_id == "slow"

    def test_healthy_traces_dropped_at_probability_zero(self):
        ring = RingBufferExporter()
        tail = TailSampler(probability=0.0, downstream=[ring])
        for index in range(20):
            trace = f"t{index}"
            tail.export(make_span(trace, "child", parent="root"))
            tail.export(make_span(trace, "root", name="rule"))
        assert tail.dropped == 20 and tail.kept == 0
        assert ring.spans() == []
        assert tail.pending_traces() == 0

    def test_rootless_overflow_is_flushed_not_lost(self):
        ring = RingBufferExporter()
        tail = TailSampler(probability=0.0, max_buffered_traces=3,
                           downstream=[ring])
        for index in range(5):  # no roots ever arrive
            tail.export(make_span(f"t{index}", "x", parent="gone"))
        assert tail.evicted == 2
        assert len(ring.spans()) == 2  # evictions flushed downstream
        assert tail.pending_traces() == 3

    def test_acceptance_all_errors_kept_healthy_near_p(self):
        # the ISSUE's acceptance bar: at healthy-keep probability p the
        # tail sampler keeps 100% of erroring instances and at most
        # p + tolerance of the healthy ones — seeded, so reproducible
        p, tolerance, traces = 0.1, 0.05, 1000
        tail = TailSampler(probability=p, seed=42)
        kept_trace_ids = []
        tail.downstream.append(type("Sink", (), {
            "export": staticmethod(
                lambda span: kept_trace_ids.append(span.trace_id))})())
        erroring = {f"err{i:029d}" for i in range(100)}
        for index in range(traces):
            trace = f"ok-{index:028d}"
            tail.export(make_span(trace, "c", parent="r"))
            tail.export(make_span(trace, "r", name="rule"))
        for trace in sorted(erroring):
            tail.export(make_span(trace, "c", parent="r", status="error"))
            tail.export(make_span(trace, "r", name="rule", status="error"))
        kept = set(kept_trace_ids)
        assert erroring <= kept, "an erroring instance was sampled away"
        healthy_kept = len(kept) - len(erroring)
        assert healthy_kept / traces <= p + tolerance
        assert healthy_kept > 0, "p=0.1 over 1000 traces kept nothing"
        # deterministic: the same seed makes the same decisions
        repeat = TailSampler(probability=p, seed=42)
        for index in range(traces):
            repeat.export(make_span(f"ok-{index:028d}", "r", name="rule"))
        assert repeat.kept == healthy_kept

    def test_remote_service_skips_capture_for_unsampled_traces(self):
        # the verdict rides the traceparent flags byte: a service
        # receiving ``…-00`` must not pay for a server-side span
        # annotation nobody downstream will keep (PROTOCOL.md §9)
        class Echo(LanguageService):
            def query(self, request):
                return Relation()

        def ask(flags):
            message = request_to_xml(Request(
                "query", "c1", None, Relation(),
                traceparent=f"00-{'a' * 32}-{'b' * 16}-{flags}"))
            response = Echo().handle(message)
            return [child for child in response.children
                    if getattr(child, "name", None) == SPANS_QNAME]

        assert ask("01"), "sampled caller lost its span annotation"
        assert not ask("00"), "unsampled caller still paid for capture"

    def test_engine_tail_sampling_keeps_failures_only(self):
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=PROGRAM)
        tail = TailSampler(probability=0.0)
        obs = Observability(tail=tail)
        engine = ECAEngine(deployment.grh, observability=obs)
        engine.register_rule(RULE)
        engine.register_rule(FAILING_RULE)
        for _ in range(3):
            deployment.stream.emit(booking_event())
        statuses = {i.rule_id: i.status for i in engine.instances}
        assert statuses == {"offers": "completed", "doomed": "failed"}
        # only the failing rule's traces survived the tail verdict
        kept_rules = {span.attributes.get("rule")
                      for span in obs.ring.spans() if span.name == "rule"}
        assert kept_rules == {"doomed"}
        assert tail.dropped > 0
        # the kept trace is complete: root plus its phase children
        instance = [i for i in engine.instances
                    if i.rule_id == "doomed"][-1]
        spans = obs.trace_of_instance(instance.instance_id)
        names = {span.name for span in spans}
        assert "rule" in names and "phase:query" in names
