"""Observability wired into a full engine: traces, metrics, switches."""

import pytest

from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event, fleet_graph
from repro.obs import Observability
from repro.services import DATALOG_LANG, SPARQL_LANG, standard_deployment

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
ACT = 'xmlns:act="http://www.semwebtech.org/languages/2006/actions"'

PROGRAM = """
    owns("John Doe", "Golf"). owns("John Doe", "Passat").
    class("Golf", "B"). class("Passat", "C").
    owned_class(P, K) :- owns(P, C), class(C, K).
"""

RULE = f"""
<eca:rule {ECA} id="offers">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" to="{{To}}"/>
  </eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">owned_class("{{Person}}", Class)</dl:query>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="offers"><offer class="{{Class}}"/></act:send>
  </eca:action>
</eca:rule>
"""


def run_once(observability):
    deployment = standard_deployment(graph=fleet_graph(),
                                     datalog_program=PROGRAM)
    engine = ECAEngine(deployment.grh, observability=observability)
    engine.register_rule(RULE)
    deployment.stream.emit(booking_event())
    return engine


class TestTraceShape:
    def test_one_stitched_trace_per_instance(self):
        obs = Observability()
        engine = run_once(obs)
        instance = engine.instances[-1]
        assert instance.status == "completed"
        spans = obs.trace_of_instance(instance.instance_id)
        assert spans, "the rule instance left no trace"
        # every span of the evaluation shares the root's trace id
        assert len({span.trace_id for span in spans}) == 1
        names = [span.name for span in spans]
        (root,) = [span for span in spans if span.name == "rule"]
        assert root.parent_id is None
        assert root.attributes["rule"] == "offers"
        assert root.attributes["status"] == "completed"
        assert "phase:event" in names
        assert "phase:query" in names
        assert "phase:action" in names
        assert "grh.request" in names

    def test_remote_service_spans_are_adopted(self):
        obs = Observability()
        engine = run_once(obs)
        spans = obs.trace_of_instance(engine.instances[-1].instance_id)
        remote = [span for span in spans if span.remote]
        assert remote, "no server-side spans were adopted"
        by_id = {span.span_id: span for span in spans}
        for span in remote:
            assert span.name.startswith("service:")
            # parented under the grh.request that reached the service
            assert by_id[span.parent_id].name == "grh.request"

    def test_phase_spans_nest_under_the_rule_root(self):
        obs = Observability()
        engine = run_once(obs)
        spans = obs.trace_of_instance(engine.instances[-1].instance_id)
        (root,) = [span for span in spans if span.name == "rule"]
        for span in spans:
            if span.name.startswith("phase:"):
                assert span.parent_id == root.span_id

    def test_render_shows_the_tree(self):
        obs = Observability()
        run_once(obs)
        text = obs.render()
        lines = text.splitlines()
        assert lines[0].startswith("rule ")
        assert any(line.startswith("  phase:query") for line in lines)
        assert any("service:query" in line and "remote" in line
                   for line in lines)

    def test_jsonl_export(self, tmp_path):
        import json
        path = str(tmp_path / "trace.jsonl")
        obs = Observability(trace_jsonl=path)
        run_once(obs)
        obs.close()
        records = [json.loads(line) for line in open(path)]
        assert any(record["name"] == "rule" for record in records)


class TestMetrics:
    def test_exposition_covers_engine_grh_and_resilience(self):
        obs = Observability()
        run_once(obs)
        text = obs.render_prometheus()
        assert "eca_detections_total 1" in text
        assert "eca_rule_instances_total 1" in text
        assert 'eca_instances_total{status="completed"} 1' in text
        assert "eca_actions_total 2" in text
        assert "eca_registered_rules 1" in text
        assert 'eca_phase_latency_seconds_count{phase="query"} 1' in text
        assert 'eca_phase_latency_seconds_count{phase="action"} 1' in text
        assert 'eca_grh_request_latency_seconds_count{kind="query"} 1' \
            in text
        assert "eca_retries_total 0" in text
        assert "eca_dead_letters 0" in text
        assert 'eca_breaker_state{endpoint="svc:datalog"} 0.0' in text
        assert ('eca_service_requests_total{endpoint="svc:datalog",'
                'outcome="successes"} 1') in text

    def test_failed_instance_marks_span_and_counters(self):
        deployment = standard_deployment(datalog_program="p(1).")
        obs = Observability()
        engine = ECAEngine(deployment.grh, observability=obs)
        engine.register_rule(f"""
<eca:rule {ECA} id="doomed">
  <eca:event><travel:booking xmlns:travel="{TRAVEL_NS}"
                             person="{{P}}"/></eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">)( not datalog</dl:query>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="x"><y/></act:send>
  </eca:action>
</eca:rule>
""")
        deployment.stream.emit(booking_event())
        instance = engine.instances[-1]
        assert instance.status == "failed"
        spans = obs.trace_of_instance(instance.instance_id)
        (root,) = [span for span in spans if span.name == "rule"]
        assert root.status == "error"
        assert 'eca_instances_total{status="failed"} 1' in \
            obs.render_prometheus()

    def test_durability_metrics_when_journaling(self, tmp_path):
        from repro.durability import DurabilityManager
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=PROGRAM)
        obs = Observability()
        durability = DurabilityManager(str(tmp_path), sync="commit",
                                       checkpoint_interval=10 ** 9)
        engine = ECAEngine(deployment.grh, durability=durability,
                           observability=obs)
        engine.register_rule(RULE)
        deployment.stream.emit(booking_event())
        durability.checkpoint()
        text = obs.render_prometheus()
        assert "eca_journal_records_total" in text
        assert "eca_in_flight_detections 0" in text
        # fsync + checkpoint latency histograms actually observed
        assert "eca_journal_fsync_seconds_count 0" not in text
        assert "eca_checkpoint_seconds_count 1" in text
        engine.durability.close()


class TestSwitches:
    def test_default_engine_has_no_observability(self):
        engine = run_once(None)
        assert engine.observability is None
        assert engine._obs is None

    def test_disabled_observability_records_nothing(self):
        obs = Observability(enabled=False)
        engine = run_once(obs)
        assert engine.instances[-1].status == "completed"
        assert engine._obs is None
        assert obs.trace_ids() == []
        assert obs.render() == ""
        # the handle stays usable: no-op tracer, empty registry render
        span = obs.tracer.begin("x")
        obs.tracer.finish(span)
        assert obs.render_prometheus().endswith("\n")

    def test_shared_registry_between_engines(self):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        run_once(Observability(metrics=registry))
        run_once(Observability(metrics=registry))
        # the second install re-bound the callbacks to the newer engine
        assert "eca_detections_total 1" in registry.render_prometheus()

    def test_trace_buffer_is_bounded(self):
        obs = Observability(trace_buffer=4)
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=PROGRAM)
        engine = ECAEngine(deployment.grh, observability=obs)
        engine.register_rule(RULE)
        for _ in range(5):
            deployment.stream.emit(booking_event())
        assert len(obs.ring) == 4


class TestInstanceLookup:
    def test_trace_of_unknown_instance_is_empty(self):
        obs = Observability()
        run_once(obs)
        assert obs.trace_of_instance(999) == []

    def test_trace_ids_one_per_instance(self):
        obs = Observability()
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=PROGRAM)
        engine = ECAEngine(deployment.grh, observability=obs)
        engine.register_rule(RULE)
        deployment.stream.emit(booking_event())
        deployment.stream.emit(booking_event())
        # one trace per rule instance (event *registration* also traces,
        # as a root of its own — without a rule span)
        rule_traces = {span.trace_id for span in obs.ring.spans()
                       if span.name == "rule"}
        assert len(rule_traces) == 2
        assert len(obs.trace_ids()) == 3
