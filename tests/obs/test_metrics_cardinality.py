"""Regression: label cardinality is capped, drops are counted.

A labelled family whose values come from unbounded input (endpoint
addresses, rule ids replayed from a journal) must not grow the
exposition without limit.  Beyond ``max_label_values`` children, new
label combinations share one hidden overflow instrument: writes still
work, nothing new renders, and every rejected lookup bumps
``eca_metrics_dropped_labels_total``.
"""

import threading

from repro.obs import MetricsRegistry


class TestCardinalityCap:
    def test_counter_family_caps_children(self):
        registry = MetricsRegistry(max_label_values=5)
        family = registry.counter("jobs_total", "jobs", labels=("queue",))
        for n in range(50):
            family.labels(f"q{n}").inc()
        assert len(family.items()) == 5
        assert registry.dropped_labels == 45

    def test_overflow_writes_do_not_render(self):
        registry = MetricsRegistry(max_label_values=2)
        family = registry.counter("hits_total", "hits", labels=("who",))
        family.labels("a").inc()
        family.labels("b").inc()
        family.labels("evil").inc(100)
        text = registry.render_prometheus()
        assert 'hits_total{who="a"} 1' in text
        assert 'hits_total{who="b"} 1' in text
        assert "evil" not in text
        assert "eca_metrics_dropped_labels_total 1" in text

    def test_known_combinations_keep_working_past_the_cap(self):
        registry = MetricsRegistry(max_label_values=1)
        family = registry.counter("x_total", labels=("k",))
        first = family.labels("known")
        family.labels("other")          # absorbed
        assert family.labels("known") is first
        first.inc()
        assert first.value == 1
        assert registry.dropped_labels == 1

    def test_histogram_families_capped_too(self):
        registry = MetricsRegistry(max_label_values=2)
        family = registry.histogram("lat_seconds", "lat", labels=("ep",))
        for n in range(10):
            family.labels(f"ep{n}").observe(0.01)
        text = registry.render_prometheus()
        assert text.count("lat_seconds_count") == 2
        assert registry.dropped_labels == 8

    def test_uncapped_registry_opts_out(self):
        registry = MetricsRegistry(max_label_values=None)
        family = registry.counter("y_total", labels=("k",))
        for n in range(2000):
            family.labels(str(n)).inc()
        assert len(family.items()) == 2000
        assert registry.dropped_labels == 0

    def test_overflow_instrument_is_shared_and_thread_safe(self):
        registry = MetricsRegistry(max_label_values=1)
        family = registry.counter("z_total", labels=("k",))
        family.labels("keeper")

        def hammer(tag):
            for _ in range(1000):
                family.labels(tag).inc()

        threads = [threading.Thread(target=hammer, args=(f"t{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # all four tags collapsed onto one overflow child
        overflow = family.labels("t0")
        assert overflow is family.labels("t3")
        assert overflow.value == 4000
        assert len(family.items()) == 1
