"""Structured JSON-lines logging and its trace correlation."""

import io
import json
import logging

import pytest

from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event, fleet_graph
from repro.obs import Observability, Tracer
from repro.obs.ops import StructuredLogger
from repro.services import DATALOG_LANG, standard_deployment

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
ACT = 'xmlns:act="http://www.semwebtech.org/languages/2006/actions"'

PROGRAM = 'ok("yes").'

RULE = f"""
<eca:rule {ECA} id="logged">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" to="{{To}}"/>
  </eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">ok(X)</dl:query>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="offers"><offer x="{{X}}"/></act:send>
  </eca:action>
</eca:rule>
"""


def records(stream):
    return [json.loads(line) for line in
            stream.getvalue().splitlines() if line]


class TestStructuredLogger:
    def test_records_are_one_json_object_per_line(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, clock=lambda: 12.5)
        log.info("engine.started", rules=3)
        log.warning("grh.request.failed", error="boom")
        first, second = records(stream)
        assert first == {"ts": 12.5, "level": "info",
                         "event": "engine.started", "rules": 3}
        assert second["level"] == "warning"
        assert second["error"] == "boom"
        assert log.emitted == 2
        log.close()

    def test_requires_exactly_one_destination(self):
        with pytest.raises(ValueError):
            StructuredLogger()
        with pytest.raises(ValueError):
            StructuredLogger(path="/tmp/x.log", stream=io.StringIO())

    def test_level_gating_drops_before_formatting(self):
        stream = io.StringIO()
        calls = []
        log = StructuredLogger(stream=stream, level=logging.WARNING,
                               clock=lambda: calls.append(1) or 0.0)
        log.debug("quiet")
        log.info("quiet")
        assert calls == [] and log.emitted == 0  # clock never consulted
        log.warning("loud")
        assert len(records(stream)) == 1
        assert not log.enabled_for(logging.DEBUG)
        log.close()

    def test_bound_context_nests_and_unwinds(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream)
        with log.bound(rule_uri="r1"):
            log.info("outer")
            with log.bound(rule_uri="r2", instance_id=7):
                log.info("inner")
            log.info("outer.again")
        log.info("outside")
        outer, inner, again, outside = records(stream)
        assert outer["rule_uri"] == "r1" and "instance_id" not in outer
        assert inner["rule_uri"] == "r2" and inner["instance_id"] == 7
        assert again["rule_uri"] == "r1"
        assert "rule_uri" not in outside
        log.close()

    def test_trace_context_joins_log_to_span(self):
        stream = io.StringIO()
        tracer = Tracer()
        log = StructuredLogger(stream=stream, tracer=tracer)
        rule_span = tracer.begin("rule",
                                 attributes={"rule": "uri:r", "instance": 4})
        phase = tracer.begin("phase:query")
        log.info("inside.phase")
        tracer.finish(phase)
        tracer.finish(rule_span)
        log.info("outside.trace")
        inside, outside = records(stream)
        assert inside["trace_id"] == rule_span.trace_id
        assert inside["span_id"] == phase.span_id
        assert inside["rule_uri"] == "uri:r"
        assert inside["instance_id"] == 4
        assert "trace_id" not in outside
        log.close()

    def test_rotates_at_the_size_cap(self, tmp_path):
        path = tmp_path / "engine.log"
        log = StructuredLogger(path=str(path), max_bytes=200, backups=2)
        for index in range(20):
            log.info("fill", index=index, pad="x" * 40)
        log.close()
        assert (tmp_path / "engine.log.1").exists()
        # every surviving line is still intact JSON
        for name in ("engine.log", "engine.log.1"):
            for line in (tmp_path / name).read_text().splitlines():
                assert json.loads(line)["event"] == "fill"

    def test_unserializable_fields_degrade_not_raise(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream)
        log.info("odd", payload=object())
        (record,) = records(stream)
        assert record["payload"].startswith("<object object")
        log.close()


class TestEngineLogging:
    def run_engine(self, stream, rule=RULE, **obs_kwargs):
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=PROGRAM)
        obs = Observability(log_stream=stream, **obs_kwargs)
        engine = ECAEngine(deployment.grh, observability=obs)
        engine.register_rule(rule)
        deployment.stream.emit(booking_event())
        return engine, obs

    def test_instance_lifecycle_is_logged_with_trace_ids(self):
        stream = io.StringIO()
        engine, obs = self.run_engine(stream)
        assert engine.instances[-1].status == "completed"
        finished = [r for r in records(stream)
                    if r["event"] == "engine.instance.finished"]
        assert len(finished) == 1
        record = finished[0]
        assert record["status"] == "completed"
        assert record["actions"] == 1
        # correlated: the record's trace exists in the ring buffer
        assert record["trace_id"] in obs.trace_ids()
        assert record["instance_id"] == \
            engine.instances[-1].instance_id

    def test_phase_logs_need_debug_level(self):
        quiet, chatty = io.StringIO(), io.StringIO()
        self.run_engine(quiet)
        self.run_engine(chatty, log_level="DEBUG")
        assert not [r for r in records(quiet)
                    if r["event"] == "engine.phase"]
        phases = [r["phase"] for r in records(chatty)
                  if r["event"] == "engine.phase"]
        assert "query" in phases and "action" in phases

    def test_failed_instance_logs_a_warning_with_error(self):
        stream = io.StringIO()
        bad = RULE.replace('ok(X)', ')( not datalog').replace(
            '"logged"', '"doomed"').replace(' x="{X}"', '')
        engine, _ = self.run_engine(stream, rule=bad)
        assert engine.instances[-1].status == "failed"
        (record,) = [r for r in records(stream)
                     if r["event"] == "engine.instance.finished"]
        assert record["level"] == "warning"
        assert record["error"]
