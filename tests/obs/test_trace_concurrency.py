"""Concurrency regressions: exporters and samplers under parallel load.

The GRH dispatches from the engine thread while admin scrapes, metric
scrapes and remote-span adoption can touch the same exporters from
other threads.  These tests hammer the shared structures from several
threads at once; before the ring buffer's export path took the readers'
lock, the reader side raised ``RuntimeError: deque mutated during
iteration`` under exactly this load.
"""

import threading

from repro.obs import RingBufferExporter, Span, Tracer
from repro.obs.ops import ProbabilisticSampler, TailSampler

THREADS = 8
SPANS_PER_THREAD = 300


def hammer(worker, threads=THREADS):
    errors = []

    def wrapped(tag):
        try:
            worker(tag)
        except Exception as exc:
            errors.append(exc)

    pool = [threading.Thread(target=wrapped, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return errors


class TestRingBufferConcurrency:
    def test_parallel_writers_and_readers(self):
        ring = RingBufferExporter(capacity=256)
        tracer = Tracer([ring])
        done = threading.Event()
        errors = []

        def reader():
            try:
                while not done.is_set():
                    for span in ring.spans():
                        assert span.name == "rule"
                    ring.trace_ids()
            except Exception as exc:
                errors.append(exc)

        scraper = threading.Thread(target=reader)
        scraper.start()
        try:
            def writer(tag):
                for _ in range(SPANS_PER_THREAD):
                    span = tracer.begin("rule")
                    tracer.finish(span)

            errors.extend(hammer(writer))
        finally:
            done.set()
            scraper.join()
        assert errors == []
        assert tracer.finished == THREADS * SPANS_PER_THREAD
        assert len(ring.spans()) == 256  # capped, newest retained

    def test_parallel_head_sampled_tracers_count_consistently(self):
        ring = RingBufferExporter(capacity=100_000)
        tracer = Tracer([ring], sampler=ProbabilisticSampler(0.5, seed=3))

        def worker(tag):
            for _ in range(SPANS_PER_THREAD):
                span = tracer.begin("rule")
                tracer.finish(span)

        assert hammer(worker) == []
        total = THREADS * SPANS_PER_THREAD
        assert tracer.started == total
        assert tracer.finished == total
        exported = len(ring.spans())
        assert exported + tracer.unsampled == total
        assert 0 < exported < total  # both verdicts actually occurred


class TestTailSamplerConcurrency:
    def test_parallel_traces_are_judged_exactly_once(self):
        ring = RingBufferExporter(capacity=100_000)
        tail = TailSampler(probability=0.0, downstream=[ring],
                           max_buffered_traces=100_000)

        def worker(tag):
            for index in range(SPANS_PER_THREAD):
                trace = f"t{tag}-{index}"
                status = "error" if index % 3 == 0 else "ok"
                child = Span("phase", trace, "c", "r", 0.0)
                child.ended_at, child.status = 0.0, status
                tail.export(child)
                root = Span("rule", trace, "r", None, 0.0)
                root.ended_at, root.status = 0.0, status
                tail.export(root)

        assert hammer(worker) == []
        total = THREADS * SPANS_PER_THREAD
        assert tail.kept + tail.dropped == total
        assert tail.evicted == 0
        assert tail.pending_traces() == 0
        erroring = THREADS * len(range(0, SPANS_PER_THREAD, 3))
        assert tail.kept == erroring
        assert len(ring.spans()) == 2 * erroring
