"""The sampling profiler: classification, window, export, lifecycle."""

import threading
import time

import pytest

from repro.obs import (Observability, PROFILE_SUBSYSTEMS, SamplingProfiler,
                       subsystem_of)


def _synthetic_worker(module: str, stop: threading.Event):
    """A thread spinning inside a function whose module name claims an
    engine subsystem, so samples classify deterministically."""
    source = ("def spin(stop):\n"
              "    while not stop.is_set():\n"
              "        sum(range(200))\n")
    namespace = {"__name__": module}
    exec(source, namespace)
    thread = threading.Thread(target=namespace["spin"], args=(stop,),
                              daemon=True)
    thread.start()
    return thread


class TestSubsystemClassification:
    @pytest.mark.parametrize("module,tag", [
        ("repro.runtime.pool", "runtime"),
        ("repro.grh.handler", "grh"),
        ("repro.match.network", "match"),
        ("repro.durability.journal", "durability"),
        ("repro.services.transports", "services"),
        ("repro.obs.trace", "obs"),
        ("repro.core.engine", "engine"),
        ("repro.domain.workload", "repro"),
        ("json.decoder", "external"),
        (None, "external"),
    ])
    def test_module_maps_to_subsystem(self, module, tag):
        assert subsystem_of(module) == tag
        assert tag in PROFILE_SUBSYSTEMS

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(window=0.5)


class TestSampling:
    def test_samples_attribute_to_the_busy_subsystem(self):
        stop = threading.Event()
        thread = _synthetic_worker("repro.match.synthetic", stop)
        profiler = SamplingProfiler(hz=200.0)
        try:
            with profiler:
                time.sleep(0.3)
        finally:
            stop.set()
            thread.join(1)
        view = profiler.snapshot()
        assert view["samples"] > 10
        # the spinning thread is sampled repeatedly and classified
        # (other suites may leave daemon threads behind, so assert
        # presence, not share)
        assert view["subsystems"].get("match", {}).get("samples", 0) > 5
        assert any("repro.match.synthetic:spin" in entry["stack"]
                   for entry in view["top_stacks"])

    def test_folded_lines_are_flamegraph_format(self):
        stop = threading.Event()
        thread = _synthetic_worker("repro.grh.synthetic", stop)
        profiler = SamplingProfiler(hz=200.0)
        try:
            with profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            thread.join(1)
        lines = profiler.folded_lines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and ";" not in count
            assert int(count) >= 1
        assert any("repro.grh.synthetic:spin" in line for line in lines)

    def test_window_is_bounded(self):
        profiler = SamplingProfiler(hz=50.0, window=2.0)
        assert profiler._buckets.maxlen == 2

    def test_capture_blocks_and_stops_transient_sampler(self):
        profiler = SamplingProfiler(hz=200.0)
        assert not profiler.running
        started = time.monotonic()
        view = profiler.capture(0.2)
        assert time.monotonic() - started >= 0.2
        assert view["captured_seconds"] == pytest.approx(0.2)
        assert view["samples_total"] > 0
        assert not profiler.running          # transient: stopped again

    def test_capture_leaves_a_running_sampler_running(self):
        profiler = SamplingProfiler(hz=200.0)
        with profiler:
            profiler.capture(0.1)
            assert profiler.running

    def test_overhead_is_self_measured_and_small(self):
        profiler = SamplingProfiler(hz=99.0)
        with profiler:
            time.sleep(0.5)
        overhead = profiler.overhead()
        assert 0.0 <= overhead < 0.03
        assert profiler.ticks > 10


class TestLifecycle:
    def test_start_is_idempotent_stop_joins(self):
        profiler = SamplingProfiler(hz=100.0)
        profiler.start()
        thread = profiler._thread
        profiler.start()
        assert profiler._thread is thread
        profiler.stop()
        assert not profiler.running
        profiler.stop()                      # idempotent too

    def test_disabled_means_no_thread(self):
        """Off is free: no profiler object, no sampler thread."""
        before = {t.name for t in threading.enumerate()}
        obs = Observability()
        assert obs.profiler is None
        after = {t.name for t in threading.enumerate()}
        assert not any("profiler" in name for name in after - before)
        obs.close()

    def test_observability_starts_and_stops_the_profiler(self):
        from repro.core import ECAEngine
        from repro.services import standard_deployment

        deployment = standard_deployment()
        obs = Observability(profiler=SamplingProfiler(hz=50.0))
        engine = ECAEngine(deployment.grh, observability=obs)
        try:
            assert obs.profiler.running
            rendered = obs.render_prometheus()
            assert "eca_profile_samples_total" in rendered
            assert "eca_profile_overhead_fraction" in rendered
        finally:
            engine.shutdown(5)
            obs.close()
        assert not obs.profiler.running
