"""Span stitching across a real HTTP round-trip, and /metrics scraping.

The deployment mirrors ``examples/distributed_services.py``: events,
tests and actions co-located with the engine; the XQ-lite query node
behind a real localhost HTTP endpoint (framework-aware, POSTed
``log:request`` messages); the eXist-like node behind plain GETs
(framework-unaware).  One booking then drives the paper's car-rental
rule over the wire — and must come back as ONE trace: the remote node's
server-side spans ride the ``log:spans`` response annotation and are
adopted under the GRH request spans that caused them (PROTOCOL.md §8).
"""

import urllib.request

import pytest

from repro.actions import ACTION_NS, ActionRuntime
from repro.conditions import TEST_NS
from repro.core import ECAEngine
from repro.domain import (CAR_RENTAL_RULE, booking_event, classes_document,
                          fleet_document, persons_document)
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry)
from repro.obs import Observability
from repro.services import (ActionExecutionService, AtomicEventService,
                            EXIST_LANG, ExistLikeService, HttpServiceServer,
                            HybridTransport, TestLanguageService, XQ_LANG,
                            XQService)


@pytest.fixture
def distributed():
    """(engine, obs, stream, xq_url) with the XQ node over real HTTP."""
    obs = Observability()
    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, HybridTransport())
    stream = EventStream()
    runtime = ActionRuntime(event_stream=stream)

    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic-events"),
                    atomic)
    grh.add_service(LanguageDescriptor(TEST_NS, "test", "test"),
                    TestLanguageService())
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(runtime))

    xq_node = XQService({"persons.xml": persons_document(),
                         "fleet.xml": fleet_document()})
    exist_node = ExistLikeService({"classes.xml": classes_document(),
                                   "fleet.xml": fleet_document()})
    xq_server = HttpServiceServer(aware_handler=xq_node.handle,
                                  metrics=obs.metrics)
    exist_server = HttpServiceServer(opaque_handler=exist_node.execute)
    xq_url = xq_server.start()
    exist_url = exist_server.start()
    grh.add_remote_language(
        LanguageDescriptor(XQ_LANG, "query", "xquery-lite"), xq_url)
    grh.add_remote_language(
        LanguageDescriptor(EXIST_LANG, "query", "exist-like",
                           framework_aware=False), exist_url)

    engine = ECAEngine(grh, observability=obs)
    try:
        yield engine, obs, stream, xq_url
    finally:
        xq_server.stop()
        exist_server.stop()


class TestHttpStitching:
    def test_one_trace_spans_the_wire(self, distributed):
        engine, obs, stream, _ = distributed
        rule_id = engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())

        (instance,) = engine.instances_of(rule_id)
        assert instance.status == "completed"
        spans = obs.trace_of_instance(instance.instance_id)
        assert len({span.trace_id for span in spans}) == 1

        (root,) = [span for span in spans if span.name == "rule"]
        assert root.parent_id is None and root.attributes["rule"] == rule_id

        # the XQ node ran in another process-boundary context (real HTTP
        # POST); its server-side span came back in the response and was
        # adopted into the same trace, under the grh.request that sent it
        remote = [span for span in spans if span.remote]
        by_id = {span.span_id: span for span in spans}
        assert all(span.name.startswith("service:") for span in remote)
        # the propagation rides the log: envelope, so the co-located
        # (but still serialized) action service annotates spans too;
        # the XQ node's crossed an actual HTTP boundary
        over_http = [span for span in remote
                     if span.attributes.get("service") == "xq-lite"]
        assert over_http, "no server-side span crossed the HTTP boundary"
        for span in over_http:
            assert span.name == "service:query"
            parent = by_id[span.parent_id]
            assert parent.name == "grh.request"
            assert parent.attributes.get("language") == "xquery-lite"
            # the remote duration is bounded by the observed round-trip
            assert 0.0 <= span.duration <= parent.duration

    def test_unaware_node_gets_client_side_fetch_spans(self, distributed):
        engine, obs, stream, _ = distributed
        rule_id = engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        (instance,) = engine.instances_of(rule_id)
        spans = obs.trace_of_instance(instance.instance_id)
        # the eXist-like node speaks no log: protocol, so there is no
        # envelope to carry a traceparent: client-side spans only
        fetches = [span for span in spans if span.name == "grh.fetch"]
        assert fetches
        assert all(not span.remote for span in fetches)
        assert all(span.attributes.get("language") == "exist-like"
                   for span in fetches)

    def test_rendered_trace_shows_the_remote_hop(self, distributed):
        engine, obs, stream, _ = distributed
        engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        instance = engine.instances[-1]
        from repro.obs import render_trace
        text = render_trace(obs.trace_of_instance(instance.instance_id))
        assert "service:query" in text and "remote" in text


class TestMetricsRoute:
    def test_scrape_over_http(self, distributed):
        engine, obs, stream, xq_url = distributed
        engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        with urllib.request.urlopen(xq_url + "metrics", timeout=5) as reply:
            assert reply.status == 200
            content_type = reply.headers.get("Content-Type", "")
            body = reply.read().decode("utf-8")
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "eca_rule_instances_total 1" in body
        # the car-rental rule has three query components (Figs. 8-10)
        assert 'eca_phase_latency_seconds_count{phase="query"} 3' in body

    def test_plain_query_route_still_works(self, distributed):
        # /metrics must not shadow the aware POST or lifecycle routes
        engine, obs, stream, xq_url = distributed
        engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        assert engine.instances[-1].status == "completed"

    def test_no_registry_no_route(self):
        with HttpServiceServer(opaque_handler=lambda q: "<r/>") as url:
            with urllib.request.urlopen(url + "metrics?query=x",
                                        timeout=5) as reply:
                # falls through to the opaque handler instead of 404
                assert reply.read() == b"<r/>"
