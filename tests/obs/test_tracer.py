"""The tracing core: spans, tracers, exporters, traceparent, markup."""

import json
import threading

from repro.obs import (JsonlExporter, NOOP_TRACER, NoopSpan,
                       RingBufferExporter, Tracer, format_traceparent,
                       parse_traceparent, render_trace, span_to_dict,
                       spans_to_xml, xml_to_span_dicts)
from repro.xmlmodel import parse, serialize


class TestSpanLifecycle:
    def test_begin_finish_records_timing(self):
        ticks = iter([1.0, 3.5])
        tracer = Tracer(clock=lambda: next(ticks))
        span = tracer.begin("work")
        tracer.finish(span)
        assert span.started_at == 1.0
        assert span.ended_at == 3.5
        assert span.duration == 2.5
        assert span.status == "ok"

    def test_finish_status_override(self):
        tracer = Tracer()
        span = tracer.begin("work")
        tracer.finish(span, status="error")
        assert span.status == "error"

    def test_attributes(self):
        tracer = Tracer()
        span = tracer.begin("work", {"a": 1})
        span.set_attribute("b", 2)
        tracer.finish(span)
        assert span.attributes == {"a": 1, "b": 2}

    def test_ids_are_well_formed_and_unique(self):
        tracer = Tracer()
        spans = [tracer.begin("s", parent=None) for _ in range(100)]
        trace_ids = {span.trace_id for span in spans}
        span_ids = {span.span_id for span in spans}
        assert len(trace_ids) == 100 and len(span_ids) == 100
        for span in spans:
            assert len(span.trace_id) == 32
            assert len(span.span_id) == 16
            int(span.trace_id, 16), int(span.span_id, 16)


class TestAncestry:
    def test_children_inherit_trace_and_parent(self):
        tracer = Tracer()
        root = tracer.begin("root", parent=None)
        child = tracer.begin("child")
        grandchild = tracer.begin("grandchild")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        tracer.finish(grandchild)
        tracer.finish(child)
        tracer.finish(root)

    def test_finish_restores_predecessor(self):
        tracer = Tracer()
        root = tracer.begin("root", parent=None)
        child = tracer.begin("child")
        assert tracer.current() is child
        tracer.finish(child)
        assert tracer.current() is root
        tracer.finish(root)
        assert tracer.current() is None

    def test_explicit_none_parent_forces_new_trace(self):
        tracer = Tracer()
        first = tracer.begin("a", parent=None)
        second = tracer.begin("b", parent=None)
        assert second.trace_id != first.trace_id
        assert second.parent_id is None

    def test_current_span_is_thread_local(self):
        tracer = Tracer()
        main_root = tracer.begin("main", parent=None)
        seen = {}

        def worker():
            # the other thread does not inherit this thread's ancestry
            seen["before"] = tracer.current()
            span = tracer.begin("worker")
            seen["trace"] = span.trace_id
            tracer.finish(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["trace"] != main_root.trace_id
        tracer.finish(main_root)


class TestTraceparent:
    def test_round_trip(self):
        trace_id, span_id = "ab" * 16, "cd" * 8
        value = format_traceparent(trace_id, span_id)
        assert value == f"00-{'ab' * 16}-{'cd' * 8}-01"
        assert parse_traceparent(value) == (trace_id, span_id)

    def test_span_property_round_trips(self):
        tracer = Tracer()
        span = tracer.begin("s")
        assert parse_traceparent(span.traceparent) == \
            (span.trace_id, span.span_id)
        tracer.finish(span)

    def test_malformed_values_yield_none(self):
        for bad in (None, "", "xx", "00-short-cd-01",
                    "00-" + "g" * 32 + "-" + "cd" * 8 + "-01",
                    "00-" + "ab" * 16 + "-" + "zz" * 8 + "-01",
                    "ab" * 16):
            assert parse_traceparent(bad) is None


class TestAdoption:
    def test_adopt_anchors_remote_span_locally(self):
        ticks = iter([100.0])
        tracer = Tracer(clock=lambda: next(ticks))
        span = tracer.adopt({"trace": "ab" * 16, "id": "cd" * 8,
                             "parent": "ef" * 8, "name": "service:query",
                             "duration": 0.25, "status": "ok",
                             "attributes": {"service": "xq"}})
        assert span.remote is True
        assert span.started_at == 99.75 and span.ended_at == 100.0
        assert span.duration == 0.25
        assert span.parent_id == "ef" * 8

    def test_adopt_rejects_malformed(self):
        tracer = Tracer()
        assert tracer.adopt({"id": "x"}) is None
        assert tracer.adopt({"trace": "t", "id": "i", "name": "n",
                             "duration": "not-a-number"}) is None


class TestExporters:
    def test_ring_buffer_keeps_last_n(self):
        ring = RingBufferExporter(capacity=3)
        tracer = Tracer([ring])
        for index in range(5):
            tracer.finish(tracer.begin(f"s{index}", parent=None))
        assert [span.name for span in ring.spans()] == ["s2", "s3", "s4"]
        assert len(ring) == 3

    def test_ring_buffer_trace_lookup(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        root = tracer.begin("root", parent=None)
        tracer.finish(tracer.begin("child"))
        tracer.finish(root)
        other = tracer.begin("other", parent=None)
        tracer.finish(other)
        assert [span.name for span in ring.trace(root.trace_id)] == \
            ["child", "root"]
        assert ring.trace_ids() == [root.trace_id, other.trace_id]

    def test_jsonl_exporter_writes_one_line_per_span(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        exporter = JsonlExporter(path)
        tracer = Tracer([exporter])
        span = tracer.begin("work", {"k": "v"}, parent=None)
        tracer.finish(span)
        exporter.close()
        (line,) = open(path).read().splitlines()
        record = json.loads(line)
        assert record["name"] == "work"
        assert record["trace"] == span.trace_id
        assert record["attributes"] == {"k": "v"}

    def test_counters(self):
        tracer = Tracer()
        span = tracer.begin("a")
        assert tracer.started == 1 and tracer.finished == 0
        tracer.finish(span)
        assert tracer.finished == 1


class TestNoop:
    def test_noop_tracer_is_inert(self):
        span = NOOP_TRACER.begin("anything", {"a": 1})
        assert isinstance(span, NoopSpan)
        span.set_attribute("b", 2)
        assert span.attributes == {}
        NOOP_TRACER.finish(span, status="error")
        assert NOOP_TRACER.current() is None
        assert NOOP_TRACER.adopt({"trace": "t"}) is None

    def test_noop_span_has_no_traceparent(self):
        # callers guard on ``span.traceparent`` before stamping envelopes
        assert NOOP_TRACER.begin("x").traceparent is None


class TestRenderTrace:
    def _finished(self, tracer, name, parent=...):
        span = tracer.begin(name, parent=parent)
        tracer.finish(span)
        return span

    def test_indented_tree(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        root = tracer.begin("rule", parent=None)
        child = tracer.begin("phase:query")
        self._finished(tracer, "grh.request")
        tracer.finish(child)
        tracer.finish(root)
        text = render_trace(ring.trace(root.trace_id))
        lines = text.splitlines()
        assert lines[0].startswith("rule ")
        assert lines[1].startswith("  phase:query ")
        assert lines[2].startswith("    grh.request ")

    def test_orphans_render_as_roots(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        root = tracer.begin("rule", parent=None)
        tracer.finish(tracer.begin("child"))
        tracer.finish(root)
        spans = [span for span in ring.trace(root.trace_id)
                 if span.name == "child"]  # parent evicted / not retained
        assert render_trace(spans).startswith("child ")


class TestSpansMarkup:
    def test_xml_round_trip(self):
        records = [{"trace": "ab" * 16, "id": "cd" * 8, "parent": "ef" * 8,
                    "name": "service:query", "status": "error",
                    "duration": 0.125, "attributes": {"service": "xq"}}]
        element = parse(serialize(spans_to_xml(records)))
        (back,) = xml_to_span_dicts(element)
        assert back["trace"] == "ab" * 16
        assert back["id"] == "cd" * 8
        assert back["parent"] == "ef" * 8
        assert back["name"] == "service:query"
        assert back["status"] == "error"
        assert back["duration"] == 0.125
        assert back["attributes"] == {"service": "xq"}
        assert back["remote"] is True

    def test_malformed_entries_are_skipped(self):
        from repro.xmlmodel import LOG_NS
        element = parse(
            f'<log:spans xmlns:log="{LOG_NS}">'
            '<log:span trace="t" id="i" name="n" duration="0.1"/>'
            '<log:span trace="t2"/>'   # no id, no name: skipped
            '<log:span trace="t3" id="i3" name="n3" duration="oops"/>'
            '</log:spans>')
        records = xml_to_span_dicts(element)
        assert [record["name"] for record in records] == ["n", "n3"]
        assert records[1]["duration"] == 0.0   # bad duration degrades to 0

    def test_span_to_dict_includes_remote_flag(self):
        tracer = Tracer()
        span = tracer.adopt({"trace": "t" * 32, "id": "i" * 16,
                             "name": "remote", "duration": 0.0})
        assert span_to_dict(span)["remote"] is True
