"""The live introspection/health surface: probes and JSON views."""

import json
import os
import threading
import urllib.error
import urllib.request

from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event, fleet_graph
from repro.durability import JOURNAL_NAME, SimulatedCrash
from repro.obs import Observability
from repro.obs.ops import (INTROSPECTION_ROUTES, IntrospectionSurface,
                           ObsAdminServer)
from repro.services import DATALOG_LANG, standard_deployment

from ..durability.harness import CrashWorld, CrashingJournal, RULES, SCRIPT

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
ACT = 'xmlns:act="http://www.semwebtech.org/languages/2006/actions"'

PROGRAM = 'ok("yes").'

RULE = f"""
<eca:rule {ECA} id="offers">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" to="{{To}}"/>
  </eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">ok(X)</dl:query>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="offers"><offer x="{{X}}"/></act:send>
  </eca:action>
</eca:rule>
"""


def http_get(url):
    """GET returning (status, parsed JSON) — 4xx/5xx included."""
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def build_engine(observability=None, events=1):
    deployment = standard_deployment(graph=fleet_graph(),
                                     datalog_program=PROGRAM)
    engine = ECAEngine(deployment.grh, observability=observability)
    engine.register_rule(RULE)
    for _ in range(events):
        deployment.stream.emit(booking_event())
    return deployment, engine


class TestSurfaceViews:
    def test_healthz_is_unconditionally_ok(self):
        _, engine = build_engine(events=0)
        assert IntrospectionSurface(engine).healthz() == \
            (200, {"status": "ok"})

    def test_readyz_is_ready_without_durability(self):
        _, engine = build_engine(events=0)
        status, payload = IntrospectionSurface(engine).readyz()
        assert status == 200
        assert payload["status"] == "ready"
        assert payload["checks"] == {"recovery_complete": True}
        assert payload["breakers"]["open"] == 0

    def test_rules_view_reflects_the_rule_table(self):
        _, engine = build_engine(events=2)
        payload = IntrospectionSurface(engine).rules()
        (entry,) = payload["rules"]
        assert entry["rule"] == "offers"
        assert entry["queries"] == 1 and entry["actions"] == 1
        assert entry["has_test"] is False
        assert entry["retained_instances"] == 2
        assert payload["stats"]["completed"] == 2

    def test_instances_view_pages_and_filters(self):
        _, engine = build_engine(events=5)
        surface = IntrospectionSurface(engine)
        payload = surface.instances()
        assert payload["total_retained"] == 5
        assert payload["returned"] == 5
        entry = payload["instances"][-1]
        assert entry["rule"] == "offers"
        assert entry["status"] == "completed"
        assert entry["stages"] == ["event", "query 1", "action"]
        # limit returns the most recent N
        limited = surface.instances(limit=2)
        assert limited["returned"] == 2
        assert limited["instances"][-1]["id"] == entry["id"]
        # filtering by an unknown rule is empty, not an error
        assert surface.instances(rule="nope")["total_retained"] == 0

    def test_breakers_and_dead_letters_views(self):
        _, engine = build_engine(events=1)
        surface = IntrospectionSurface(engine)
        breakers = surface.breakers()
        assert breakers["dead_letters"] == 0
        assert breakers["attempts"] > 0
        letters = surface.dead_letters()
        assert letters == {"parked": 0, "dropped": 0, "letters": []}

    def test_journal_view_without_durability(self):
        _, engine = build_engine(events=0)
        assert IntrospectionSurface(engine).journal() == {"durable": False}

    def test_unknown_route_is_a_404(self):
        _, engine = build_engine(events=0)
        surface = IntrospectionSurface(engine)
        # the surface claims the whole /introspect/ namespace so the
        # HTTP layer routes unknown sub-paths here for a JSON 404
        # instead of falling through to a co-hosted service handler
        assert surface.handles("/introspect/nope")
        assert not surface.handles("/other")
        status, _ = surface.handle("/introspect/nope")
        assert status == 404


class TestReadiness:
    """/readyz across crash recovery — the ISSUE's acceptance flip."""

    def crash_mid_script(self, directory):
        world = CrashWorld(directory)
        try:
            # fuse 7 dies on a completion write: one detection is
            # journaled as started but never finished, so the rebooted
            # engine has in-flight work to replay
            journal = CrashingJournal(
                os.path.join(directory, JOURNAL_NAME), fuse=7, sync="none")
            world.boot(journal=journal)
            world.setup_rules(RULES)
            world.run_script(SCRIPT)
        except SimulatedCrash:
            world.crash()
            return world
        raise AssertionError("scenario finished without crashing")

    def test_readyz_flips_from_503_to_200_across_recover(self, tmp_path):
        world = self.crash_mid_script(str(tmp_path / "durable"))
        # reboot WITHOUT replay: in-flight work is still unaccounted for,
        # so the engine must refuse traffic
        world.boot(replay=False)
        status, payload = IntrospectionSurface(world.engine).readyz()
        assert status == 503
        assert payload["status"] == "unready"
        assert payload["checks"]["recovery_complete"] is False
        assert payload["checks"]["journal_writable"] is True
        world.crash()
        # reboot WITH the full ECAEngine.recover sequence: replay done,
        # checkpoint written, the engine may take traffic again
        world.boot(replay=True)
        status, payload = IntrospectionSurface(world.engine).readyz()
        assert status == 200
        assert payload["checks"] == {"recovery_complete": True,
                                     "journal_writable": True}

    def test_closed_journal_turns_a_ready_engine_unready(self, tmp_path):
        world = CrashWorld(str(tmp_path / "durable"))
        world.boot(replay=True)
        surface = IntrospectionSurface(world.engine)
        assert surface.readyz()[0] == 200
        journal_view = surface.journal()
        assert journal_view["durable"] is True
        assert journal_view["writable"] is True
        world.engine.durability.journal.close()
        status, payload = surface.readyz()
        assert status == 503
        assert payload["checks"]["journal_writable"] is False


class TestAdminServer:
    def test_all_routes_serve_json_over_http(self):
        obs = Observability()
        _, engine = build_engine(observability=obs, events=3)
        with ObsAdminServer(engine) as base:
            for route in INTROSPECTION_ROUTES:
                status, payload = http_get(base.rstrip("/") + route)
                assert status == 200, route
                assert isinstance(payload, dict), route
            status, payload = http_get(
                base + "introspect/instances?rule=offers&limit=2")
            assert payload["returned"] == 2
            # the admin port co-serves the Prometheus exposition
            with urllib.request.urlopen(base + "metrics") as response:
                assert b"eca_rule_instances_total 3" in response.read()

    def test_admin_server_works_without_observability(self):
        _, engine = build_engine(events=1)
        with ObsAdminServer(engine) as base:
            assert http_get(base + "healthz") == (200, {"status": "ok"})
            status, _ = http_get(base + "introspect/rules")
            assert status == 200

    def test_concurrent_scrapes_during_evaluation(self):
        obs = Observability()
        deployment, engine = build_engine(observability=obs, events=1)
        failures = []

        def scrape(base, count=25):
            for index in range(count):
                route = INTROSPECTION_ROUTES[index %
                                             len(INTROSPECTION_ROUTES)]
                try:
                    status, payload = http_get(base.rstrip("/") + route)
                    if status >= 500 or not isinstance(payload, dict):
                        failures.append((route, status))
                except Exception as exc:  # pragma: no cover
                    failures.append((route, repr(exc)))

        with ObsAdminServer(engine) as base:
            scrapers = [threading.Thread(target=scrape, args=(base,))
                        for _ in range(4)]
            for thread in scrapers:
                thread.start()
            for _ in range(40):  # keep the engine mutating state
                deployment.stream.emit(booking_event())
            for thread in scrapers:
                thread.join()
        assert failures == []
        assert engine.stats["completed"] == 41
