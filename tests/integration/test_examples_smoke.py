"""The shipped examples must run end to end and print their key results."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Welcome back, Ada!" in output
        assert "Welcome back, Grace!" in output
        assert "Bob" not in output.split("front-desk mailbox:")[1] \
            .split("engine statistics")[0]

    def test_car_rental_prints_paper_trace(self):
        output = run_example("car_rental.py")
        # the binding tables of Figs. 6-11
        assert "John Doe" in output
        assert "Golf" in output and "Passat" in output
        assert "offer: Polo (class B)" in output
        # the Rome booking yields two offers
        assert "offer: Golf (class B) in Rome" in output
        assert "offer: Laguna (class C) in Rome" in output

    def test_travel_monitoring(self):
        output = run_example("travel_monitoring.py")
        assert "churn" in output
        assert "apology" in output
        assert "vouchers raised back onto the stream: 2" in output

    def test_distributed_services(self):
        output = run_example("distributed_services.py")
        assert "offer over the wire: Polo (class B)" in output
        assert "HTTP services stopped." in output

    def test_semantic_fleet(self):
        output = run_example("semantic_fleet.py")
        assert "Polo reserved for John Doe" in output
        assert "reservedFor" in output
        assert "status = dead" in output
