"""Failure injection: misbehaving services must not corrupt the engine.

The paper's services are autonomous — they can fail, lie about message
shapes, or disappear.  The engine must record the failure on the affected
instance and keep serving other rules and later events.
"""

import pytest

from repro.bindings import Relation
from repro.core import ECAEngine
from repro.grh import (GRHError, LanguageDescriptor, error_message,
                       ok_message)
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS, parse

ECA = f'xmlns:eca="{ECA_NS}"'
FLAKY_LANG = "urn:test:flaky"


class FlakyService:
    """A query service scripted to fail in configurable ways."""

    def __init__(self):
        self.mode = "ok"
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if self.mode == "error":
            return error_message("storage exploded")
        if self.mode == "crash":
            raise RuntimeError("segfault (simulated)")
        if self.mode == "wrong-shape":
            return parse("<unexpected/>")
        if self.mode == "garbage-answers":
            return parse('<log:answers xmlns:log='
                         '"http://www.semwebtech.org/languages/2006/log">'
                         "<log:answer><log:variable>nameless"
                         "</log:variable></log:answer></log:answers>")
        from repro.bindings import relation_to_answers
        return relation_to_answers(Relation([{"Q": "fine"}]))


def flaky_rule():
    return f"""
    <eca:rule {ECA} id="flaky-rule">
      <eca:event><ping n="{{N}}"/></eca:event>
      <eca:query><q xmlns="{FLAKY_LANG}">whatever</q></eca:query>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>
    """


def unaware_flaky_rule():
    """Same shape, but the flaky language is framework-unaware (opaque
    component, result bound to $Q)."""
    return f"""
    <eca:rule {ECA} id="flaky-rule">
      <eca:event><ping n="{{N}}"/></eca:event>
      <eca:variable name="Q">
        <eca:query><eca:opaque language="flaky">whatever</eca:opaque></eca:query>
      </eca:variable>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>
    """


@pytest.fixture()
def world():
    deployment = standard_deployment()
    service = FlakyService()
    deployment.grh.add_service(
        LanguageDescriptor(FLAKY_LANG, "query", "flaky"), service)
    engine = ECAEngine(deployment.grh)
    engine.register_rule(flaky_rule())
    return deployment, engine, service


class TestServiceFailures:
    def test_clean_error_marks_instance_failed(self, world):
        deployment, engine, service = world
        service.mode = "error"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "storage exploded" in instance.error
        assert engine.stats["failed"] == 1

    def test_service_crash_becomes_error_message(self, world):
        deployment, engine, service = world
        service.mode = "crash"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "segfault" in instance.error

    def test_wrong_message_shape_fails_cleanly(self, world):
        deployment, engine, service = world
        service.mode = "wrong-shape"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "log:answers" in instance.error

    def test_garbage_answers_fail_cleanly(self, world):
        deployment, engine, service = world
        service.mode = "garbage-answers"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"

    def test_engine_recovers_after_failure(self, world):
        deployment, engine, service = world
        service.mode = "error"
        deployment.stream.emit(E("ping", {"n": "1"}))
        service.mode = "ok"
        deployment.stream.emit(E("ping", {"n": "2"}))
        statuses = [instance.status for instance in engine.instances]
        assert statuses == ["failed", "completed"]
        assert deployment.runtime.messages("default")

    def test_other_rules_unaffected_by_failing_rule(self, world):
        deployment, engine, service = world
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="healthy">
          <eca:event><ping n="{{N}}"/></eca:event>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="healthy-out">
              <pong n="{{N}}"/>
            </act:send>
          </eca:action>
        </eca:rule>""")
        service.mode = "crash"
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert len(deployment.runtime.messages("healthy-out")) == 1
        assert engine.stats["failed"] == 1
        assert engine.stats["completed"] == 1


class TestActionFailures:
    def test_failing_action_marks_instance(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh, validate=False)
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="bad-action">
          <eca:event><ping/></eca:event>
          <eca:action>
            <act:insert xmlns:act="{ACTION_NS}" document="ghost.xml"
                        at="/nope"><x/></act:insert>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("ping"))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "ghost.xml" in instance.error

    def test_partial_action_execution_reported(self):
        """When the action fails for the second tuple, the count of
        successfully executed actions is preserved on the instance."""
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh, validate=False)
        from repro.actions import ACTION_NS
        # send works for tuples that bind Q; template error otherwise —
        # engineered via a query binding Q for only one of two tuples
        engine.register_rule(f"""
        <eca:rule {ECA} id="partial">
          <eca:event><pair a="{{A}}" b="{{B}}"/></eca:event>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="out"><x a="{{A}}"/></act:send>
          </eca:action>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="out"><x c="{{C}}"/></act:send>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("pair", {"a": "1", "b": "2"}))
        (instance,) = engine.instances
        assert instance.status == "failed"  # second action: unbound {C}
        assert instance.actions_executed == 1  # first action did run


def http_world(flaky_service, resilience=None, aware=True):
    """A hybrid deployment with the flaky query service behind real HTTP."""
    from repro.grh import GenericRequestHandler, LanguageRegistry
    from repro.services import (ActionExecutionService, AtomicEventService,
                                HttpServiceServer, HybridTransport)
    from repro.actions import ACTION_NS, ActionRuntime
    from repro.events import ATOMIC_NS, EventStream

    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, HybridTransport(timeout=2.0),
                                resilience=resilience)
    stream = EventStream()
    runtime = ActionRuntime()
    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                    atomic)
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(runtime))
    if aware:
        server = HttpServiceServer(aware_handler=flaky_service.handle)
    else:
        server = HttpServiceServer(opaque_handler=flaky_service.execute)
    grh.add_remote_language(
        LanguageDescriptor(FLAKY_LANG, "query", "flaky",
                           framework_aware=aware), server.start())
    engine = ECAEngine(grh)
    engine.register_rule(flaky_rule() if aware else unaware_flaky_rule())
    return server, stream, grh, engine


class FailNTimesService:
    """Drops the connection (socket reset over the wire) for the first
    ``fail`` calls — a *transient* failure in the §11 taxonomy, so
    retry policies and breakers engage.  (A service that answers HTTP
    500 is a deterministic service report and is NOT retried; see
    TestHttpStatusTaxonomy in tests/services/test_pooled_transport.py.)
    """

    def __init__(self, fail):
        self.fail = fail
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.fail:
            # ConnectionError propagates through the HTTP handler as a
            # connection abort (no response bytes), so the client sees
            # a socket-level failure, not an HTTP status
            raise ConnectionResetError("transient outage (simulated)")

    def handle(self, message):
        self._maybe_fail()
        from repro.bindings import relation_to_answers
        return relation_to_answers(Relation([{"Q": "fine"}]))

    def execute(self, query):
        self._maybe_fail()
        return "fine\r\n"  # CRLF on purpose: must bind stripped


class TestTransportFailures:
    def test_unreachable_http_service_fails_instance(self):
        from repro.grh import GenericRequestHandler, LanguageRegistry
        from repro.services import (ActionExecutionService,
                                    AtomicEventService, HybridTransport)
        from repro.actions import ACTION_NS, ActionRuntime
        from repro.events import ATOMIC_NS, EventStream

        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry,
                                    HybridTransport(timeout=0.3))
        stream = EventStream()
        runtime = ActionRuntime()
        atomic = AtomicEventService(grh.notify)
        atomic.attach(stream)
        grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                        atomic)
        grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                        ActionExecutionService(runtime))
        grh.add_remote_language(
            LanguageDescriptor(FLAKY_LANG, "query", "flaky"),
            "http://127.0.0.1:1/")  # nothing listens here
        engine = ECAEngine(grh)
        engine.register_rule(flaky_rule())
        # the dead endpoint is contained: the instance fails, emit returns
        stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "unreachable" in instance.error


class TestHttpFlakyServices:
    """The flaky scenarios over real localhost HTTP (HybridTransport):
    retry policies and circuit breakers against a remote service that
    fails N times and then recovers."""

    def test_fails_twice_then_recovers_under_retry(self):
        from repro.grh import ResilienceManager, RetryPolicy
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                    sleep=lambda s: None)
        service = FailNTimesService(fail=2)
        server, stream, grh, engine = http_world(service, manager)
        try:
            stream.emit(E("ping", {"n": "1"}))
        finally:
            server.stop()
        (instance,) = engine.instances
        assert instance.status == "completed"   # no failed instance
        assert service.calls == 3
        assert grh.stats["retries"] == 2

    def test_same_service_fails_without_retries(self):
        service = FailNTimesService(fail=2)
        server, stream, grh, engine = http_world(service)
        try:
            stream.emit(E("ping", {"n": "1"}))
        finally:
            server.stop()
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert service.calls == 1

    def test_unaware_http_service_retried_and_crlf_stripped(self):
        from repro.grh import ResilienceManager, RetryPolicy
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                    sleep=lambda s: None)
        service = FailNTimesService(fail=2)
        server, stream, grh, engine = http_world(service, manager,
                                                 aware=False)
        try:
            stream.emit(E("ping", {"n": "1"}))
        finally:
            server.stop()
        (instance,) = engine.instances
        assert instance.status == "completed"
        assert service.calls == 3
        # the CRLF response line bound clean, so the {Q} action template
        # rendered without a trailing \r
        (_, final) = instance.trace[-1]
        assert all(binding["Q"] == "fine" for binding in final)

    def test_breaker_opens_then_half_open_recovery_over_http(self):
        from repro.grh import BreakerPolicy, GRHError, ResilienceManager

        class Clock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = Clock()
        manager = ResilienceManager(
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=30.0),
            clock=clock, sleep=lambda s: None)
        service = FailNTimesService(fail=1)
        server, stream, grh, engine = http_world(service, manager)
        try:
            stream.emit(E("ping", {"n": "1"}))      # fails, breaker opens
            stream.emit(E("ping", {"n": "2"}))      # shed: service not hit
            assert service.calls == 1
            assert engine.instances[1].status == "failed"
            assert "circuit open" in engine.instances[1].error
            clock.now = 31.0                        # past reset_timeout
            stream.emit(E("ping", {"n": "3"}))      # half-open probe: ok
        finally:
            server.stop()
        statuses = [instance.status for instance in engine.instances]
        assert statuses == ["failed", "failed", "completed"]
        assert grh.stats["breaker_opens"] == 1
        assert grh.stats["breaker_rejections"] == 1

    def test_failed_http_detections_replayable(self):
        from repro.grh import ResilienceManager
        service = FailNTimesService(fail=1)
        server, stream, grh, engine = http_world(
            service, ResilienceManager(sleep=lambda s: None))
        try:
            stream.emit(E("ping", {"n": "1"}))
            assert engine.instances[0].status == "failed"
            assert grh.stats["dead_letters"] == 1
            summary = engine.replay_dead_letters()
        finally:
            server.stop()
        assert summary["succeeded"] == 1
        assert engine.instances[-1].status == "completed"
