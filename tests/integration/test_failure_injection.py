"""Failure injection: misbehaving services must not corrupt the engine.

The paper's services are autonomous — they can fail, lie about message
shapes, or disappear.  The engine must record the failure on the affected
instance and keep serving other rules and later events.
"""

import pytest

from repro.bindings import Relation
from repro.core import ECAEngine
from repro.grh import (GRHError, LanguageDescriptor, error_message,
                       ok_message)
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS, parse

ECA = f'xmlns:eca="{ECA_NS}"'
FLAKY_LANG = "urn:test:flaky"


class FlakyService:
    """A query service scripted to fail in configurable ways."""

    def __init__(self):
        self.mode = "ok"
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if self.mode == "error":
            return error_message("storage exploded")
        if self.mode == "crash":
            raise RuntimeError("segfault (simulated)")
        if self.mode == "wrong-shape":
            return parse("<unexpected/>")
        if self.mode == "garbage-answers":
            return parse('<log:answers xmlns:log='
                         '"http://www.semwebtech.org/languages/2006/log">'
                         "<log:answer><log:variable>nameless"
                         "</log:variable></log:answer></log:answers>")
        from repro.bindings import relation_to_answers
        return relation_to_answers(Relation([{"Q": "fine"}]))


def flaky_rule():
    return f"""
    <eca:rule {ECA} id="flaky-rule">
      <eca:event><ping n="{{N}}"/></eca:event>
      <eca:query><q xmlns="{FLAKY_LANG}">whatever</q></eca:query>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>
    """


@pytest.fixture()
def world():
    deployment = standard_deployment()
    service = FlakyService()
    deployment.grh.add_service(
        LanguageDescriptor(FLAKY_LANG, "query", "flaky"), service)
    engine = ECAEngine(deployment.grh)
    engine.register_rule(flaky_rule())
    return deployment, engine, service


class TestServiceFailures:
    def test_clean_error_marks_instance_failed(self, world):
        deployment, engine, service = world
        service.mode = "error"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "storage exploded" in instance.error
        assert engine.stats["failed"] == 1

    def test_service_crash_becomes_error_message(self, world):
        deployment, engine, service = world
        service.mode = "crash"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "segfault" in instance.error

    def test_wrong_message_shape_fails_cleanly(self, world):
        deployment, engine, service = world
        service.mode = "wrong-shape"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "log:answers" in instance.error

    def test_garbage_answers_fail_cleanly(self, world):
        deployment, engine, service = world
        service.mode = "garbage-answers"
        deployment.stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"

    def test_engine_recovers_after_failure(self, world):
        deployment, engine, service = world
        service.mode = "error"
        deployment.stream.emit(E("ping", {"n": "1"}))
        service.mode = "ok"
        deployment.stream.emit(E("ping", {"n": "2"}))
        statuses = [instance.status for instance in engine.instances]
        assert statuses == ["failed", "completed"]
        assert deployment.runtime.messages("default")

    def test_other_rules_unaffected_by_failing_rule(self, world):
        deployment, engine, service = world
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="healthy">
          <eca:event><ping n="{{N}}"/></eca:event>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="healthy-out">
              <pong n="{{N}}"/>
            </act:send>
          </eca:action>
        </eca:rule>""")
        service.mode = "crash"
        deployment.stream.emit(E("ping", {"n": "1"}))
        assert len(deployment.runtime.messages("healthy-out")) == 1
        assert engine.stats["failed"] == 1
        assert engine.stats["completed"] == 1


class TestActionFailures:
    def test_failing_action_marks_instance(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh, validate=False)
        from repro.actions import ACTION_NS
        engine.register_rule(f"""
        <eca:rule {ECA} id="bad-action">
          <eca:event><ping/></eca:event>
          <eca:action>
            <act:insert xmlns:act="{ACTION_NS}" document="ghost.xml"
                        at="/nope"><x/></act:insert>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("ping"))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "ghost.xml" in instance.error

    def test_partial_action_execution_reported(self):
        """When the action fails for the second tuple, the count of
        successfully executed actions is preserved on the instance."""
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh, validate=False)
        from repro.actions import ACTION_NS
        # send works for tuples that bind Q; template error otherwise —
        # engineered via a query binding Q for only one of two tuples
        engine.register_rule(f"""
        <eca:rule {ECA} id="partial">
          <eca:event><pair a="{{A}}" b="{{B}}"/></eca:event>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="out"><x a="{{A}}"/></act:send>
          </eca:action>
          <eca:action>
            <act:send xmlns:act="{ACTION_NS}" to="out"><x c="{{C}}"/></act:send>
          </eca:action>
        </eca:rule>""")
        deployment.stream.emit(E("pair", {"a": "1", "b": "2"}))
        (instance,) = engine.instances
        assert instance.status == "failed"  # second action: unbound {C}
        assert instance.actions_executed == 1  # first action did run


class TestTransportFailures:
    def test_unreachable_http_service_fails_instance(self):
        from repro.grh import GenericRequestHandler, LanguageRegistry
        from repro.services import (ActionExecutionService,
                                    AtomicEventService, HybridTransport)
        from repro.actions import ACTION_NS, ActionRuntime
        from repro.events import ATOMIC_NS, EventStream

        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry,
                                    HybridTransport(timeout=0.3))
        stream = EventStream()
        runtime = ActionRuntime()
        atomic = AtomicEventService(grh.notify)
        atomic.attach(stream)
        grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                        atomic)
        grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                        ActionExecutionService(runtime))
        grh.add_remote_language(
            LanguageDescriptor(FLAKY_LANG, "query", "flaky"),
            "http://127.0.0.1:1/")  # nothing listens here
        engine = ECAEngine(grh)
        engine.register_rule(flaky_rule())
        # the dead endpoint is contained: the instance fails, emit returns
        stream.emit(E("ping", {"n": "1"}))
        (instance,) = engine.instances
        assert instance.status == "failed"
        assert "unreachable" in instance.error
