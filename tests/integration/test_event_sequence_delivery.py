"""Fig. 6 (1): detections carry the matched event sequence to the engine."""

from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event, cancellation_event
from repro.events import SNOOP_NS
from repro.grh import Detection, detection_to_xml, xml_to_detection
from repro.bindings import Relation
from repro.services import standard_deployment
from repro.xmlmodel import E, ECA_NS, QName, parse, serialize

ECA = f'xmlns:eca="{ECA_NS}"'


class TestDetectionMessageCarriesEvents:
    def test_wire_roundtrip_with_events(self):
        detection = Detection("r::event", 0.0, 1.0,
                              Relation([{"P": "x"}]),
                              (E("a", {"k": "1"}), E("b")))
        back = xml_to_detection(parse(serialize(
            detection_to_xml(detection))))
        assert len(back.events) == 2
        assert back.events[0].get("k") == "1"

    def test_empty_events_omitted_from_markup(self):
        detection = Detection("r::event", 0.0, 0.0, Relation.unit())
        markup = serialize(detection_to_xml(detection))
        assert "log:events" not in markup


class TestInstanceTriggeringEvents:
    def test_atomic_rule_instance_has_its_event(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        engine.register_rule(f"""
        <eca:rule {ECA} id="r">
          <eca:event>
            <travel:booking xmlns:travel="{TRAVEL_NS}" person="{{P}}"/>
          </eca:event>
          <eca:action><seen p="{{P}}"/></eca:action>
        </eca:rule>""")
        deployment.stream.emit(booking_event())
        (instance,) = engine.instances
        assert len(instance.triggering_events) == 1
        assert instance.triggering_events[0].name == \
            QName(TRAVEL_NS, "booking")

    def test_composite_rule_instance_has_full_sequence(self):
        deployment = standard_deployment()
        engine = ECAEngine(deployment.grh)
        engine.register_rule(f"""
        <eca:rule {ECA} id="r">
          <eca:event>
            <snoop:seq xmlns:snoop="{SNOOP_NS}" context="chronicle">
              <travel:booking xmlns:travel="{TRAVEL_NS}" person="{{P}}"/>
              <travel:cancellation xmlns:travel="{TRAVEL_NS}"
                                   person="{{P}}"/>
            </snoop:seq>
          </eca:event>
          <eca:action><churn p="{{P}}"/></eca:action>
        </eca:rule>""")
        deployment.stream.emit(booking_event())
        deployment.stream.advance(1)
        deployment.stream.emit(cancellation_event("John Doe", "Paris"))
        (instance,) = engine.instances
        names = [payload.name.local
                 for payload in instance.triggering_events]
        assert names == ["booking", "cancellation"]
