"""FIG3: the service-oriented architecture, including real HTTP services.

The engine ↔ GRH ↔ services message flow is exercised with the query
services deployed behind genuine localhost HTTP endpoints while the
event/action services stay in-process — the paper's picture of autonomous
remote language processors.
"""

import pytest

from repro.actions import ACTION_NS, ActionRuntime
from repro.conditions import TEST_NS
from repro.core import ECAEngine
from repro.domain import (CAR_RENTAL_RULE, booking_event, classes_document,
                          fleet_document, persons_document)
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry)
from repro.services import (ActionExecutionService, AtomicEventService,
                            EXIST_LANG, ExistLikeService, HttpServiceServer,
                            HybridTransport, TestLanguageService, XQ_LANG,
                            XQService)


@pytest.fixture()
def http_world():
    """Engine + GRH with XQ-lite and eXist-like services behind HTTP."""
    registry = LanguageRegistry()
    transport = HybridTransport()
    grh = GenericRequestHandler(registry, transport)
    stream = EventStream()
    runtime = ActionRuntime(event_stream=stream)

    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic-events"),
                    atomic)
    grh.add_service(LanguageDescriptor(TEST_NS, "test", "test"),
                    TestLanguageService())
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(runtime))

    xq = XQService({"persons.xml": persons_document(),
                    "fleet.xml": fleet_document()})
    exist = ExistLikeService({"classes.xml": classes_document(),
                              "fleet.xml": fleet_document()})
    xq_server = HttpServiceServer(aware_handler=xq.handle)
    exist_server = HttpServiceServer(opaque_handler=exist.execute)
    xq_url = xq_server.start()
    exist_url = exist_server.start()
    grh.add_remote_language(
        LanguageDescriptor(XQ_LANG, "query", "xquery-lite"), xq_url)
    grh.add_remote_language(
        LanguageDescriptor(EXIST_LANG, "query", "exist-like",
                           framework_aware=False), exist_url)

    engine = ECAEngine(grh)
    yield engine, stream, runtime, grh
    xq_server.stop()
    exist_server.stop()


class TestArchitectureOverHttp:
    def test_running_example_over_real_http(self, http_world):
        engine, stream, runtime, grh = http_world
        rule_id = engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        messages = runtime.messages("customer-notifications")
        assert len(messages) == 1
        assert messages[0].content.get("car") == "Polo"
        (instance,) = engine.instances_of(rule_id)
        assert instance.status == "completed"

    def test_http_and_inprocess_give_identical_results(self, http_world):
        from repro.services import standard_deployment
        engine, stream, runtime, grh = http_world
        engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        http_offers = sorted(
            (m.content.get("car"), m.content.get("class"))
            for m in runtime.messages("customer-notifications"))

        deployment = standard_deployment()
        deployment.add_document("persons.xml", persons_document())
        deployment.add_document("classes.xml", classes_document())
        deployment.add_document("fleet.xml", fleet_document())
        local_engine = ECAEngine(deployment.grh)
        local_engine.register_rule(CAR_RENTAL_RULE)
        deployment.stream.emit(booking_event())
        local_offers = sorted(
            (m.content.get("car"), m.content.get("class"))
            for m in deployment.runtime.messages("customer-notifications"))
        assert http_offers == local_offers

    def test_unaware_http_service_gets_plain_get_requests(self, http_world):
        engine, stream, runtime, grh = http_world
        engine.register_rule(CAR_RENTAL_RULE)
        stream.emit(booking_event())
        # at least the two per-tuple class queries travelled as plain GETs
        assert grh.request_count >= 4
