"""FIG4-FIG11: the paper's running example, end to end.

The car-rental rule of Fig. 4 is registered with the engine; a booking
event fires it; the three query components contact three differently-
integrated services (framework-aware XQ-lite, framework-unaware
eXist-like, log:answers-faking); the natural join of Fig. 11 leaves
exactly the class-B offer, and the action informs the customer.

Every intermediate binding table the paper prints is asserted here.
"""

import pytest

from repro.bindings import Binding
from repro.core import ECAEngine
from repro.domain import (CAR_RENTAL_RULE, booking_event, classes_document,
                          fleet_document, persons_document)
from repro.services import standard_deployment


@pytest.fixture()
def world():
    deployment = standard_deployment()
    deployment.add_document("persons.xml", persons_document())
    deployment.add_document("classes.xml", classes_document())
    deployment.add_document("fleet.xml", fleet_document())
    engine = ECAEngine(deployment.grh)
    rule_id = engine.register_rule(CAR_RENTAL_RULE)
    return deployment, engine, rule_id


def trace_of(engine, rule_id):
    (instance,) = engine.instances_of(rule_id)
    return instance, dict(instance.trace)


class TestRunningExample:
    def test_fig4_rule_parses_with_expected_structure(self):
        from repro.core import parse_rule
        rule = parse_rule(CAR_RENTAL_RULE)
        assert rule.rule_id == "car-rental-offer"
        assert len(rule.queries) == 3
        assert rule.queries[0].bind_to == "OwnCar"
        assert rule.queries[1].bind_to == "Class"
        assert rule.queries[2].bind_to is None
        assert rule.test is None
        assert len(rule.actions) == 1

    def test_fig5_event_component_registered(self, world):
        deployment, engine, rule_id = world
        assert f"{rule_id}::event" in deployment.atomic_events.registered_ids

    def test_fig6_booking_creates_instance_with_bindings(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        instance, trace = trace_of(engine, rule_id)
        assert trace["event"] == _relation(
            {"Person": "John Doe", "From": "Munich", "To": "Paris"})

    def test_fig8_own_cars_yield_two_tuples(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        instance, trace = trace_of(engine, rule_id)
        stage = trace["query 1 (→ $OwnCar)"]
        assert {binding["OwnCar"] for binding in stage} == {"Golf", "Passat"}
        assert all(binding["Person"] == "John Doe" for binding in stage)
        assert len(stage) == 2

    def test_fig9_unaware_service_called_once_per_tuple(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        # the eXist-like node saw one substituted query per input tuple:
        # once for Golf, once for Passat (plus one availability query per
        # remaining tuple)
        substituted = [query for query in deployment.exist.request_log
                       if "entry[@model" in query]
        assert len(substituted) == 2
        assert any("'Golf'" in query for query in substituted)
        assert any("'Passat'" in query for query in substituted)

    def test_fig9_classes_bound_per_tuple(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        instance, trace = trace_of(engine, rule_id)
        stage = trace["query 2 (→ $Class)"]
        pairs = {(binding["OwnCar"], binding["Class"]) for binding in stage}
        assert pairs == {("Golf", "B"), ("Passat", "C")}

    def test_fig10_fig11_join_keeps_only_class_b(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        instance, trace = trace_of(engine, rule_id)
        stage = trace["query 3"]
        assert len(stage) == 1
        (survivor,) = stage
        assert survivor["OwnCar"] == "Golf"
        assert survivor["Class"] == "B"
        assert survivor["Avail"] == "Polo"

    def test_customer_is_informed_once(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        messages = deployment.runtime.messages("customer-notifications")
        assert len(messages) == 1
        offer = messages[0].content
        assert offer.get("person") == "John Doe"
        assert offer.get("destination") == "Paris"
        assert offer.get("car") == "Polo"
        assert offer.get("class") == "B"

    def test_instance_completes(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        (instance,) = engine.instances_of(rule_id)
        assert instance.status == "completed"
        assert instance.actions_executed == 1
        assert engine.stats["completed"] == 1

    def test_rome_booking_dies_at_join(self, world):
        # Rome offers classes B and C... the fleet has Golf (B) and
        # Laguna (C) there, so John Doe gets two offers instead
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event(destination="Rome"))
        (instance,) = engine.instances_of(rule_id)
        assert instance.status == "completed"
        cars = {message.content.get("car") for message in
                deployment.runtime.messages("customer-notifications")}
        assert cars == {"Golf", "Laguna"}

    def test_unknown_person_instance_dies(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event(person="Nobody"))
        (instance,) = engine.instances_of(rule_id)
        assert instance.status == "dead"
        assert deployment.runtime.messages("customer-notifications") == []

    def test_person_without_cars_dies_at_first_query(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event(person="Max Power"))
        (instance,) = engine.instances_of(rule_id)
        assert instance.status == "dead"
        assert instance.trace[-1][0] == "query 1 (→ $OwnCar)"

    def test_two_bookings_two_instances(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        deployment.stream.advance(1)
        deployment.stream.emit(booking_event(person="Jane Roe"))
        assert len(engine.instances_of(rule_id)) == 2

    def test_trace_table_prints_paper_tables(self, world):
        deployment, engine, rule_id = world
        deployment.stream.emit(booking_event())
        (instance,) = engine.instances_of(rule_id)
        table = instance.trace_table()
        assert "OwnCar" in table and "Golf" in table and "Polo" in table


def _relation(*rows):
    from repro.bindings import Relation
    return Relation(list(rows))
