"""The paper's central claim: arbitrary combinations of component languages.

The same business logic (offer a matching rental car) is expressed with
different language mixes — SPARQL instead of XQuery for the fleet,
Datalog for the ownership knowledge base, SNOOP and XChange composite
events instead of an atomic pattern — all running unchanged through the
same engine and GRH.
"""

import pytest

from repro.actions import ACTION_NS
from repro.core import ECAEngine
from repro.domain import (TRAVEL_NS, booking_event, cancellation_event,
                          classes_document, fleet_graph, persons_document)
from repro.events import SNOOP_NS, XCHANGE_NS
from repro.services import (DATALOG_LANG, SPARQL_LANG, XQ_LANG,
                            standard_deployment)
from repro.xmlmodel import ECA_NS

ECA = f'xmlns:eca="{ECA_NS}"'
ACT = f'xmlns:act="{ACTION_NS}"'
TRAVEL = f'xmlns:travel="{TRAVEL_NS}"'

FLEET_PREFIX = "http://example.org/fleet#"

DATALOG_PROGRAM = """
    owns("John Doe", "Golf"). owns("John Doe", "Passat").
    owns("Jane Roe", "Clio").
    class("Clio", "A"). class("Golf", "B"). class("Polo", "B").
    class("Passat", "C"). class("Espace", "D").
    owned_class(P, K) :- owns(P, C), class(C, K).
"""


@pytest.fixture()
def world():
    deployment = standard_deployment(graph=fleet_graph(),
                                     datalog_program=DATALOG_PROGRAM)
    deployment.sparql.prefixes["fleet"] = FLEET_PREFIX
    deployment.add_document("persons.xml", persons_document())
    deployment.add_document("classes.xml", classes_document())
    return deployment, ECAEngine(deployment.grh)


class TestQueryLanguageHeterogeneity:
    def test_datalog_plus_sparql_variant(self, world):
        """Ownership via Datalog, availability via SPARQL — no XML query
        language involved at all, same offers as the paper's variant."""
        deployment, engine = world
        engine.register_rule(f"""
        <eca:rule {ECA} id="dl-sparql">
          <eca:event>
            <travel:booking {TRAVEL} person="{{Person}}" to="{{To}}"/>
          </eca:event>
          <eca:query>
            <dl:query xmlns:dl="{DATALOG_LANG}">owned_class("{{Person}}", Class)</dl:query>
          </eca:query>
          <eca:query>
            <sp:select xmlns:sp="{SPARQL_LANG}">
              SELECT ?Avail ?Class WHERE {{
                ?c fleet:location '{{To}}' ;
                   fleet:model ?Avail ; fleet:carClass ?Class .
              }}
            </sp:select>
          </eca:query>
          <eca:action>
            <act:send {ACT} to="offers"><offer car="{{Avail}}"/></act:send>
          </eca:action>
        </eca:rule>
        """)
        deployment.stream.emit(booking_event())
        offers = [m.content.get("car")
                  for m in deployment.runtime.messages("offers")]
        assert offers == ["Polo"]

    def test_datalog_goal_with_substituted_constant(self, world):
        deployment, engine = world
        engine.register_rule(f"""
        <eca:rule {ECA} id="dl-only">
          <eca:event>
            <travel:booking {TRAVEL} person="{{Person}}" to="{{To}}"/>
          </eca:event>
          <eca:query>
            <dl:query xmlns:dl="{DATALOG_LANG}">owns("{{Person}}", Car)</dl:query>
          </eca:query>
          <eca:action>
            <act:send {ACT} to="cars"><own car="{{Car}}"/></act:send>
          </eca:action>
        </eca:rule>
        """)
        deployment.stream.emit(booking_event(person="Jane Roe"))
        cars = {m.content.get("car")
                for m in deployment.runtime.messages("cars")}
        assert cars == {"Clio"}


class TestEventLanguageHeterogeneity:
    def test_snoop_composite_event_rule(self, world):
        """Fire only when a booking is followed by a cancellation of the
        same person (join variable across constituent events)."""
        deployment, engine = world
        engine.register_rule(f"""
        <eca:rule {ECA} id="snoop-rule">
          <eca:event>
            <snoop:seq xmlns:snoop="{SNOOP_NS}" context="chronicle">
              <travel:booking {TRAVEL} person="{{Person}}" to="{{To}}"/>
              <travel:cancellation {TRAVEL} person="{{Person}}"/>
            </snoop:seq>
          </eca:event>
          <eca:action>
            <act:send {ACT} to="alerts">
              <churn person="{{Person}}" dest="{{To}}"/>
            </act:send>
          </eca:action>
        </eca:rule>
        """)
        deployment.stream.emit(booking_event(person="John Doe"))
        deployment.stream.advance(1)
        deployment.stream.emit(cancellation_event("Jane Roe", "Paris"))
        assert deployment.runtime.messages("alerts") == []  # wrong person
        deployment.stream.advance(1)
        deployment.stream.emit(cancellation_event("John Doe", "Paris"))
        (alert,) = deployment.runtime.messages("alerts")
        assert alert.content.get("person") == "John Doe"
        assert alert.content.get("dest") == "Paris"

    def test_xchange_windowed_event_rule(self, world):
        deployment, engine = world
        engine.register_rule(f"""
        <eca:rule {ECA} id="xchange-rule">
          <eca:event>
            <xc:and xmlns:xc="{XCHANGE_NS}" within="5">
              <travel:booking {TRAVEL} person="{{Person}}"/>
              <travel:delayed {TRAVEL} person="{{Person}}"/>
            </xc:and>
          </eca:event>
          <eca:action>
            <act:send {ACT} to="care"><apology person="{{Person}}"/></act:send>
          </eca:action>
        </eca:rule>
        """)
        from repro.domain import delayed_flight_event
        deployment.stream.emit(booking_event(person="John Doe"))
        deployment.stream.advance(2)
        deployment.stream.emit(delayed_flight_event("LH123", "John Doe"))
        assert len(deployment.runtime.messages("care")) == 1
        # outside the window: no detection
        deployment.stream.advance(20)
        deployment.stream.emit(booking_event(person="Jane Roe"))
        deployment.stream.advance(10)
        deployment.stream.emit(delayed_flight_event("LH9", "Jane Roe"))
        assert len(deployment.runtime.messages("care")) == 1


class TestFullMixAndMatch:
    def test_every_family_in_one_rule(self, world):
        """SNOOP event + XQ-lite query + Datalog query + test + two
        action languages — five languages in one rule."""
        deployment, engine = world
        engine.register_rule(f"""
        <eca:rule {ECA} id="grand-tour">
          <eca:event>
            <snoop:or xmlns:snoop="{SNOOP_NS}">
              <travel:booking {TRAVEL} person="{{Person}}" to="{{To}}"/>
            </snoop:or>
          </eca:event>
          <eca:variable name="OwnCar">
            <eca:query>
              <xq:xquery xmlns:xq="{XQ_LANG}">
                for $c in doc('persons.xml')//person[@name = $Person]/car
                return $c/model/text()
              </xq:xquery>
            </eca:query>
          </eca:variable>
          <eca:query>
            <dl:query xmlns:dl="{DATALOG_LANG}">class("{{OwnCar}}", Class)</dl:query>
          </eca:query>
          <eca:test>$Class != 'D'</eca:test>
          <eca:action>
            <act:sequence {ACT}>
              <act:send to="offers">
                <offer car="{{OwnCar}}" class="{{Class}}"/>
              </act:send>
              <act:raise><audited person="{{Person}}"/></act:raise>
            </act:sequence>
          </eca:action>
        </eca:rule>
        """)
        deployment.stream.emit(booking_event())
        offers = {(m.content.get("car"), m.content.get("class"))
                  for m in deployment.runtime.messages("offers")}
        assert offers == {("Golf", "B"), ("Passat", "C")}
        # the raised audit events landed on the stream (rule chaining hook)
        audits = [e for e in deployment.stream
                  if e.payload.name.local == "audited"]
        assert len(audits) == 2
