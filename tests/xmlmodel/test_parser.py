"""Well-formedness, namespace resolution and round-tripping of the parser."""

import pytest

from repro.xmlmodel import (Comment, Element, ProcessingInstruction, QName,
                            Text, XMLSyntaxError, parse, parse_document,
                            parse_fragment, serialize)


class TestBasicParsing:
    def test_single_empty_element(self):
        root = parse("<a/>")
        assert root.name == QName(None, "a")
        assert root.children == []

    def test_element_with_text(self):
        root = parse("<a>hello</a>")
        assert root.text() == "hello"

    def test_nested_elements(self):
        root = parse("<a><b><c/></b><d/></a>")
        assert [child.name.local for child in root.elements()] == ["b", "d"]
        assert root.find("b").find("c") is not None

    def test_attributes(self):
        root = parse('<a x="1" y="two"/>')
        assert root.get("x") == "1"
        assert root.get("y") == "two"
        assert root.get("z") is None
        assert root.get("z", "dflt") == "dflt"

    def test_mixed_content_preserved(self):
        root = parse("<p>one <b>two</b> three</p>")
        assert root.text() == "one two three"
        kinds = [type(child).__name__ for child in root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_comment_and_pi_children(self):
        root = parse("<a><!-- note --><?app do it?></a>")
        assert isinstance(root.children[0], Comment)
        assert root.children[0].value == " note "
        pi = root.children[1]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "app"
        assert pi.data == "do it"

    def test_cdata_becomes_text(self):
        root = parse("<a><![CDATA[<not & parsed>]]></a>")
        assert root.text() == "<not & parsed>"

    def test_predefined_entities(self):
        root = parse("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert root.text() == "<&>\"'"

    def test_numeric_character_references(self):
        root = parse("<a>&#65;&#x42;</a>")
        assert root.text() == "AB"

    def test_entities_in_attributes(self):
        root = parse('<a v="a&amp;b&lt;c"/>')
        assert root.get("v") == "a&b<c"

    def test_document_with_declaration_and_doctype(self):
        doc = parse_document(
            '<?xml version="1.0"?><!DOCTYPE a><a><b/></a>')
        assert doc.root_element.name.local == "a"

    def test_whitespace_around_root_ok(self):
        root = parse("\n  <a/>  \n")
        assert root.name.local == "a"


class TestNamespaces:
    def test_default_namespace(self):
        root = parse('<a xmlns="urn:x"><b/></a>')
        assert root.name == QName("urn:x", "a")
        assert root.find(QName("urn:x", "b")) is not None

    def test_prefixed_namespace(self):
        root = parse('<p:a xmlns:p="urn:x"><p:b/><c/></p:a>')
        assert root.name == QName("urn:x", "a")
        assert root.elements().__next__().name == QName("urn:x", "b")
        assert root.findall("c")[0].name == QName(None, "c")

    def test_unprefixed_attribute_has_no_namespace(self):
        root = parse('<a xmlns="urn:x" k="v"/>')
        assert root.get(QName(None, "k")) == "v"
        assert root.get(QName("urn:x", "k")) is None

    def test_prefixed_attribute(self):
        root = parse('<a xmlns:p="urn:x" p:k="v"/>')
        assert root.get(QName("urn:x", "k")) == "v"

    def test_namespace_scoping_and_shadowing(self):
        root = parse('<a xmlns:p="urn:one"><b xmlns:p="urn:two"><p:c/></b>'
                     "<p:d/></a>")
        inner = root.find("b").elements().__next__()
        assert inner.name == QName("urn:two", "c")
        assert root.findall(QName("urn:one", "d"))

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XMLSyntaxError, match="undeclared"):
            parse("<p:a/>")

    def test_xml_prefix_is_builtin(self):
        root = parse('<a xml:lang="de"/>')
        assert root.get(
            QName("http://www.w3.org/XML/1998/namespace", "lang")) == "de"

    def test_fragment_with_inherited_prefixes(self):
        root = parse_fragment("<p:a/>", namespaces={"p": "urn:x"})
        assert root.name == QName("urn:x", "a")

    def test_scope_reports_inscope_decls(self):
        root = parse('<a xmlns:p="urn:one"><b xmlns:q="urn:two"/></a>')
        assert root.find("b").scope() == {"p": "urn:one", "q": "urn:two"}


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "<a>",                       # unclosed
        "<a></b>",                   # mismatched
        "<a b=c/>",                  # unquoted attribute
        '<a b="1" b="2"/>',          # duplicate attribute
        "<a>&unknown;</a>",          # unknown entity
        "<a/><b/>",                  # two roots
        "< a/>",                     # space before name
        "<a><!-- unterminated</a>",  # unterminated comment
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse("<a>\n<b></c>\n</a>")
        assert excinfo.value.line == 2

    def test_duplicate_expanded_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate"):
            parse('<a xmlns:p="urn:x" xmlns:q="urn:x" p:k="1" q:k="2"/>')


class TestRoundTrip:
    @pytest.mark.parametrize("markup", [
        "<a/>",
        "<a>text</a>",
        '<a k="v"><b/>tail</a>',
        '<a xmlns="urn:x"><b y="1">t</b></a>',
        '<p:a xmlns:p="urn:x" p:k="&lt;&amp;&gt;"><p:b/></p:a>',
        "<a>one<b/>two<c>three</c></a>",
    ])
    def test_parse_serialize_parse_fixpoint(self, markup):
        first = parse(markup)
        second = parse(serialize(first))
        assert first == second

    def test_structural_equality_ignores_prefix_choice(self):
        left = parse('<p:a xmlns:p="urn:x"><p:b/></p:a>')
        right = parse('<a xmlns="urn:x"><b/></a>')
        assert left == right

    def test_structural_equality_ignores_insignificant_whitespace(self):
        left = parse("<a>\n  <b/>\n</a>")
        right = parse("<a><b/></a>")
        assert left == right

    def test_text_differences_are_significant(self):
        assert parse("<a>x</a>") != parse("<a>y</a>")
