"""Node-model operations, builder and serializer behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.xmlmodel import (E, Element, ElementMaker, QName, Text,
                            canonicalize, parse, serialize)


class TestNodeOperations:
    def test_append_sets_parent(self):
        parent = E("a")
        child = parent.append(E("b"))
        assert child.parent is parent
        assert child.root() is parent

    def test_append_attached_node_rejected(self):
        parent = E("a")
        child = parent.append(E("b"))
        with pytest.raises(ValueError, match="already has a parent"):
            E("c").append(child)

    def test_detach_then_reattach(self):
        parent = E("a")
        child = parent.append(E("b"))
        child.detach()
        assert child.parent is None
        other = E("c")
        other.append(child)
        assert child.parent is other

    def test_copy_is_deep_and_detached(self):
        original = parse('<a k="v"><b>t</b></a>')
        clone = original.copy()
        assert clone == original
        clone.find("b").append(E("c"))
        assert clone != original

    def test_iter_document_order(self):
        root = parse("<a><b><c/></b><d/></a>")
        assert [node.name.local for node in root.iter()] == ["a", "b", "c", "d"]

    def test_ancestors(self):
        root = parse("<a><b><c/></b></a>")
        c = root.find("b").find("c")
        names = [anc.name.local for anc in c.ancestors()
                 if isinstance(anc, Element)]
        assert names == ["b", "a"]
        # a parsed tree is rooted in a synthetic Document
        assert type(c.root()).__name__ == "Document"

    def test_set_attribute_coerces(self):
        element = E("a")
        element.set("n", 5)
        assert element.get("n") == "5"


class TestBuilder:
    def test_nested_build(self):
        tree = E("a", {"k": "v"}, E("b", None, "text"), "tail")
        assert serialize(tree) == '<a k="v"><b>text</b>tail</a>'

    def test_numbers_become_text(self):
        assert E("n", None, 5).text() == "5"
        assert E("n", None, 2.5).text() == "2.5"
        assert E("n", None, 2.0).text() == "2"

    def test_element_maker_namespace(self):
        travel = ElementMaker("urn:travel")
        booking = travel.booking({"person": "John Doe"})
        assert booking.name == QName("urn:travel", "booking")
        assert booking.get("person") == "John Doe"

    def test_element_maker_call_form(self):
        maker = ElementMaker("urn:x")
        assert maker("thing").name == QName("urn:x", "thing")


class TestSerializer:
    def test_escaping_in_text_and_attributes(self):
        tree = E("a", {"k": 'quo"te<'}, "a<b&c")
        markup = serialize(tree)
        assert "&lt;b&amp;c" in markup
        assert "quo&quot;te&lt;" in markup
        assert parse(markup) == tree

    def test_generated_prefix_for_builder_namespace(self):
        tree = E(QName("urn:x", "a"), None, E(QName("urn:x", "b")))
        reparsed = parse(serialize(tree))
        assert reparsed == tree

    def test_attribute_in_namespace_gets_prefix(self):
        tree = E("a", {QName("urn:x", "k"): "v"})
        reparsed = parse(serialize(tree))
        assert reparsed.get(QName("urn:x", "k")) == "v"

    def test_pretty_print_keeps_text_strings(self):
        tree = parse("<a><b>hello</b><c><d/></c></a>")
        pretty = serialize(tree, indent="  ")
        assert "<b>hello</b>" in pretty
        assert "\n" in pretty
        assert parse(pretty) == tree

    def test_declaration(self):
        assert serialize(E("a"), declaration=True).startswith("<?xml")

    def test_mixed_default_and_no_namespace(self):
        # A no-namespace child inside a default-namespace parent must be
        # serialized with the default namespace undeclared.
        parent = E(QName("urn:x", "a"), None, E(QName(None, "plain")))
        reparsed = parse(serialize(parent))
        assert reparsed == parent


class TestCanonicalize:
    def test_equal_trees_same_bytes(self):
        left = parse('<p:a xmlns:p="urn:x" z="2" a="1">\n  <p:b/>\n</p:a>')
        right = parse('<a xmlns="urn:x" a="1" z="2"><b/></a>')
        assert canonicalize(left) == canonicalize(right)

    def test_different_text_different_bytes(self):
        assert canonicalize(parse("<a>x</a>")) != canonicalize(parse("<a>y</a>"))

    def test_canonical_form_is_reparseable(self):
        tree = parse('<a xmlns="urn:x" k="v"><b>t</b><!-- gone --></a>')
        assert parse(canonicalize(tree)) == parse(
            '<a xmlns="urn:x" k="v"><b>t</b></a>')


_local_names = st.sampled_from(["a", "b", "item", "booking", "car"])


@st.composite
def _trees(draw, depth=0):
    name = draw(_local_names)
    uri = draw(st.sampled_from([None, "urn:one", "urn:two"]))
    n_attrs = draw(st.integers(0, 2))
    attrs = {}
    for index in range(n_attrs):
        attrs[QName(None, f"k{index}")] = draw(
            st.text(alphabet="abc<&\"' ", max_size=6))
    element = Element(QName(uri, name), attrs)
    if depth < 2:
        for _ in range(draw(st.integers(0, 2))):
            kind = draw(st.sampled_from(["element", "text"]))
            if kind == "element":
                element.append(draw(_trees(depth=depth + 1)))
            else:
                value = draw(st.text(alphabet="xyz<&; ", min_size=1,
                                     max_size=8))
                element.append(Text(value))
    return element


class TestPropertyRoundTrip:
    @given(_trees())
    def test_serialize_parse_roundtrip(self, tree):
        assert parse(serialize(tree)) == tree

    @given(_trees())
    def test_canonicalize_stable_under_roundtrip(self, tree):
        assert canonicalize(parse(serialize(tree))) == canonicalize(tree)


class TestXPathConvenience:
    def test_element_xpath_method(self):
        doc = parse("<cars><car m='Golf'/><car m='Polo'/></cars>")
        assert [n.value for n in doc.xpath("car/@m")] == ["Golf", "Polo"]

    def test_with_variables_and_namespaces(self):
        doc = parse('<t:cars xmlns:t="urn:t"><t:car m="Golf"/></t:cars>')
        result = doc.xpath("t:car[@m = $model]",
                           variables={"model": "Golf"},
                           namespaces={"t": "urn:t"})
        assert len(result) == 1

    def test_identity_remove_of_equal_siblings(self):
        doc = parse("<a><b/><b/></a>")
        first, second = doc.elements()
        doc.remove(second)
        assert doc.elements().__next__() is first
        with pytest.raises(ValueError, match="not a child"):
            doc.remove(second)
