"""QName parsing and namespace edge cases."""

import pytest

from repro.xmlmodel import NamespaceError, QName, XML_NS


class TestQNameParsing:
    def test_plain_local_name(self):
        assert QName.parse("booking") == QName(None, "booking")

    def test_default_namespace_applied(self):
        assert QName.parse("booking", default="urn:t") == \
            QName("urn:t", "booking")

    def test_prefixed_name(self):
        assert QName.parse("t:booking", {"t": "urn:t"}) == \
            QName("urn:t", "booking")

    def test_clark_notation(self):
        assert QName.parse("{urn:t}booking") == QName("urn:t", "booking")
        assert QName("urn:t", "booking").clark == "{urn:t}booking"
        assert QName(None, "x").clark == "x"

    def test_builtin_xml_prefix(self):
        assert QName.parse("xml:lang") == QName(XML_NS, "lang")

    def test_undeclared_prefix(self):
        with pytest.raises(NamespaceError):
            QName.parse("t:booking", {})
        with pytest.raises(NamespaceError):
            QName.parse("t:booking")

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            QName("urn:t", "")

    def test_equality_ignores_prefix_origin(self):
        left = QName.parse("a:x", {"a": "urn:one"})
        right = QName.parse("b:x", {"b": "urn:one"})
        assert left == right and hash(left) == hash(right)

    def test_same_local_different_uri_differ(self):
        assert QName("urn:one", "x") != QName("urn:two", "x")
        assert QName(None, "x") != QName("urn:one", "x")
