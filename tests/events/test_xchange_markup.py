"""XChange-style queries and event-component markup parsing."""

import pytest

from repro.events import (AndQuery, Atomic, EventMarkupError, EventStream,
                          Or, OrQuery, PatternQuery, Periodic, SeqQuery, Seq,
                          WithoutQuery, XChangeError, parse_atomic,
                          parse_event_component, parse_snoop, parse_xchange,
                          SNOOP_NS, XCHANGE_NS)
from repro.events.atomic import AtomicPattern
from repro.xmlmodel import E, parse


def pattern_query(markup):
    return PatternQuery(AtomicPattern(parse(markup)))


def feed_sequence(query, payloads, spacing=1.0):
    stream = EventStream()
    out = []
    stream.subscribe(lambda event: out.extend(query.feed(event)))
    stream.emit_all(payloads, spacing=spacing)
    return out


class TestXChangeQueries:
    def test_and_any_order_distinct_events(self):
        query = AndQuery([pattern_query("<a/>"), pattern_query("<b/>")])
        assert len(feed_sequence(query, [E("b"), E("a")])) == 1

    def test_and_requires_distinct_events(self):
        query = AndQuery([pattern_query('<a x="{X}"/>'),
                          pattern_query("<a/>")])
        # a single event cannot satisfy both conjuncts...
        assert len(feed_sequence(query, [E("a", {"x": "1"})])) == 0
        # ...but a second event completes the conjunction
        query.reset()
        detections = feed_sequence(query,
                                   [E("a", {"x": "1"}), E("a", {"x": "2"})])
        assert len(detections) >= 1

    def test_seq_ordered(self):
        query = SeqQuery([pattern_query("<a/>"), pattern_query("<b/>")])
        assert len(feed_sequence(query, [E("b"), E("a")])) == 0
        query.reset()
        assert len(feed_sequence(query, [E("a"), E("b")])) == 1

    def test_window_limit(self):
        query = AndQuery([pattern_query("<a/>"), pattern_query("<b/>")],
                         within=3.0)
        assert len(feed_sequence(query, [E("a"), E("b")], spacing=5.0)) == 0
        query.reset()
        assert len(feed_sequence(query, [E("a"), E("b")], spacing=2.0)) == 1

    def test_join_variables(self):
        query = AndQuery([pattern_query('<a k="{K}"/>'),
                          pattern_query('<b k="{K}"/>')])
        detections = feed_sequence(
            query, [E("a", {"k": "1"}), E("b", {"k": "2"}),
                    E("b", {"k": "1"})])
        assert len(detections) == 1

    def test_or(self):
        query = OrQuery([pattern_query("<a/>"), pattern_query("<b/>")])
        assert len(feed_sequence(query, [E("a"), E("b"), E("c")])) == 2

    def test_without_suppression(self):
        query = WithoutQuery(
            SeqQuery([pattern_query("<a/>"), pattern_query("<c/>")]),
            pattern_query("<b/>"))
        assert len(feed_sequence(query, [E("a"), E("b"), E("c")])) == 0
        query.reset()
        assert len(feed_sequence(query, [E("a"), E("x"), E("c")])) == 1

    def test_validation(self):
        with pytest.raises(XChangeError):
            AndQuery([pattern_query("<a/>")])
        with pytest.raises(XChangeError):
            OrQuery([])
        with pytest.raises(XChangeError):
            SeqQuery([pattern_query("<a/>"), pattern_query("<b/>")],
                     within=-1)


SNOOP_DECL = f'xmlns:snoop="{SNOOP_NS}"'
XCHANGE_DECL = f'xmlns:xc="{XCHANGE_NS}"'


class TestSnoopMarkup:
    def test_seq_markup(self):
        detector = parse_snoop(parse(
            f'<snoop:seq {SNOOP_DECL} context="chronicle">'
            f'<a/><b/><c/></snoop:seq>'))
        assert isinstance(detector, Seq)
        detections = feed_sequence(detector, [E("a"), E("b"), E("c")])
        assert len(detections) == 1

    def test_or_and_nested(self):
        detector = parse_snoop(parse(
            f'<snoop:or {SNOOP_DECL}><snoop:and><a/><b/></snoop:and>'
            f'<c/></snoop:or>'))
        assert isinstance(detector, Or)
        assert len(feed_sequence(detector, [E("c")])) == 1

    def test_any_markup(self):
        detector = parse_snoop(parse(
            f'<snoop:any {SNOOP_DECL} m="2"><a/><b/><c/></snoop:any>'))
        assert len(feed_sequence(detector, [E("c"), E("a")])) == 1

    def test_periodic_markup(self):
        detector = parse_snoop(parse(
            f'<snoop:periodic {SNOOP_DECL} period="3"><a/><c/>'
            f'</snoop:periodic>'))
        assert isinstance(detector, Periodic)

    def test_not_markup(self):
        detector = parse_snoop(parse(
            f'<snoop:not {SNOOP_DECL}><a/><b/><c/></snoop:not>'))
        assert len(feed_sequence(detector, [E("a"), E("c")])) == 1

    @pytest.mark.parametrize("bad", [
        f'<snoop:frobnicate {SNOOP_DECL}><a/></snoop:frobnicate>',
        f'<snoop:and {SNOOP_DECL}><a/></snoop:and>',
        f'<snoop:any {SNOOP_DECL}><a/></snoop:any>',          # missing m
        f'<snoop:periodic {SNOOP_DECL}><a/><c/></snoop:periodic>',
        f'<snoop:not {SNOOP_DECL}><a/><b/></snoop:not>',
    ])
    def test_markup_errors(self, bad):
        with pytest.raises(EventMarkupError):
            parse_snoop(parse(bad))


class TestXChangeMarkup:
    def test_and_markup_with_window(self):
        query = parse_xchange(parse(
            f'<xc:and {XCHANGE_DECL} within="10"><a/><b/></xc:and>'))
        assert isinstance(query, AndQuery)
        assert query.within == 10.0

    def test_without_markup(self):
        query = parse_xchange(parse(
            f'<xc:without {XCHANGE_DECL}><xc:seq><a/><c/></xc:seq><b/>'
            f'</xc:without>'))
        assert isinstance(query, WithoutQuery)

    def test_unknown_operator(self):
        with pytest.raises(EventMarkupError):
            parse_xchange(parse(f'<xc:maybe {XCHANGE_DECL}><a/></xc:maybe>'))


class TestDispatch:
    def test_atomic_fallback(self):
        detector = parse_event_component(parse('<booking person="{P}"/>'))
        assert isinstance(detector, Atomic)

    def test_snoop_dispatch(self):
        detector = parse_event_component(parse(
            f'<snoop:or {SNOOP_DECL}><a/></snoop:or>'))
        assert isinstance(detector, Or)

    def test_xchange_dispatch(self):
        query = parse_event_component(parse(
            f'<xc:or {XCHANGE_DECL}><a/></xc:or>'))
        assert isinstance(query, OrQuery)

    def test_eca_bind_attribute_stripped(self):
        from repro.xmlmodel import ECA_NS
        pattern = parse_atomic(parse(
            f'<booking xmlns:eca="{ECA_NS}" eca:bind="Evt" person="{{P}}"/>'))
        assert pattern.bind_event_to == "Evt"
        assert pattern.variables() == {"P", "Evt"}
        # the bind attribute must not participate in matching
        from repro.events import Event
        assert pattern.match(Event(E("booking", {"person": "x"}), 0))
