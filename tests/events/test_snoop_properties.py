"""Property-based invariants of the SNOOP detectors (vs. naive counting)."""

from hypothesis import given, settings, strategies as st

from repro.events import (And, Atomic, AtomicPattern, EventStream, Not, Or,
                          Seq)
from repro.xmlmodel import E, parse


def atom(markup):
    return Atomic(AtomicPattern(parse(markup)))


_payload_specs = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "noise"]),
              st.integers(0, 2)),
    min_size=0, max_size=25)


def build_payloads(specs):
    return [E(name, {"k": str(k)}) for name, k in specs]


def run(detector, payloads):
    stream = EventStream()
    detections = []
    stream.subscribe(lambda event: detections.extend(detector.feed(event)))
    stream.emit_all(payloads, spacing=1.0)
    return detections


class TestCountingInvariants:
    @settings(max_examples=50, deadline=None)
    @given(_payload_specs)
    def test_atomic_counts_matches(self, specs):
        payloads = build_payloads(specs)
        detections = run(atom("<a/>"), payloads)
        assert len(detections) == sum(1 for name, _ in specs if name == "a")

    @settings(max_examples=50, deadline=None)
    @given(_payload_specs)
    def test_or_is_sum_of_children(self, specs):
        payloads = build_payloads(specs)
        combined = run(Or([atom("<a/>"), atom("<b/>")]), payloads)
        expected = sum(1 for name, _ in specs if name in ("a", "b"))
        assert len(combined) == expected

    @settings(max_examples=50, deadline=None)
    @given(_payload_specs)
    def test_seq_unrestricted_counts_ordered_pairs(self, specs):
        payloads = build_payloads(specs)
        detections = run(Seq(atom("<a/>"), atom("<b/>"), "unrestricted"),
                         payloads)
        a_positions = [i for i, (name, _) in enumerate(specs) if name == "a"]
        b_positions = [i for i, (name, _) in enumerate(specs) if name == "b"]
        expected = sum(1 for i in a_positions for j in b_positions if i < j)
        assert len(detections) == expected

    @settings(max_examples=50, deadline=None)
    @given(_payload_specs)
    def test_chronicle_count_is_min_matched_pairs(self, specs):
        payloads = build_payloads(specs)
        detections = run(Seq(atom("<a/>"), atom("<b/>"), "chronicle"),
                         payloads)
        # chronicle pairs each b with the oldest unconsumed earlier a:
        # simulate directly
        unconsumed = 0
        expected = 0
        for name, _ in specs:
            if name == "a":
                unconsumed += 1
            elif name == "b" and unconsumed:
                unconsumed -= 1
                expected += 1
        assert len(detections) == expected


class TestStructuralInvariants:
    @settings(max_examples=50, deadline=None)
    @given(_payload_specs)
    def test_occurrence_intervals_well_formed(self, specs):
        payloads = build_payloads(specs)
        detector = Or([
            Seq(atom("<a/>"), atom("<b/>"), "unrestricted"),
            And(atom("<b/>"), atom("<c/>"), "chronicle"),
        ])
        for occurrence in run(detector, payloads):
            assert occurrence.start <= occurrence.end
            times = [event.timestamp for event in occurrence.constituents]
            assert min(times) == occurrence.start
            assert max(times) == occurrence.end
            sequences = [event.sequence for event in occurrence.constituents]
            assert sequences == sorted(sequences)

    @settings(max_examples=50, deadline=None)
    @given(_payload_specs)
    def test_join_variables_consistent_in_detections(self, specs):
        payloads = build_payloads(specs)
        detector = Seq(atom('<a k="{K}"/>'), atom('<b k="{K}"/>'),
                       "unrestricted")
        for occurrence in run(detector, payloads):
            ks = {event.get("k") for event in occurrence.constituents}
            assert len(ks) == 1  # join variable forces equal k
            for binding in occurrence.bindings:
                assert binding["K"] in ks

    @settings(max_examples=30, deadline=None)
    @given(_payload_specs)
    def test_not_is_subset_of_seq(self, specs):
        """NOT(B)[A, C] detections ⊆ SEQ(A, C) detections."""
        payloads = build_payloads(specs)
        with_not = run(Not(atom("<a/>"), atom("<b/>"), atom("<c/>")),
                       payloads)
        plain_seq = run(Seq(atom("<a/>"), atom("<c/>"), "unrestricted"),
                        payloads)
        keys_not = {tuple(e.sequence for e in o.constituents)
                    for o in with_not}
        keys_seq = {tuple(e.sequence for e in o.constituents)
                    for o in plain_seq}
        assert keys_not <= keys_seq

    @settings(max_examples=30, deadline=None)
    @given(_payload_specs)
    def test_reset_restores_initial_behaviour(self, specs):
        payloads = build_payloads(specs)
        detector = Seq(atom("<a/>"), atom("<b/>"), "chronicle")
        first = len(run(detector, payloads))
        detector.reset()
        second = len(run(detector, payloads))
        assert first == second
