"""Additional SNOOP Any coverage and XChange window edge cases."""

from repro.events import (Any, Atomic, AtomicPattern, EventStream,
                          PatternQuery, SeqQuery)
from repro.xmlmodel import E, parse


def atom(markup):
    return Atomic(AtomicPattern(parse(markup)))


def run(detector, payloads, spacing=1.0):
    stream = EventStream()
    out = []
    stream.subscribe(lambda event: out.extend(detector.feed(event)))
    stream.emit_all(payloads, spacing=spacing)
    return out


class TestAnyOperator:
    def test_any_one_degenerates_to_or(self):
        detector = Any(1, [atom("<a/>"), atom("<b/>")])
        detections = run(detector, [E("a"), E("b"), E("c")])
        assert len(detections) == 2

    def test_any_all_children_is_and(self):
        detector = Any(3, [atom("<a/>"), atom("<b/>"), atom("<c/>")])
        assert run(detector, [E("a"), E("b")]) == []
        detector.reset()
        detections = run(detector, [E("b"), E("c"), E("a")])
        assert len(detections) == 1

    def test_any_consumes_used_occurrences(self):
        detector = Any(2, [atom("<a/>"), atom("<b/>"), atom("<c/>")])
        detections = run(detector, [E("a"), E("b"), E("c"), E("a")])
        # (a,b) fires; then c and the second a fire again
        assert len(detections) == 2

    def test_any_with_join_variables(self):
        detector = Any(2, [Atomic(AtomicPattern(parse('<a k="{K}"/>'))),
                           Atomic(AtomicPattern(parse('<b k="{K}"/>')))])
        detections = run(detector, [E("a", {"k": "1"}), E("b", {"k": "2"})])
        # incompatible join variables: the pair is rejected
        assert detections == []

    def test_any_variables_listing(self):
        detector = Any(2, [Atomic(AtomicPattern(parse('<a x="{X}"/>'))),
                           Atomic(AtomicPattern(parse('<b y="{Y}"/>')))])
        assert detector.variables() == {"X", "Y"}

    def test_any_reset(self):
        detector = Any(2, [atom("<a/>"), atom("<b/>")])
        run(detector, [E("a")])
        detector.reset()
        assert run(detector, [E("b")]) == []


class TestXChangeWindows:
    def pattern(self, markup):
        return PatternQuery(AtomicPattern(parse(markup)))

    def test_seq_window_boundary_inclusive(self):
        query = SeqQuery([self.pattern("<a/>"), self.pattern("<b/>")],
                         within=3.0)
        # events exactly 3 apart: span == within → allowed
        detections = run(query, [E("a"), E("b")], spacing=3.0)
        assert len(detections) == 1

    def test_seq_window_just_over(self):
        query = SeqQuery([self.pattern("<a/>"), self.pattern("<b/>")],
                         within=3.0)
        detections = run(query, [E("a"), E("b")], spacing=3.5)
        assert detections == []

    def test_three_stage_seq_ordering(self):
        query = SeqQuery([self.pattern("<a/>"), self.pattern("<b/>"),
                          self.pattern("<c/>")])
        assert len(run(query, [E("a"), E("b"), E("c")])) == 1
        query.reset()
        assert run(query, [E("a"), E("c"), E("b")]) == []

    def test_combination_deduplication(self):
        query = SeqQuery([self.pattern("<a/>"), self.pattern("<b/>")])
        detections = run(query, [E("a"), E("b"), E("x")])
        # the trailing unrelated event must not re-emit the pair
        assert len(detections) == 1
