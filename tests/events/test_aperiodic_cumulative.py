"""The A* operator (cumulative aperiodic) and its markup."""

from repro.events import (AperiodicCumulative, Atomic, AtomicPattern,
                          EventStream, SNOOP_NS, parse_snoop)
from repro.xmlmodel import E, parse


def atom(markup):
    return Atomic(AtomicPattern(parse(markup)))


def run(detector, payloads):
    stream = EventStream()
    out = []
    stream.subscribe(lambda event: out.extend(detector.feed(event)))
    stream.emit_all(payloads, spacing=1.0)
    return out


class TestAperiodicCumulative:
    def make(self):
        return AperiodicCumulative(atom("<a/>"),
                                   Atomic(AtomicPattern(
                                       parse('<b n="{N}"/>'))),
                                   atom("<c/>"))

    def test_signals_once_at_close_with_all_bodies(self):
        detector = self.make()
        detections = run(detector,
                         [E("a"), E("b", {"n": "1"}), E("b", {"n": "2"}),
                          E("c")])
        assert len(detections) == 1
        (occurrence,) = detections
        values = sorted(binding["N"] for binding in occurrence.bindings)
        assert values == ["1", "2"]
        names = [event.name.local for event in occurrence.constituents]
        assert names == ["a", "b", "b", "c"]

    def test_no_bodies_still_signals_window(self):
        detector = self.make()
        detections = run(detector, [E("a"), E("c")])
        assert len(detections) == 1
        assert len(detections[0].constituents) == 2  # just a and c

    def test_no_signal_without_close(self):
        detector = self.make()
        assert run(detector, [E("a"), E("b", {"n": "1"})]) == []

    def test_no_signal_without_open(self):
        detector = self.make()
        assert run(detector, [E("b", {"n": "1"}), E("c")]) == []

    def test_windows_are_independent(self):
        detector = self.make()
        detections = run(detector,
                         [E("a"), E("b", {"n": "1"}), E("c"),
                          E("a"), E("b", {"n": "2"}), E("c")])
        assert len(detections) == 2
        first, second = detections
        assert [b["N"] for b in first.bindings] == ["1"]
        assert [b["N"] for b in second.bindings] == ["2"]

    def test_reset(self):
        detector = self.make()
        run(detector, [E("a"), E("b", {"n": "1"})])
        detector.reset()
        assert run(detector, [E("c")]) == []

    def test_variables_include_all_three_roles(self):
        assert self.make().variables() == {"N"}


class TestMarkup:
    def test_cumulative_attribute_selects_a_star(self):
        detector = parse_snoop(parse(
            f'<snoop:aperiodic xmlns:snoop="{SNOOP_NS}" cumulative="true">'
            "<a/><b/><c/></snoop:aperiodic>"))
        assert isinstance(detector, AperiodicCumulative)

    def test_default_is_plain_aperiodic(self):
        from repro.events import Aperiodic
        detector = parse_snoop(parse(
            f'<snoop:aperiodic xmlns:snoop="{SNOOP_NS}">'
            "<a/><b/><c/></snoop:aperiodic>"))
        assert isinstance(detector, Aperiodic)
