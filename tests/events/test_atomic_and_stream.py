"""Event model, stream behaviour and atomic pattern matching."""

import pytest

from repro.bindings import Binding
from repro.events import AtomicPattern, Event, EventStream
from repro.xmlmodel import E, QName, parse

TRAVEL = "http://example.org/travel"


def booking(person="John Doe", frm="Munich", to="Paris"):
    return E(QName(TRAVEL, "booking"),
             {"person": person, "from": frm, "to": to})


def pattern(markup):
    return AtomicPattern(parse(markup, namespaces={"travel": TRAVEL}))


class TestEventStream:
    def test_emit_stamps_sequence_and_time(self):
        stream = EventStream()
        first = stream.emit(booking())
        stream.advance(2.5)
        second = stream.emit(booking())
        assert first.sequence == 0 and second.sequence == 1
        assert second.timestamp == pytest.approx(2.5)

    def test_subscribers_receive_events(self):
        stream = EventStream()
        seen = []
        stream.subscribe(seen.append)
        stream.emit(booking())
        assert len(seen) == 1
        stream.unsubscribe(seen.append)
        stream.emit(booking())
        assert len(seen) == 1

    def test_explicit_timestamp(self):
        stream = EventStream()
        event = stream.emit(booking(), at=10.0)
        assert event.timestamp == 10.0
        with pytest.raises(ValueError, match="before stream time"):
            stream.emit(booking(), at=5.0)

    def test_time_cannot_go_backwards(self):
        stream = EventStream()
        with pytest.raises(ValueError):
            stream.advance(-1)

    def test_emit_all_spacing_and_history(self):
        stream = EventStream()
        stream.emit_all([booking(), booking(), booking()], spacing=2.0)
        assert len(stream) == 3
        assert [event.timestamp for event in stream] == [0.0, 2.0, 4.0]


class TestAtomicPattern:
    def test_paper_booking_pattern(self):
        # Fig. 5/6: detect a booking, binding person and destination
        p = pattern('<travel:booking person="{Person}" from="{From}" '
                    'to="{To}"/>')
        event = Event(booking(), 1.0)
        occurrence = p.match(event)
        assert occurrence is not None
        (binding,) = occurrence.bindings
        assert binding == Binding({"Person": "John Doe", "From": "Munich",
                                   "To": "Paris"})
        assert occurrence.constituents == (event,)
        assert occurrence.start == occurrence.end == 1.0

    def test_literal_attribute_must_match(self):
        p = pattern('<travel:booking to="Paris" person="{P}"/>')
        assert p.match(Event(booking(to="Paris"), 0)) is not None
        assert p.match(Event(booking(to="Rome"), 0)) is None

    def test_wrong_element_name_rejected(self):
        p = pattern('<travel:cancellation person="{P}"/>')
        assert p.match(Event(booking(), 0)) is None

    def test_wrong_namespace_rejected(self):
        p = AtomicPattern(parse('<booking person="{P}"/>'))
        assert p.match(Event(booking(), 0)) is None

    def test_missing_attribute_rejected(self):
        p = pattern('<travel:booking seat="{S}"/>')
        assert p.match(Event(booking(), 0)) is None

    def test_extra_event_attributes_allowed(self):
        p = pattern('<travel:booking person="{P}"/>')
        assert p.match(Event(booking(), 0)) is not None

    def test_repeated_variable_is_join(self):
        p = pattern('<travel:booking from="{X}" to="{X}"/>')
        assert p.match(Event(booking(frm="Paris", to="Paris"), 0)) is not None
        assert p.match(Event(booking(), 0)) is None

    def test_child_element_matching(self):
        p = AtomicPattern(parse(
            '<order><item sku="{Sku}"/></order>'))
        event_payload = parse(
            '<order><note>rush</note><item sku="A1"/></order>')
        occurrence = p.match(Event(event_payload, 0))
        (binding,) = occurrence.bindings
        assert binding["Sku"] == "A1"

    def test_child_text_variable(self):
        p = AtomicPattern(parse("<msg><to>{Who}</to></msg>"))
        occurrence = p.match(Event(parse("<msg><to>Bob</to></msg>"), 0))
        assert occurrence.bindings.sorted().to_table().count("Bob") == 1

    def test_bind_event_to_variable(self):
        p = AtomicPattern(parse('<travel:booking person="{P}"/>',
                                namespaces={"travel": TRAVEL}),
                          bind_event_to="Evt")
        occurrence = p.match(Event(booking(), 0))
        (binding,) = occurrence.bindings
        assert binding["Evt"].name == QName(TRAVEL, "booking")

    def test_variables_listing(self):
        p = AtomicPattern(parse('<a x="{X}"><b>{Y}</b></a>'),
                          bind_event_to="E")
        assert p.variables() == {"X", "Y", "E"}
