"""SNOOP composite event detection: operators, contexts, variables."""

import pytest

from repro.events import (And, Any, Aperiodic, Atomic, AtomicPattern, Event,
                          EventStream, Not, Or, Periodic, Seq, SnoopError)
from repro.xmlmodel import E, parse


def atom(markup):
    return Atomic(AtomicPattern(parse(markup)))


def feed_sequence(detector, payloads, spacing=1.0):
    """Emit payloads through a stream; collect detections in order."""
    stream = EventStream()
    detections = []
    stream.subscribe(lambda event: detections.extend(detector.feed(event)))
    stream.emit_all(payloads, spacing=spacing)
    return detections


A = '<a k="{K}"/>'
B = '<b k="{K}"/>'
C = "<c/>"


class TestBasicOperators:
    def test_or_detects_either(self):
        detector = Or([atom("<a/>"), atom("<b/>")])
        detections = feed_sequence(detector, [E("a"), E("c"), E("b")])
        assert len(detections) == 2

    def test_and_any_order(self):
        detections = feed_sequence(And(atom("<a/>"), atom("<b/>")),
                                   [E("b"), E("a")])
        assert len(detections) == 1
        assert detections[0].start == 0.0 and detections[0].end == 1.0

    def test_seq_requires_order(self):
        detector = Seq(atom("<a/>"), atom("<b/>"))
        assert len(feed_sequence(detector, [E("a"), E("b")])) == 1
        detector.reset()
        assert len(feed_sequence(detector, [E("b"), E("a")])) == 0

    def test_seq_three_stage(self):
        detector = Seq(Seq(atom("<a/>"), atom("<b/>")), atom("<c/>"))
        detections = feed_sequence(detector, [E("a"), E("b"), E("c")])
        assert len(detections) == 1
        assert [e.name.local for e in detections[0].constituents] == \
            ["a", "b", "c"]

    def test_any_two_of_three(self):
        detector = Any(2, [atom("<a/>"), atom("<b/>"), atom("<c/>")])
        detections = feed_sequence(detector, [E("a"), E("c")])
        assert len(detections) == 1
        names = {e.name.local for e in detections[0].constituents}
        assert names == {"a", "c"}

    def test_any_same_event_type_insufficient(self):
        detector = Any(2, [atom("<a/>"), atom("<b/>")])
        assert len(feed_sequence(detector, [E("a"), E("a")])) == 0

    def test_any_m_validation(self):
        with pytest.raises(SnoopError):
            Any(3, [atom("<a/>")])

    def test_not_detects_absence(self):
        detector = Not(atom("<a/>"), atom("<b/>"), atom("<c/>"))
        assert len(feed_sequence(detector, [E("a"), E("c")])) == 1

    def test_not_suppressed_by_forbidden(self):
        detector = Not(atom("<a/>"), atom("<b/>"), atom("<c/>"))
        assert len(feed_sequence(detector, [E("a"), E("b"), E("c")])) == 0

    def test_aperiodic_signals_each_inner_event(self):
        detector = Aperiodic(atom("<a/>"), atom("<b/>"), atom("<c/>"))
        detections = feed_sequence(
            detector, [E("a"), E("b"), E("b"), E("c"), E("b")])
        assert len(detections) == 2  # the two b's inside the a..c window

    def test_periodic_fires_on_clock(self):
        detector = Periodic(atom("<a/>"), 2.0, atom("<c/>"))
        stream = EventStream()
        detections = []
        stream.subscribe(lambda ev: detections.extend(detector.feed(ev)))
        stream.emit(E("a"))            # t=0, next fire at 2
        stream.advance(5.0)
        stream.emit(E("x"))            # t=5 → fires for t=2 and t=4
        assert len(detections) == 2
        stream.emit(E("c"))            # closes the window
        stream.advance(10.0)
        stream.emit(E("x"))
        assert len(detections) == 2

    def test_periodic_requires_positive_period(self):
        with pytest.raises(SnoopError):
            Periodic(atom("<a/>"), 0, atom("<c/>"))


class TestVariables:
    def test_join_variable_across_events(self):
        # K must be equal in both constituent events
        detector = Seq(atom(A), atom(B))
        detections = feed_sequence(
            detector, [E("a", {"k": "1"}), E("b", {"k": "2"}),
                       E("b", {"k": "1"})])
        assert len(detections) == 1
        (binding,) = detections[0].bindings
        assert binding["K"] == "1"

    def test_disjoint_variables_union(self):
        detector = And(atom('<a x="{X}"/>'), atom('<b y="{Y}"/>'))
        detections = feed_sequence(
            detector, [E("a", {"x": "1"}), E("b", {"y": "2"})])
        (binding,) = detections[0].bindings
        assert dict(binding) == {"X": "1", "Y": "2"}

    def test_variables_listing(self):
        detector = Seq(atom(A), Or([atom(B), atom(C)]))
        assert detector.variables() == {"K"}


class TestParameterContexts:
    def setup_method(self):
        self.payloads = [E("a", {"n": "1"}), E("a", {"n": "2"}), E("b"),
                         E("b")]

    def run(self, context):
        detector = Seq(Atomic(AtomicPattern(parse('<a n="{N}"/>'))),
                       atom("<b/>"), context)
        return feed_sequence(detector, self.payloads)

    def test_unrestricted_all_pairs(self):
        detections = self.run("unrestricted")
        assert len(detections) == 4  # both a's × both b's

    def test_recent_keeps_latest_initiator(self):
        detections = self.run("recent")
        assert len(detections) == 2
        values = [b["N"] for d in detections for b in d.bindings]
        assert values == ["2", "2"]

    def test_chronicle_fifo(self):
        detections = self.run("chronicle")
        assert len(detections) == 2
        values = [b["N"] for d in detections for b in d.bindings]
        assert values == ["1", "2"]

    def test_continuous_consumes_all_on_use(self):
        detections = self.run("continuous")
        # first b consumes both initiators; second b finds none
        assert len(detections) == 2
        values = sorted(b["N"] for d in detections for b in d.bindings)
        assert values == ["1", "2"]

    def test_cumulative_merges_initiators(self):
        detections = self.run("cumulative")
        assert len(detections) == 1
        values = sorted(b["N"] for b in detections[0].bindings)
        assert values == ["1", "2"]
        assert len(detections[0].constituents) == 3  # a, a, b

    def test_unknown_context_rejected(self):
        with pytest.raises(SnoopError, match="unknown parameter context"):
            Seq(atom("<a/>"), atom("<b/>"), "bogus")


class TestReset:
    def test_reset_clears_partial_state(self):
        detector = Seq(atom("<a/>"), atom("<b/>"))
        feed_sequence(detector, [E("a")])
        detector.reset()
        assert feed_sequence(detector, [E("b")]) == []
