"""Property-based checks of the XPath evaluator against naive recursion."""

from hypothesis import given, settings, strategies as st

from repro.xmlmodel import Element, QName, Text
from repro.xpath import evaluate, string_value


@st.composite
def trees(draw, depth=0):
    name = draw(st.sampled_from(["a", "b", "c"]))
    element = Element(QName(None, name))
    n_attrs = draw(st.integers(0, 2))
    for index in range(n_attrs):
        element.set(f"k{index}", draw(st.sampled_from(["1", "2", "x"])))
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append(draw(trees(depth=depth + 1)))
            else:
                element.append(Text(draw(st.sampled_from(["t", "u", ""]))))
    return element


def naive_descendants(element):
    out = []
    for child in element.children:
        if isinstance(child, Element):
            out.append(child)
            out.extend(naive_descendants(child))
    return out


class TestAgainstNaiveRecursion:
    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_descendant_axis(self, tree):
        expected = [node for node in naive_descendants(tree)]
        assert evaluate("descendant::*", tree) == expected

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_double_slash_name_test(self, tree):
        expected = [node for node in naive_descendants(tree)
                    if node.name.local == "b"]
        result = evaluate(".//b", tree)
        assert result == expected

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_count_all_descendants(self, tree):
        assert evaluate("count(descendant::*)", tree) == \
            float(len(naive_descendants(tree)))

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_string_value_is_concatenated_text(self, tree):
        assert evaluate("string(.)", tree) == tree.text()

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_union_of_disjoint_nametests_covers_all(self, tree):
        everything = evaluate("descendant::*", tree)
        unioned = evaluate(
            "descendant::a | descendant::b | descendant::c", tree)
        assert unioned == everything

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_parent_of_children_is_self(self, tree):
        for child in evaluate("*", tree):
            assert evaluate("..", child) == [tree]

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_positions_partition_children(self, tree):
        children = evaluate("*", tree)
        by_position = [node for index in range(1, len(children) + 1)
                       for node in evaluate(f"*[{index}]", tree)]
        assert by_position == children

    @settings(max_examples=60, deadline=None)
    @given(trees())
    def test_attribute_count_matches_model(self, tree):
        expected = float(sum(len(node.attributes)
                             for node in [tree] + naive_descendants(tree)))
        assert evaluate("count(descendant-or-self::*/@*)", tree) == expected

    @settings(max_examples=40, deadline=None)
    @given(trees())
    def test_sibling_axes_are_inverse(self, tree):
        children = evaluate("*", tree)
        for index, child in enumerate(children):
            following = evaluate("following-sibling::*", child)
            preceding = evaluate("preceding-sibling::*", child)
            assert following == children[index + 1:]
            assert preceding == children[:index]
