"""Evaluation semantics of the XPath subset."""

import math

import pytest

from repro.xmlmodel import parse
from repro.xpath import (AttributeNode, XPathEvaluationError, evaluate,
                         string_value)

DOC = parse("""
<library>
  <book year="2003" lang="de">
    <title>Semantic Web Grundlagen</title>
    <price>30</price>
  </book>
  <book year="2005">
    <title>Active Rules</title>
    <price>45</price>
    <note>draft</note>
  </book>
  <journal year="2005"><title>TPLP</title></journal>
</library>
""")


def titles(value):
    return [string_value(node) for node in value]


class TestPaths:
    def test_child_step(self):
        assert len(evaluate("book", DOC)) == 2

    def test_multi_step_path(self):
        assert titles(evaluate("book/title", DOC)) == [
            "Semantic Web Grundlagen", "Active Rules"]

    def test_absolute_path(self):
        title = DOC.find("book").find("title")
        assert titles(evaluate("/library/journal/title", title)) == ["TPLP"]

    def test_descendant_or_self_abbreviation(self):
        assert titles(evaluate("//title", DOC)) == [
            "Semantic Web Grundlagen", "Active Rules", "TPLP"]

    def test_wildcard(self):
        assert len(evaluate("*", DOC)) == 3

    def test_attribute_axis(self):
        values = [node.value for node in evaluate("book/@year", DOC)]
        assert values == ["2003", "2005"]

    def test_parent_abbreviation(self):
        title = DOC.find("book").find("title")
        assert evaluate("..", title)[0] is DOC.find("book")

    def test_self_dot(self):
        assert evaluate(".", DOC) == [DOC]

    def test_ancestor_axis(self):
        title = DOC.find("book").find("title")
        names = [node.name.local for node in evaluate("ancestor::*", title)]
        assert names == ["library", "book"]

    def test_following_sibling(self):
        first = DOC.find("book")
        names = [n.name.local for n in evaluate("following-sibling::*", first)]
        assert names == ["book", "journal"]

    def test_preceding_sibling_positions(self):
        journal = DOC.find("journal")
        # position 1 on a reverse axis is the nearest preceding sibling
        nearest = evaluate("preceding-sibling::book[1]", journal)
        assert evaluate("title", nearest[0])[0].text() == "Active Rules"

    def test_text_kind_test(self):
        title = DOC.find("book").find("title")
        assert [t.value for t in evaluate("text()", title)] == [
            "Semantic Web Grundlagen"]

    def test_union_in_document_order(self):
        result = evaluate("journal/title | book/title", DOC)
        assert titles(result) == ["Semantic Web Grundlagen", "Active Rules",
                                  "TPLP"]

    def test_result_deduplicated(self):
        assert len(evaluate("book | book", DOC)) == 2


class TestPredicates:
    def test_numeric_predicate(self):
        assert titles(evaluate("book[2]/title", DOC)) == ["Active Rules"]

    def test_last(self):
        assert titles(evaluate("book[last()]/title", DOC)) == ["Active Rules"]

    def test_attribute_comparison(self):
        assert titles(evaluate("book[@year=2005]/title", DOC)) == [
            "Active Rules"]

    def test_existence_predicate(self):
        assert titles(evaluate("book[note]/title", DOC)) == ["Active Rules"]

    def test_absent_attribute(self):
        assert titles(evaluate("book[not(@lang)]/title", DOC)) == [
            "Active Rules"]

    def test_chained_predicates(self):
        assert titles(evaluate("book[@year=2005][1]/title", DOC)) == [
            "Active Rules"]

    def test_predicate_on_price_value(self):
        assert titles(evaluate("book[price > 40]/title", DOC)) == [
            "Active Rules"]


class TestValuesAndOperators:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7.0),
        ("(1 + 2) * 3", 9.0),
        ("10 div 4", 2.5),
        ("10 mod 3", 1.0),
        ("-3 + 1", -2.0),
        ("2 < 3", True),
        ("2 >= 3", False),
        ("'a' = 'a'", True),
        ("'a' != 'b'", True),
        ("true() and false()", False),
        ("true() or false()", True),
    ])
    def test_arithmetic_and_logic(self, expr, expected):
        assert evaluate(expr, DOC) == expected

    def test_division_by_zero_is_infinite(self):
        assert evaluate("1 div 0", DOC) == math.inf
        assert math.isnan(evaluate("0 div 0", DOC))

    def test_nodeset_to_number(self):
        assert evaluate("sum(book/price)", DOC) == 75.0

    def test_existential_comparison(self):
        # any book year equal to 2003?
        assert evaluate("book/@year = 2003", DOC) is True
        # note: != is also existential in XPath 1.0
        assert evaluate("book/@year != 2003", DOC) is True
        assert evaluate("book/@year = 1999", DOC) is False

    def test_variables(self):
        assert evaluate("book[@year=$y]/title", DOC,
                        variables={"y": "2005"})[0].text() == "Active Rules"

    def test_unbound_variable_raises(self):
        with pytest.raises(XPathEvaluationError, match="unbound"):
            evaluate("$nope", DOC)

    def test_variable_holding_nodeset(self):
        books = evaluate("book", DOC)
        assert titles(evaluate("$books[2]/title", DOC,
                               variables={"books": books})) == ["Active Rules"]


class TestFunctions:
    @pytest.mark.parametrize("expr,expected", [
        ("count(book)", 2.0),
        ("count(//title)", 3.0),
        ("concat('a', 'b', 'c')", "abc"),
        ("contains('booking', 'ok')", True),
        ("starts-with('Munich', 'Mu')", True),
        ("substring('12345', 2, 3)", "234"),
        ("substring('12345', 2)", "2345"),
        ("substring-before('a=b', '=')", "a"),
        ("substring-after('a=b', '=')", "b"),
        ("string-length('abcd')", 4.0),
        ("normalize-space('  a   b ')", "a b"),
        ("translate('bar', 'abc', 'ABC')", "BAr"),
        ("floor(2.7)", 2),
        ("ceiling(2.1)", 3),
        ("round(2.5)", 3.0),
        ("number('42')", 42.0),
        ("string(12)", "12"),
        ("string(12.5)", "12.5"),
        ("boolean('x')", True),
        ("not('')", True),
    ])
    def test_core_functions(self, expr, expected):
        assert evaluate(expr, DOC) == expected

    def test_string_of_nodeset_takes_first(self):
        assert evaluate("string(book/title)", DOC) == "Semantic Web Grundlagen"

    def test_name_functions(self):
        assert evaluate("name(book)", DOC) == "book"
        assert evaluate("local-name(book)", DOC) == "book"

    def test_unknown_function_raises(self):
        with pytest.raises(XPathEvaluationError, match="unknown function"):
            evaluate("frobnicate(1)", DOC)


class TestNamespaces:
    NSDOC = parse('<t:a xmlns:t="urn:travel"><t:b>x</t:b><c>y</c></t:a>')

    def test_prefixed_name_test(self):
        result = evaluate("t:b", self.NSDOC, namespaces={"t": "urn:travel"})
        assert [node.text() for node in result] == ["x"]

    def test_unprefixed_matches_no_namespace(self):
        assert [n.text() for n in evaluate("c", self.NSDOC)] == ["y"]
        assert evaluate("b", self.NSDOC) == []

    def test_default_element_namespace_option(self):
        result = evaluate("b", self.NSDOC,
                          default_element_namespace="urn:travel")
        assert [node.text() for node in result] == ["x"]

    def test_undeclared_prefix_raises(self):
        with pytest.raises(XPathEvaluationError, match="undeclared prefix"):
            evaluate("q:b", self.NSDOC)

    def test_prefix_wildcard(self):
        result = evaluate("t:*", self.NSDOC, namespaces={"t": "urn:travel"})
        assert [node.name.local for node in result] == ["b"]


class TestAttributeNodes:
    def test_attribute_node_fields(self):
        node = evaluate("book/@year", DOC)[0]
        assert isinstance(node, AttributeNode)
        assert node.value == "2003"
        assert node.owner is DOC.find("book")

    def test_attribute_string_value(self):
        assert evaluate("string(book[1]/@year)", DOC) == "2003"
