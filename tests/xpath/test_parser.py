"""Grammar coverage and error reporting of the XPath parser."""

import pytest

from repro.xpath import parse_xpath, XPathSyntaxError
from repro.xpath.ast import (Arithmetic, Comparison, Filter, FunctionCall,
                             KindTest, NameTest, Path, Root, Step, Union,
                             VariableRef)


class TestPathParsing:
    def test_relative_single_step(self):
        path = parse_xpath("book")
        assert isinstance(path, Path)
        assert path.start is None
        assert path.steps[0] == Step("child", NameTest(None, "book"))

    def test_absolute_path(self):
        path = parse_xpath("/a/b")
        assert isinstance(path.start, Root)
        assert [step.test.local for step in path.steps] == ["a", "b"]

    def test_double_slash_expands(self):
        path = parse_xpath("//b")
        assert path.steps[0] == Step("descendant-or-self", KindTest("node"))
        assert path.steps[1].test == NameTest(None, "b")

    def test_abbreviated_attribute(self):
        path = parse_xpath("@year")
        assert path.steps[0].axis == "attribute"

    def test_explicit_axis(self):
        path = parse_xpath("ancestor-or-self::x")
        assert path.steps[0].axis == "ancestor-or-self"

    def test_unknown_axis_rejected(self):
        with pytest.raises(XPathSyntaxError, match="unknown axis"):
            parse_xpath("sideways::x")

    def test_prefixed_name_test(self):
        path = parse_xpath("t:booking")
        assert path.steps[0].test == NameTest("t", "booking")

    def test_prefix_wildcard(self):
        assert parse_xpath("t:*").steps[0].test == NameTest("t", "*")

    def test_dotdot(self):
        assert parse_xpath("../x").steps[0].axis == "parent"

    def test_kind_tests(self):
        assert parse_xpath("text()").steps[0].test == KindTest("text")
        assert parse_xpath("node()").steps[0].test == KindTest("node")

    def test_predicates_attach_to_step(self):
        path = parse_xpath("a[1][@k='v']/b")
        assert len(path.steps[0].predicates) == 2
        assert path.steps[1].predicates == ()

    def test_variable_with_steps(self):
        path = parse_xpath("$doc/a")
        assert isinstance(path.start, VariableRef)

    def test_filter_expression(self):
        expr = parse_xpath("$items[2]")
        assert isinstance(expr, Filter)


class TestExpressionParsing:
    def test_precedence_or_and(self):
        expr = parse_xpath("1 or 2 and 3")
        assert type(expr).__name__ == "Or"

    def test_star_is_operator_after_operand(self):
        expr = parse_xpath("2 * 3")
        assert isinstance(expr, Arithmetic) and expr.op == "*"

    def test_star_is_nametest_at_start(self):
        expr = parse_xpath("*")
        assert isinstance(expr, Path)

    def test_div_mod_keywords(self):
        assert parse_xpath("4 div 2").op == "div"
        assert parse_xpath("4 mod 2").op == "mod"

    def test_path_div_is_a_step_name(self):
        # 'div' not followed by operand position: here it is an element name
        path = parse_xpath("div")
        assert path.steps[0].test == NameTest(None, "div")

    def test_comparison_chain(self):
        expr = parse_xpath("a = b")
        assert isinstance(expr, Comparison)

    def test_union(self):
        assert isinstance(parse_xpath("a | b"), Union)

    def test_function_with_args(self):
        expr = parse_xpath("concat('a', 'b')")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "concat"
        assert len(expr.arguments) == 2

    def test_prefixed_function_name(self):
        expr = parse_xpath("fn:count(x)")
        assert expr.name == "fn:count"

    def test_function_then_path(self):
        # a function result can be navigated into
        path = parse_xpath("string(a)/b") if False else parse_xpath("$v/a/b")
        assert isinstance(path, Path)
        assert len(path.steps) == 2

    def test_nested_parens(self):
        assert parse_xpath("((1))").value == 1.0

    def test_xquery_comment_skipped(self):
        assert parse_xpath("1 (: a comment :) + 2").op == "+"


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "", "a[", "a]", "foo(", "1 +", "$", "a/", "'unterminated",
        "a[]", "@", "1 2",
    ])
    def test_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_error_mentions_offset(self):
        with pytest.raises(XPathSyntaxError, match="offset"):
            parse_xpath("a[")
