"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment of DESIGN.md's
per-experiment index (BENCH-T1 … BENCH-T5).  Results are additionally
collected into ``benchmarks/results.json`` by pytest-benchmark's own
machinery when ``--benchmark-json`` is passed; EXPERIMENTS.md records a
reference run.

On top of that, ``pytest_sessionfinish`` groups the collected stats by
module and writes one ``BENCH_<name>.json`` per ``bench_<name>.py``
(``ops_per_s`` / ``p50_s`` / ``p99_s`` per test) so runs diff as data.
"""

from pathlib import Path

import pytest

from repro.core import ECAEngine
from repro.domain import (WorkloadConfig, synthetic_classes, synthetic_fleet,
                          synthetic_persons)
from repro.services import standard_deployment

from reporting import summarize, write_bench_json


def build_world(config: WorkloadConfig):
    """A wired deployment + engine over synthetic documents."""
    deployment = standard_deployment()
    deployment.add_document("persons.xml", synthetic_persons(config))
    deployment.add_document("classes.xml", synthetic_classes())
    deployment.add_document("fleet.xml", synthetic_fleet(config))
    engine = ECAEngine(deployment.grh, keep_instances=False)
    return deployment, engine


@pytest.fixture()
def small_config():
    return WorkloadConfig(persons=50, fleet_size=40, cities=3)


def pytest_sessionfinish(session, exitstatus):
    """Emit one ``BENCH_<name>.json`` per bench module that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    by_module: dict[str, dict] = {}
    for bench in bench_session.benchmarks:
        data = list(bench.stats.data)
        if not data:
            continue
        module = Path(bench.fullname.split("::", 1)[0]).stem
        name = module.removeprefix("bench_")
        label = bench.fullname.split("::", 1)[-1]
        by_module.setdefault(name, {})[label] = summarize(data)
    for name, series in by_module.items():
        write_bench_json(name, series)
