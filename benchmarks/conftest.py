"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment of DESIGN.md's
per-experiment index (BENCH-T1 … BENCH-T5).  Results are additionally
collected into ``benchmarks/results.json`` by pytest-benchmark's own
machinery when ``--benchmark-json`` is passed; EXPERIMENTS.md records a
reference run.
"""

import pytest

from repro.core import ECAEngine
from repro.domain import (WorkloadConfig, synthetic_classes, synthetic_fleet,
                          synthetic_persons)
from repro.services import standard_deployment


def build_world(config: WorkloadConfig):
    """A wired deployment + engine over synthetic documents."""
    deployment = standard_deployment()
    deployment.add_document("persons.xml", synthetic_persons(config))
    deployment.add_document("classes.xml", synthetic_classes())
    deployment.add_document("fleet.xml", synthetic_fleet(config))
    engine = ECAEngine(deployment.grh, keep_instances=False)
    return deployment, engine


@pytest.fixture()
def small_config():
    return WorkloadConfig(persons=50, fleet_size=40, cities=3)
