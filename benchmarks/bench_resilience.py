"""BENCH-R1: what does the resilience layer cost on the happy path?

The retry/breaker wrapper sits on every GRH request, so its no-failure
overhead must be ≈0: a closure call, a breaker dict lookup and two
counter increments per request — no sleeping, no clock reads beyond the
breaker check.  Four configurations over the same aware query service:

1. **no breaker, no retries** — the wrapper at its thinnest,
2. **default manager** — breaker enabled, no retries (the GRH default),
3. **retry policy armed** (max_attempts=3) but never exercised,
4. **failures injected** — every other request crashes once and is
   retried (sleep stubbed out), to see the cost of the retry loop when
   it actually runs.

``test_happy_path_overhead_is_negligible`` pins the acceptance bound:
configuration 3 vs 1 on min-of-repeats timings, < 2% overhead.
"""

import timeit

from repro.bindings import Relation, relation_to_answers
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry,
                       ResilienceManager, RetryPolicy)
from repro.services import InProcessTransport
from repro.xmlmodel import parse

LANG = "urn:bench:q"


class EchoService:
    def handle(self, message):
        return relation_to_answers(Relation([{"Q": "ok"}]))


class FailEveryOther:
    def __init__(self):
        self.calls = 0

    def handle(self, message):
        self.calls += 1
        if self.calls % 2 == 1:
            raise RuntimeError("transient (simulated)")
        return relation_to_answers(Relation([{"Q": "ok"}]))


def build(resilience, service=None):
    grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport(),
                                resilience=resilience)
    grh.add_service(LanguageDescriptor(LANG, "query", "q"),
                    service or EchoService())
    spec = ComponentSpec("query", LANG,
                         content=parse(f"<q xmlns='{LANG}'/>"))
    relation = Relation.unit()
    return lambda: grh.evaluate_query("b::q", spec, relation)


def no_resilience():
    return build(ResilienceManager(breaker=None))


def default_manager():
    return build(None)


def retry_armed():
    return build(ResilienceManager(retry=RetryPolicy(max_attempts=3)))


def retries_exercised():
    manager = ResilienceManager(retry=RetryPolicy(max_attempts=3),
                                sleep=lambda s: None)
    return build(manager, FailEveryOther())


class TestResilienceOverhead:
    def test_1_no_breaker_no_retries(self, benchmark):
        benchmark(no_resilience())

    def test_2_default_manager(self, benchmark):
        benchmark(default_manager())

    def test_3_retry_policy_armed_unused(self, benchmark):
        benchmark(retry_armed())

    def test_4_retries_exercised(self, benchmark):
        benchmark(retries_exercised())


class TestAcceptanceBound:
    def test_happy_path_overhead_is_negligible(self):
        """The armed-but-unused wrapper must cost <2% of a real request.

        End-to-end A/B timing of two full GRH stacks drifts by ±2-3%
        run-to-run (CPU frequency wander), which would swamp the
        sub-microsecond quantity under test.  Instead: time the
        resilience wrapper around a no-op directly (its *absolute*
        per-call cost, which is stable under min-of-repeats) and relate
        it to the measured cost of one real mediated request.
        """
        manager = ResilienceManager(retry=RetryPolicy(max_attempts=3))
        descriptor = LanguageDescriptor(LANG, "query", "q")
        noop = lambda: "ok"  # noqa: E731

        def wrapped():
            return manager.call("svc:q", descriptor, noop)

        wrapped()  # warm: breaker + per-service slots created
        number = 20_000
        t_wrapped = min(timeit.repeat(wrapped, number=number, repeat=7))
        t_noop = min(timeit.repeat(noop, number=number, repeat=7))
        wrapper_cost = (t_wrapped - t_noop) / number

        request = no_resilience()
        for _ in range(50):
            request()  # warm parser caches
        t_request = min(timeit.repeat(request, number=200, repeat=5)) / 200

        overhead = wrapper_cost / t_request
        assert overhead < 0.02, (
            f"wrapper costs {wrapper_cost * 1e6:.2f}us per call = "
            f"{overhead:.2%} of a {t_request * 1e6:.0f}us request")
