"""BENCH-T3: composite event detection throughput (SNOOP and XChange).

Series:

* events/sec per SNOOP operator (seq, and, or, not, aperiodic) on a
  stream with 10% relevant events,
* the parameter-context matrix for seq: unrestricted / recent /
  chronicle / continuous / cumulative — contexts differ in how much
  partial-match state they retain, so throughput ranks
  recent ≥ chronicle ≈ continuous ≥ cumulative ≥ unrestricted,
* the XChange-style ``and`` with and without a time window.

Expected shape: unrestricted accumulates initiators forever (cost grows
over the stream); recent is O(1) state; windows bound XChange state.
"""

import pytest

from repro.events import (And, Aperiodic, Atomic, AtomicPattern, AndQuery,
                          EventStream, Not, Or, PatternQuery, Seq)
from repro.xmlmodel import E, parse


def atom(markup):
    return Atomic(AtomicPattern(parse(markup)))


def pattern_query(markup):
    return PatternQuery(AtomicPattern(parse(markup)))


def make_stream_payloads(count):
    """10% a-events, 10% b-events, 80% noise."""
    payloads = []
    for index in range(count):
        if index % 10 == 0:
            payloads.append(E("a", {"k": str(index % 7)}))
        elif index % 10 == 5:
            payloads.append(E("b", {"k": str(index % 7)}))
        else:
            payloads.append(E(f"noise{index % 3}"))
    return payloads


def run_detector(detector, payloads):
    detector.reset()
    stream = EventStream()
    detections = []
    stream.subscribe(lambda event: detections.extend(detector.feed(event)))
    stream.emit_all(payloads, spacing=1.0)
    return detections


OPERATORS = {
    "seq": lambda: Seq(atom('<a k="{K}"/>'), atom('<b k="{K}"/>'),
                       "chronicle"),
    "and": lambda: And(atom("<a/>"), atom("<b/>"), "chronicle"),
    "or": lambda: Or([atom("<a/>"), atom("<b/>")]),
    "not": lambda: Not(atom("<a/>"), atom("<c/>"), atom("<b/>")),
    "aperiodic": lambda: Aperiodic(atom("<a/>"), atom("<b/>"),
                                   atom("<never/>")),
}


class TestOperatorThroughput:
    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    def test_operator(self, benchmark, operator):
        payloads = make_stream_payloads(500)
        detector = OPERATORS[operator]()
        benchmark(run_detector, detector, payloads)


class TestParameterContexts:
    @pytest.mark.parametrize("context", ["unrestricted", "recent",
                                         "chronicle", "continuous",
                                         "cumulative"])
    def test_seq_context(self, benchmark, context):
        payloads = make_stream_payloads(500)
        detector = Seq(atom("<a/>"), atom("<b/>"), context)
        benchmark(run_detector, detector, payloads)


class TestXChangeThroughput:
    def test_and_unbounded(self, benchmark):
        payloads = make_stream_payloads(300)
        query = AndQuery([pattern_query('<a k="{K}"/>'),
                          pattern_query('<b k="{K}"/>')])
        benchmark(run_detector, query, payloads)

    def test_and_windowed(self, benchmark):
        payloads = make_stream_payloads(300)
        query = AndQuery([pattern_query('<a k="{K}"/>'),
                          pattern_query('<b k="{K}"/>')], within=20.0)
        benchmark(run_detector, query, payloads)
