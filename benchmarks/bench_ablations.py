"""Ablation benches for the design choices DESIGN.md §5 calls out.

* **Datalog semi-naive vs. naive** iteration on a recursive program
  (transitive closure over a chain): semi-naive re-derives only from the
  previous round's delta, so each round is O(delta) instead of O(all).
* **SPARQL selectivity-ordered vs. textual-order** BGP evaluation: the
  query lists an unselective pattern first; the optimizer's reordering
  should dominate as the graph grows.
* **GRH opaque-request cache** on the unaware per-tuple path (Fig. 9):
  with many duplicate substituted queries, caching trades memory for
  transport round-trips.
"""

import pytest

from repro.bindings import Relation
from repro.datalog import DatalogEngine
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry)
from repro.rdf import Graph, Literal, Namespace, select
from repro.services import EXIST_LANG, ExistLikeService, InProcessTransport

CHAIN = 60


def chain_program():
    facts = "\n".join(f"edge(n{i}, n{i + 1})." for i in range(CHAIN))
    return facts + """
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
    """


class TestDatalogStrategies:
    @pytest.mark.parametrize("strategy", ["semi-naive", "naive"])
    def test_transitive_closure(self, benchmark, strategy):
        program = chain_program()

        def run():
            engine = DatalogEngine(program, strategy=strategy)
            return len(engine.facts("path", 2))

        result = benchmark(run)
        assert result == CHAIN * (CHAIN + 1) // 2


EX = Namespace("urn:bench#")


def wide_graph(size):
    graph = Graph()
    for index in range(size):
        subject = EX[f"item{index}"]
        graph.add(subject, EX.kind, Literal("common"))       # unselective
        graph.add(subject, EX.serial, Literal(str(index)))   # selective
    return graph


class TestSparqlJoinOrdering:
    QUERY = ("PREFIX ex: <urn:bench#> SELECT ?x WHERE { "
             "?x ex:kind 'common' . ?x ex:serial '7' }")

    @pytest.mark.parametrize("reorder", [True, False],
                             ids=["selectivity-ordered", "textual-order"])
    def test_unselective_pattern_first(self, benchmark, reorder):
        graph = wide_graph(800)
        result = benchmark(select, graph, self.QUERY, reorder)
        assert len(result) == 1


class TestOpaqueRequestCache:
    def _grh(self, cache):
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, InProcessTransport(),
                                    cache_opaque_requests=cache)
        from repro.domain import synthetic_classes
        grh.add_service(
            LanguageDescriptor(EXIST_LANG, "query", "exist-like",
                               framework_aware=False),
            ExistLikeService({"classes.xml": synthetic_classes()}))
        return grh

    @pytest.mark.parametrize("cache", [False, True],
                             ids=["no-cache", "cached"])
    def test_duplicate_heavy_tuple_stream(self, benchmark, cache):
        grh = self._grh(cache)
        spec = ComponentSpec(
            "query", EXIST_LANG,
            opaque="doc('classes.xml')//entry[@model = '{OwnCar}']/@class",
            bind_to="Class")
        # 100 tuples over only 3 distinct models → 97% duplicates
        relation = Relation({"OwnCar": ["Golf", "Polo", "Clio"][i % 3],
                             "N": i} for i in range(100))

        def run():
            grh.clear_opaque_cache()
            return grh.evaluate_query("b::q", spec, relation)

        result = benchmark(run)
        assert len(result) == 100
