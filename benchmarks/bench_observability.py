"""BENCH-O1: what does observability cost on the happy path?

The observability subsystem must be deployable two ways without
distorting the engine it watches:

* **off (the default)** — ``ECAEngine(grh)`` carries no instrumentation
  beyond a handful of ``is not None`` checks.  The acceptance bound pins
  **< 1%** end-to-end against a pre-observability engine, measured over
  the paper's running example (booking → Datalog ownership query →
  SPARQL fleet query → offer action);
* **on** — full tracing (a root span per rule instance, child spans per
  phase, per GRH request and per adopted server-side span) plus the
  phase/request latency histograms.  The bound pins **< 5%** on the same
  workload.

``Observability(enabled=False)`` (a handle that records nothing) is
reported alongside the ``observability=None`` default; both must meet
the disabled bound.

Measurement: the baseline and candidate are interleaved one emit at a
time and the *medians* of the per-emit samples are compared, which
cancels thermal drift and ignores scheduler spikes (same protocol as
BENCH-D1).  The disabled flavor compares two separately built worlds —
their hot paths are identical, so the measurement doubles as a noise
floor.  The enabled flavor instead *toggles* instrumentation on ONE
world (``engine._obs`` / ``grh.observability`` swapped between emits):
separately built worlds differ in intrinsic speed by more than the 5%
bound itself (allocator and hash layout), which would drown the signal.
Overhead this small still jitters between runs, so the acceptance check
takes the best of three measurement blocks: noise only ever inflates
the estimate, never deflates it.

Run directly for the CI gate: ``python bench_observability.py --quick``
(exits non-zero when a bound is violated).
"""

import argparse
import statistics
import sys
import time

from bench_durability import DATALOG_PROGRAM, FLEET_PREFIX, PAPER_RULE

from repro.core import ECAEngine
from repro.domain import booking_event, fleet_graph
from repro.obs import Observability
from repro.obs.ops import ProbabilisticSampler
from repro.services import standard_deployment

#: acceptance bounds, as fractions of the baseline per-booking time
DISABLED_BOUND = 0.01
ENABLED_BOUND = 0.05
#: tracing head-sampled at 1% must price like tracing off: the
#: unsampled fast path (one hash, no exports, no span shipping) is the
#: whole point of sampling — bound 2% over the uninstrumented engine
SAMPLED_BOUND = 0.02
SAMPLED_PROBABILITY = 0.01


def build_paper(observability=None):
    """The running example's world, optionally instrumented."""
    deployment = standard_deployment(graph=fleet_graph(),
                                     datalog_program=DATALOG_PROGRAM)
    deployment.sparql.prefixes["fleet"] = FLEET_PREFIX
    engine = ECAEngine(deployment.grh, keep_instances=False,
                       observability=observability)
    engine.register_rule(PAPER_RULE)

    def emit():
        deployment.stream.emit(booking_event())

    return emit


def build_toggled_paper(observability=None):
    """One instrumented world plus on/off switches for its hot handles.

    Toggling ``engine._obs`` and ``grh.observability`` reproduces
    exactly the ``observability=None`` hot path (both gate every
    instrumented block on ``is not None``), so the off-state IS the
    uninstrumented engine — in the same world, with the same memory
    layout.
    """
    deployment = standard_deployment(graph=fleet_graph(),
                                     datalog_program=DATALOG_PROGRAM)
    deployment.sparql.prefixes["fleet"] = FLEET_PREFIX
    if observability is None:
        observability = Observability()
    engine = ECAEngine(deployment.grh, keep_instances=False,
                       observability=observability)
    engine.register_rule(PAPER_RULE)
    grh = deployment.grh

    def emit():
        deployment.stream.emit(booking_event())

    def on():
        engine._obs = observability
        grh.observability = observability

    def off():
        engine._obs = None
        grh.observability = None

    return emit, on, off


def interleaved_overhead(baseline, candidate, *, warmup, pairs):
    """Median-of-interleaved-samples overhead (see module docstring)."""
    for _ in range(warmup):
        baseline()
        candidate()
    clock = time.perf_counter_ns
    base_ns, candidate_ns = [], []
    for _ in range(pairs):
        t0 = clock()
        baseline()
        t1 = clock()
        candidate()
        t2 = clock()
        base_ns.append(t1 - t0)
        candidate_ns.append(t2 - t1)
    base = statistics.median(base_ns)
    return statistics.median(candidate_ns) / base - 1.0, base


def toggled_overhead(*, warmup, pairs, observability=None):
    """Enabled-observability overhead measured by toggling one world."""
    emit, on, off = build_toggled_paper(observability)
    for _ in range(warmup):
        off()
        emit()
        on()
        emit()
    clock = time.perf_counter_ns
    base_ns, candidate_ns = [], []
    for _ in range(pairs):
        off()
        t0 = clock()
        emit()
        t1 = clock()
        on()
        t2 = clock()
        emit()
        t3 = clock()
        base_ns.append(t1 - t0)
        candidate_ns.append(t3 - t2)
    base = statistics.median(base_ns)
    return statistics.median(candidate_ns) / base - 1.0, base


def toggled_block_overhead(*, blocks, block_size, observability=None):
    """Min-of-paired-block-ratios toggled overhead, for tight bounds.

    The per-emit interleaved protocol cancels slow drift, but sustained
    ambient machine load inflates its medians by more than the sampled
    bound itself.  Here each off-block is immediately followed by its
    on-block: load lasting longer than one pair (a fraction of a
    second) inflates both halves and cancels in the ratio, while a
    burst that hits only one half skews only that pair.  The *minimum*
    pair ratio is therefore the soundest estimate of the true overhead
    — same noise-only-inflates reasoning as :func:`best_of`, applied
    per pair.
    """
    emit, on, off = build_toggled_paper(observability)
    for _ in range(2 * block_size):
        emit()
    clock = time.perf_counter_ns

    def timed_block():
        start = clock()
        for _ in range(block_size):
            emit()
        return clock() - start

    ratios, base_ns = [], []
    for _ in range(blocks):
        off()
        base = timed_block()
        on()
        ratios.append(timed_block() / base)
        base_ns.append(base)
    return min(ratios) - 1.0, min(base_ns) / block_size


def best_of(trials, measure):
    """The lowest overhead estimate across ``trials`` fresh worlds.

    Noise (scheduler, allocator, cache state) only ever *adds* apparent
    overhead to a trial, so the minimum is the soundest estimate of the
    true cost.
    """
    best, best_base = None, None
    for _ in range(trials):
        overhead, base_ns = measure()
        if best is None or overhead < best:
            best, best_base = overhead, base_ns
    return best, best_base


class TestObservabilityOverhead:
    """Reported timings (pytest-benchmark), one engine flavor each."""

    def test_1_no_observability(self, benchmark):
        benchmark(build_paper())

    def test_2_disabled_handle(self, benchmark):
        benchmark(build_paper(Observability(enabled=False)))

    def test_3_enabled(self, benchmark):
        benchmark(build_paper(Observability()))

    def test_4_sampled_one_percent(self, benchmark):
        benchmark(build_paper(Observability(
            sampler=ProbabilisticSampler(SAMPLED_PROBABILITY))))


class TestAcceptanceBound:
    def test_disabled_overhead_under_one_percent(self):
        """``Observability(enabled=False)`` must cost < 1% against the
        bare engine on the paper's running example."""
        overhead, base_ns = best_of(3, lambda: interleaved_overhead(
            build_paper(), build_paper(Observability(enabled=False)),
            warmup=150, pairs=600))
        assert overhead < DISABLED_BOUND, (
            f"disabled observability costs {overhead:.2%} "
            f"(baseline {base_ns / 1e3:.0f}us per booking)")

    def test_enabled_overhead_under_five_percent(self):
        """Full tracing + metrics must cost < 5% on the same workload."""
        overhead, base_ns = best_of(
            3, lambda: toggled_overhead(warmup=150, pairs=600))
        assert overhead < ENABLED_BOUND, (
            f"enabled observability costs {overhead:.2%} "
            f"(baseline {base_ns / 1e3:.0f}us per booking)")

    def test_sampled_overhead_under_two_percent(self):
        """Tracing head-sampled at 1% must stay within 2% of the
        tracing-disabled baseline (the ISSUE's sampled-overhead gate)."""
        overhead, base_ns = best_of(3, lambda: toggled_block_overhead(
            blocks=20, block_size=100,
            observability=Observability(
                sampler=ProbabilisticSampler(SAMPLED_PROBABILITY))))
        assert overhead < SAMPLED_BOUND, (
            f"1%-sampled tracing costs {overhead:.2%} "
            f"(baseline {base_ns / 1e3:.0f}us per booking)")

    def test_default_engine_has_no_hot_path_handle(self):
        """``observability=None`` leaves the hot-path handle unset."""
        deployment = standard_deployment(graph=fleet_graph(),
                                         datalog_program=DATALOG_PROGRAM)
        engine = ECAEngine(deployment.grh)
        assert engine._obs is None
        assert engine.grh.observability is None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="observability overhead gate (BENCH-O1)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer samples (CI smoke pass)")
    parser.add_argument("--sampled", action="store_true",
                        help="also gate 1%%-head-sampled tracing "
                             f"(bound {SAMPLED_BOUND:.0%} over tracing "
                             "off)")
    parser.add_argument("--trials", type=int, default=3)
    options = parser.parse_args(argv)
    warmup = 50 if options.quick else 150
    pairs = 200 if options.quick else 600

    gates = [
        ("Observability(enabled=False)",
         lambda: interleaved_overhead(
             build_paper(), build_paper(Observability(enabled=False)),
             warmup=warmup, pairs=pairs),
         DISABLED_BOUND),
        ("Observability() fully enabled",
         lambda: toggled_overhead(warmup=warmup, pairs=pairs),
         ENABLED_BOUND)]
    if options.sampled:
        blocks = 10 if options.quick else 20
        gates.append(
            (f"sampled at {SAMPLED_PROBABILITY:.0%} (head)",
             lambda: toggled_block_overhead(
                 blocks=blocks, block_size=100,
                 observability=Observability(
                     sampler=ProbabilisticSampler(SAMPLED_PROBABILITY))),
             SAMPLED_BOUND))

    failures = 0
    series = {}
    for label, measure, bound in gates:
        overhead, base_ns = best_of(options.trials, measure)
        verdict = "ok" if overhead < bound else "FAIL"
        if overhead >= bound:
            failures += 1
        series[label] = {
            "overhead": overhead,
            "bound": bound,
            "baseline_ns_per_booking": base_ns,
            "baseline_ops_per_s": 1e9 / base_ns if base_ns else None,
            "ok": overhead < bound,
        }
        print(f"{label:38s} {overhead:+7.2%}  (bound {bound:.0%}, "
              f"baseline {base_ns / 1e3:.0f}us/booking)  {verdict}")
    from reporting import write_bench_json
    path = write_bench_json("observability_gate", series,
                            quick=options.quick, trials=options.trials)
    print(f"wrote {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
