"""BENCH-S1: the planned/indexed SPARQL backend vs the naive evaluator.

Builds a synthetic social graph (100k+ triples by default), then runs
three legs:

* **planned vs naive** — 3–5-pattern queries written in deliberately
  bad textual order, timed through the naive backtracking evaluator
  (``rdf.sparql.select``) and through the ``repro.sparql``
  planner/executor; the planner must reorder by selectivity and win by
  ``--min-speedup`` (default 20×);
* **pushdown vs per-tuple** — the same query pushed through
  :class:`SparqlQueryService` with an input relation of ``--bindings``
  tuples (default 100), once via textual ``{Var}`` substitution (one
  parse/plan/run per tuple) and once via binding-set pushdown (one
  seeded vectorized run); pushdown must win by
  ``--min-pushdown-speedup`` (default 5×);
* **differential** — seeds 0–9 of the tests/sparql generator must
  produce identical solution multisets on both paths.

``--quick`` keeps the 100k-triple graph but trims repetitions for CI;
``BENCH_sparql.json`` lands next to this file.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparql.py           # full
    PYTHONPATH=src python benchmarks/bench_sparql.py --quick   # CI gate
"""

from __future__ import annotations

import argparse
import gc
import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.bindings import Relation, Uri
from repro.grh.messages import Request
from repro.rdf import Graph, Literal, URIRef, XSD
from repro.rdf.sparql import parse_sparql, select
from repro.sparql import SparqlQueryService, TripleStore, plan_query, \
    run_select
from repro.xmlmodel import E

from reporting import summarize, write_bench_json

EX = "http://bench.example.org/"
PROLOGUE = f"PREFIX ex: <{EX}>\n"

#: 3–5-pattern queries whose selectivity lives in a *trailing filter*:
#: the naive evaluator (which also reorders patterns, by exact counts)
#: can only apply a FILTER after the whole group matches, and pays a
#: per-solution price for every intermediate binding, while the planner
#: pushes the filter to right after the scan that binds it, memoizes
#: verdicts per distinct value, and joins whole binding sets through
#: the index buckets
QUERIES = [
    ("filter_late",
     "SELECT ?n WHERE { ?p ex:age ?a . ?p ex:name ?n . "
     "?p ex:knows ?q . ?q ex:lives ?c . FILTER(?a > 89) }"),
    ("filter_eq",
     "SELECT ?n WHERE { ?p ex:age ?a . ?p ex:name ?n . "
     "?p ex:knows ?q . FILTER(?a = 33) }"),
    ("star5",
     "SELECT ?n ?b WHERE { ?p ex:knows ?q . ?q ex:knows ?r . "
     "?p ex:age ?a . ?r ex:age ?b . ?p ex:name ?n . FILTER(?a > 85) }"),
]


def build_store(people: int, cities: int, seed: int) -> TripleStore:
    rng = random.Random(seed)
    store = TripleStore()
    name = URIRef(EX + "name")
    age = URIRef(EX + "age")
    lives = URIRef(EX + "lives")
    knows = URIRef(EX + "knows")
    city_terms = [URIRef(f"{EX}city{i}") for i in range(cities)]
    person_terms = [URIRef(f"{EX}p{i}") for i in range(people)]
    for index, person in enumerate(person_terms):
        store.add(person, name, Literal(f"name{index}"))
        store.add(person, age, Literal(str(rng.randint(1, 90)),
                                       datatype=XSD.integer))
        store.add(person, lives, city_terms[rng.randrange(cities)])
        if rng.random() < 0.7:
            store.add(person, knows,
                      person_terms[rng.randrange(people)])
    for index, city in enumerate(city_terms):
        store.add(city, name, Literal(f"city{index}"))
    return store


def multiset(solutions):
    from collections import Counter
    return Counter(tuple(sorted(solution.items()))
                   for solution in solutions)


def time_rounds(callable_, rounds: int) -> list[float]:
    # the collector's gen-2 passes walk the whole 100k-triple store and
    # land as ~100ms spikes inside arbitrary rounds; collect once up
    # front, then keep it out of the timed region
    timings = []
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            callable_()
            timings.append(time.perf_counter() - started)
    finally:
        if enabled:
            gc.enable()
    return timings


def planned_vs_naive(store: TripleStore, planned_rounds: int,
                     naive_rounds: int) -> tuple[dict, float]:
    series: dict = {}
    speedups = []
    for label, text in QUERIES:
        parsed = parse_sparql(PROLOGUE + text)
        plan = plan_query(store, parsed)
        expected = multiset(run_select(store, plan)[0])
        assert expected == multiset(select(store, parsed)), label
        planned = summarize(time_rounds(
            lambda: run_select(store, plan), planned_rounds))
        naive = summarize(time_rounds(
            lambda: select(store, parsed), naive_rounds))
        planned["result_rows"] = naive["result_rows"] = \
            sum(expected.values())
        series[f"planned_{label}"] = planned
        series[f"naive_{label}"] = naive
        speedup = naive["mean_s"] / planned["mean_s"]
        speedups.append(speedup)
        print(f"{label:>16}: planned {planned['mean_s'] * 1e3:8.2f} ms, "
              f"naive {naive['mean_s'] * 1e3:8.2f} ms, "
              f"speedup {speedup:6.1f}x "
              f"({planned['result_rows']} rows)")
    return series, min(speedups)


def pushdown_vs_per_tuple(store: TripleStore, bindings: int,
                          rounds: int) -> tuple[dict, float]:
    service = SparqlQueryService(store, prefixes={"ex": EX})
    relation = Relation([{"N": f"name{i * 7}"} for i in range(bindings)])

    def request(text: str) -> Request:
        return Request("query", "bench::q", E("q", None, text), relation)

    per_tuple_text = 'SELECT ?p ?c WHERE { ?p ex:name "{N}" . ' \
        "?p ex:lives ?c }"
    pushdown_text = "SELECT ?p ?c WHERE { ?p ex:name ?N . ?p ex:lives ?c }"
    per_tuple_rows = service.query(request(per_tuple_text))
    pushdown_rows = service.query(request(pushdown_text))
    assert sorted((str(row["p"]), str(row["c"])) for row in per_tuple_rows) \
        == sorted((str(row["p"]), str(row["c"])) for row in pushdown_rows)

    per_tuple = summarize(time_rounds(
        lambda: service.query(request(per_tuple_text)), rounds))
    pushdown = summarize(time_rounds(
        lambda: service.query(request(pushdown_text)), rounds))
    per_tuple["input_bindings"] = pushdown["input_bindings"] = bindings
    speedup = per_tuple["mean_s"] / pushdown["mean_s"]
    print(f"        pushdown: {pushdown['mean_s'] * 1e3:8.2f} ms vs "
          f"per-tuple {per_tuple['mean_s'] * 1e3:8.2f} ms at "
          f"{bindings} bindings, speedup {speedup:6.1f}x")
    return {"pushdown": pushdown, "per_tuple": per_tuple}, speedup


def differential(queries_per_seed: int) -> int:
    from tests.sparql.gen import (random_query, random_triples,
                                  solution_multiset)
    from repro.rdf.sparql import ask as naive_ask
    from repro.sparql import run_ask

    checked = 0
    for seed in range(10):
        rng = random.Random(seed)
        triples = random_triples(rng)
        graph = Graph(triples)
        store = TripleStore(triples)
        for _ in range(queries_per_seed):
            parsed = parse_sparql(random_query(rng))
            plan = plan_query(store, parsed)
            if parsed.form == "ASK":
                assert run_ask(store, plan)[0] == naive_ask(graph, parsed)
            else:
                assert solution_multiset(run_select(store, plan)[0]) == \
                    solution_multiset(select(graph, parsed))
            checked += 1
    return checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: same graph, fewer repetitions")
    parser.add_argument("--people", type=int, default=30_000,
                        help="graph scale (~3.7 triples per person)")
    parser.add_argument("--cities", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bindings", type=int, default=100,
                        help="input relation size for the pushdown leg")
    parser.add_argument("--min-speedup", type=float, default=20.0)
    parser.add_argument("--min-pushdown-speedup", type=float, default=5.0)
    options = parser.parse_args(argv)

    planned_rounds, naive_rounds, push_rounds, diff_queries = \
        (5, 2, 5, 10) if options.quick else (20, 5, 20, 30)

    started = time.perf_counter()
    store = build_store(options.people, options.cities, options.seed)
    build_s = time.perf_counter() - started
    print(f"built {len(store)} triples in {build_s:.1f}s "
          f"({options.people} people, {options.cities} cities)")
    assert len(store) >= 100_000, "benchmark graph must hold >=100k triples"

    series, min_speedup = planned_vs_naive(store, planned_rounds,
                                           naive_rounds)
    push_series, pushdown_speedup = pushdown_vs_per_tuple(
        store, options.bindings, push_rounds)
    series.update(push_series)

    checked = differential(diff_queries)
    print(f"     differential: {checked} random queries identical on "
          f"both paths (seeds 0-9)")

    path = write_bench_json(
        "sparql", series,
        seed=options.seed, triples=len(store), people=options.people,
        cities=options.cities, build_s=round(build_s, 2),
        min_query_speedup=round(min_speedup, 1),
        pushdown_speedup=round(pushdown_speedup, 1),
        differential_queries=checked)
    print(f"wrote {path}")

    failures = []
    if min_speedup < options.min_speedup:
        failures.append(f"planned speedup {min_speedup:.1f}x < "
                        f"{options.min_speedup}x")
    if pushdown_speedup < options.min_pushdown_speedup:
        failures.append(f"pushdown speedup {pushdown_speedup:.1f}x < "
                        f"{options.min_pushdown_speedup}x")
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print("gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
