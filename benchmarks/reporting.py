"""Machine-readable benchmark reporting.

Every ``bench_*`` module emits a ``BENCH_<name>.json`` next to the
benchmarks (ISSUE 5): per-series ``ops_per_s`` / ``p50_s`` / ``p99_s``
so CI and EXPERIMENTS.md regressions diff numbers, not prose.  Two
producers feed the same format:

* the pytest-benchmark run — a ``pytest_sessionfinish`` hook in
  ``conftest.py`` groups collected stats by module and calls
  :func:`write_bench_json` once per module;
* script modes (``python bench_engine_throughput.py --workers 4``) —
  they time operations themselves and call :func:`write_bench_json`
  directly with :func:`summarize` output.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = ["percentile", "summarize", "write_bench_json", "RESULTS_DIR"]

#: JSON files land next to the bench modules, like results.json does
RESULTS_DIR = Path(__file__).resolve().parent


def percentile(values, q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty series")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction)
                 + ordered[high] * fraction)


def summarize(timings) -> dict:
    """Summary stats for a series of per-operation durations (seconds)."""
    timings = list(timings)
    mean = sum(timings) / len(timings)
    return {
        "rounds": len(timings),
        "mean_s": mean,
        "p50_s": percentile(timings, 50),
        "p99_s": percentile(timings, 99),
        "ops_per_s": (1.0 / mean) if mean > 0 else float("inf"),
    }


def write_bench_json(name: str, series: dict, directory=None,
                     **extra) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    *series* maps a series label (usually the test name) to its
    :func:`summarize` dict; *extra* keys land at the top level beside
    it (workload parameters, speedup ratios, …).
    """
    target = Path(directory) if directory is not None else RESULTS_DIR
    payload = {"bench": name, "series": series, **extra}
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
