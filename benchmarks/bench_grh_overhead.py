"""BENCH-T4: what does the modular architecture cost?  (ablation)

The same business logic runs on four configurations:

1. **monolithic** — the baseline engine, Python callables, no GRH,
2. **modular, no serialization** — full engine + GRH, in-process
   transport with message serialization disabled,
3. **modular, serialized** — the default: every message rendered to
   markup and re-parsed (byte-identical to the wire),
4. **modular, HTTP** — query services behind real localhost HTTP.

Plus the aware-vs-unaware adaptation cost: the framework-unaware path
issues one request *per input tuple* (Fig. 9), so its cost grows with
the tuple count while the aware path sends one request total.

Expected shape: 1 < 2 < 3 < 4, with serialization dominating the
modularity overhead and HTTP adding per-request latency.
"""

import pytest

from repro.baseline import MonolithicEngine, MonolithicRule
from repro.bindings import Relation
from repro.core import ECAEngine
from repro.domain import (WorkloadConfig, booking_payloads,
                          full_pipeline_rule_markup, synthetic_classes,
                          synthetic_fleet, synthetic_persons)
from repro.events import AtomicPattern, EventStream
from repro.grh import ComponentSpec, GenericRequestHandler, LanguageDescriptor, LanguageRegistry
from repro.services import standard_deployment
from repro.xmlmodel import parse
from repro.xpath import evaluate

CONFIG = WorkloadConfig(persons=30, fleet_size=30, cities=3)
EVENT_COUNT = 10


def modular_run(serialize_messages):
    deployment = standard_deployment(serialize_messages=serialize_messages)
    deployment.add_document("persons.xml", synthetic_persons(CONFIG))
    deployment.add_document("classes.xml", synthetic_classes())
    deployment.add_document("fleet.xml", synthetic_fleet(CONFIG))
    engine = ECAEngine(deployment.grh, keep_instances=False)
    engine.register_rule(full_pipeline_rule_markup("pipeline"))
    payloads = booking_payloads(CONFIG, EVENT_COUNT)

    def run():
        for payload in payloads:
            deployment.stream.emit(payload.copy())

    return run


def monolithic_run():
    persons = synthetic_persons(CONFIG)
    classes = synthetic_classes()
    fleet = synthetic_fleet(CONFIG)
    engine = MonolithicEngine()
    stream = EventStream()
    engine.attach(stream)

    def own_cars(binding):
        for node in evaluate(
                f"//person[@name='{binding['Person']}']/car/model", persons):
            yield {"OwnCar": node.text()}

    def class_of(binding):
        for node in evaluate(
                f"//entry[@model='{binding['OwnCar']}']/@class", classes):
            yield {"Class": node.value}

    def available(binding):
        for node in evaluate(
                f"//car[@location='{binding['To']}']"
                f"[@class='{binding['Class']}']/@model", fleet):
            yield {"Avail": node.value}

    engine.register_rule(MonolithicRule(
        "pipeline",
        AtomicPattern(parse(
            '<travel:booking xmlns:travel='
            '"http://www.semwebtech.org/domains/2006/travel" '
            'person="{Person}" to="{To}"/>')),
        queries=(own_cars, class_of, available)))
    payloads = booking_payloads(CONFIG, EVENT_COUNT)

    def run():
        for payload in payloads:
            stream.emit(payload.copy())

    return run


class TestArchitectureAblation:
    def test_1_monolithic_baseline(self, benchmark):
        benchmark(monolithic_run())

    def test_2_modular_no_serialization(self, benchmark):
        benchmark(modular_run(serialize_messages=False))

    def test_3_modular_serialized(self, benchmark):
        benchmark(modular_run(serialize_messages=True))

    def test_4_modular_http_queries(self, benchmark):
        """Query services behind real localhost HTTP endpoints."""
        from repro.actions import ACTION_NS, ActionRuntime
        from repro.core import ECAEngine as Engine
        from repro.events import ATOMIC_NS
        from repro.services import (ActionExecutionService,
                                    AtomicEventService, EXIST_LANG,
                                    ExistLikeService, HttpServiceServer,
                                    HybridTransport, XQ_LANG, XQService)

        registry = LanguageRegistry()
        transport = HybridTransport()
        grh = GenericRequestHandler(registry, transport)
        stream = EventStream()
        runtime = ActionRuntime(event_stream=stream)
        atomic = AtomicEventService(grh.notify)
        atomic.attach(stream)
        grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                        atomic)
        grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                        ActionExecutionService(runtime))
        documents = {"persons.xml": synthetic_persons(CONFIG),
                     "classes.xml": synthetic_classes(),
                     "fleet.xml": synthetic_fleet(CONFIG)}
        xq_server = HttpServiceServer(
            aware_handler=XQService(documents).handle)
        exist_server = HttpServiceServer(
            opaque_handler=ExistLikeService(documents).execute)
        grh.add_remote_language(
            LanguageDescriptor(XQ_LANG, "query", "xquery-lite"),
            xq_server.start())
        grh.add_remote_language(
            LanguageDescriptor(EXIST_LANG, "query", "exist-like",
                               framework_aware=False), exist_server.start())
        engine = Engine(grh, keep_instances=False)
        engine.register_rule(full_pipeline_rule_markup("pipeline"))
        payloads = booking_payloads(CONFIG, EVENT_COUNT)

        def run():
            for payload in payloads:
                stream.emit(payload.copy())

        try:
            benchmark(run)
        finally:
            xq_server.stop()
            exist_server.stop()


class TestAdaptationCost:
    """Aware = one request per component; unaware = one per tuple."""

    def _grh_with_query_services(self):
        from repro.services import (ExistLikeService, XQService, EXIST_LANG,
                                    XQ_LANG, InProcessTransport)
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, InProcessTransport())
        documents = {"classes.xml": synthetic_classes()}
        grh.add_service(LanguageDescriptor(XQ_LANG, "query", "xq"),
                        XQService(documents))
        grh.add_service(LanguageDescriptor(EXIST_LANG, "query", "exist",
                                           framework_aware=False),
                        ExistLikeService(documents))
        return grh

    @pytest.mark.parametrize("tuples", [1, 10, 50])
    def test_aware_single_request(self, benchmark, tuples):
        grh = self._grh_with_query_services()
        from repro.services import XQ_LANG
        spec = ComponentSpec(
            "query", XQ_LANG,
            content=parse(f'<q xmlns="{XQ_LANG}">'
                          "doc('classes.xml')//entry[@model = $OwnCar]"
                          "/@class</q>"),
            bind_to="Class")
        relation = Relation({"OwnCar": "Golf", "N": i} for i in range(tuples))
        benchmark(grh.evaluate_query, "b::q", spec, relation)

    @pytest.mark.parametrize("tuples", [1, 10, 50])
    def test_unaware_request_per_tuple(self, benchmark, tuples):
        grh = self._grh_with_query_services()
        from repro.services import EXIST_LANG
        spec = ComponentSpec(
            "query", EXIST_LANG,
            opaque="doc('classes.xml')//entry[@model = '{OwnCar}']/@class",
            bind_to="Class")
        relation = Relation({"OwnCar": "Golf", "N": i} for i in range(tuples))
        benchmark(grh.evaluate_query, "b::q", spec, relation)
