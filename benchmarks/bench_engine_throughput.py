"""BENCH-T1: engine throughput — rules fired per second.

Series reported (no quantitative evaluation exists in the paper; this
characterizes the prototype):

* events/sec through the full stack with 1 simple E→A rule,
* scaling with the number of registered rules (1, 10, 50) where each
  event matches every rule,
* scaling with selectivity: 50 rules of which only one matches,
* the full Fig. 4 pipeline (3 query components) per event.

Expected shape: throughput degrades roughly linearly in the number of
*matching* rules (each match is an instance evaluation); non-matching
rules cost only a pattern test at the event service.

Script mode benchmarks the concurrent runtime (ISSUE 5/6) over an
HTTP-bound workload — each rule instance blocks ~8 ms on a remote
query, so overlapping round-trips is the only throughput lever.  A
configuration is ``workers`` or ``workersxinflight`` (the per-shard
in-flight window, PROTOCOL.md §11); ``0`` is the synchronous engine::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --workers 4 --inflight 8    # one configuration
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --compare 1,4               # speedup gate: 4 workers >= 2.5x
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --compare 0,4,4x8,4x16 --min-speedup 10
                                    # in-flight sweep vs the sync engine

Both modes write ``BENCH_engine_throughput_http.json``.
"""

import argparse
import sys
import time

import pytest

from repro.actions import ACTION_NS, ActionRuntime
from repro.bindings import Relation, relation_to_answers
from repro.core import ECAEngine
from repro.domain import (WorkloadConfig, booking_payloads,
                          full_pipeline_rule_markup, simple_rule_markup)
from repro.domain.workload import TRAVEL_NS
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry)
from repro.runtime import Runtime
from repro.services import (ActionExecutionService, AtomicEventService,
                            HttpServiceServer, HybridTransport)
from repro.xmlmodel import ECA_NS

from conftest import build_world
from reporting import summarize, write_bench_json


def _emit_all(deployment, payloads):
    for payload in payloads:
        deployment.stream.emit(payload.copy())


class TestSimpleRuleThroughput:
    def test_single_rule(self, benchmark, small_config):
        deployment, engine = build_world(small_config)
        engine.register_rule(simple_rule_markup("r0"))
        payloads = booking_payloads(small_config, 50)
        benchmark(_emit_all, deployment, payloads)
        assert engine.stats["completed"] > 0

    @pytest.mark.parametrize("rule_count", [1, 10, 50])
    def test_all_rules_match(self, benchmark, small_config, rule_count):
        deployment, engine = build_world(small_config)
        for index in range(rule_count):
            engine.register_rule(simple_rule_markup(f"r{index}"))
        payloads = booking_payloads(small_config, 20)
        benchmark(_emit_all, deployment, payloads)
        assert engine.stats["instances"] >= rule_count * 20

    def test_one_of_fifty_matches(self, benchmark, small_config):
        deployment, engine = build_world(small_config)
        engine.register_rule(simple_rule_markup("hit"))
        for index in range(49):
            engine.register_rule(
                simple_rule_markup(f"miss{index}", event_name="never"))
        payloads = booking_payloads(small_config, 20)
        benchmark(_emit_all, deployment, payloads)


class TestFullPipelineThroughput:
    def test_fig4_pipeline_per_event(self, benchmark, small_config):
        deployment, engine = build_world(small_config)
        engine.register_rule(full_pipeline_rule_markup("pipeline"))
        payloads = booking_payloads(small_config, 10)
        benchmark(_emit_all, deployment, payloads)
        assert engine.stats["instances"] >= 10


# -- script mode: HTTP-bound scaling across worker counts --------------------

SLOW_LANG = "urn:bench:slow-http-query"


class _SlowHttpService:
    """An aware query service that sleeps *delay* seconds per request —
    the IO-bound remote component the worker pool exists to overlap."""

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def handle(self, message):
        time.sleep(self.delay)
        return relation_to_answers(Relation([{"Q": "ok"}]))


def _http_world(workers: int, delay: float, inflight: int = 1):
    """Engine + HTTP-backed slow query; *workers* = 0 means synchronous."""
    registry = LanguageRegistry()
    # pool bound >= workers * inflight so the window, not the pool,
    # is the concurrency limit being measured
    grh = GenericRequestHandler(
        registry, HybridTransport(
            timeout=30.0,
            max_per_endpoint=max(32, workers * inflight)))
    stream = EventStream()
    actions = ActionRuntime(event_stream=stream)
    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                    atomic)
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(actions))
    server = HttpServiceServer(
        aware_handler=_SlowHttpService(delay).handle)
    grh.add_remote_language(
        LanguageDescriptor(SLOW_LANG, "query", "slow-http"), server.start())
    runtime = Runtime(workers=workers, queue_capacity=4096,
                      inflight=inflight) if workers else None
    engine = ECAEngine(grh, runtime=runtime, keep_instances=False)
    engine.register_rule(f"""
    <eca:rule xmlns:eca="{ECA_NS}" id="http-bound">
      <eca:event>
        <travel:booking xmlns:travel="{TRAVEL_NS}"
                        person="{{Person}}" to="{{To}}"/>
      </eca:event>
      <eca:query><q xmlns="{SLOW_LANG}">whatever</q></eca:query>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>""")
    return engine, stream, server


def measure_http_throughput(workers: int, events: int, blocks: int,
                            delay: float, inflight: int = 1) -> dict:
    """Per-event durations over *blocks* repeated drained blocks."""
    engine, stream, server = _http_world(workers, delay, inflight)
    config = WorkloadConfig(persons=20, fleet_size=10, cities=3, seed=1)
    payloads = booking_payloads(config, events)
    try:
        # warmup: one small block primes HTTP connections and caches
        for payload in payloads[:min(4, events)]:
            stream.emit(payload.copy())
        assert engine.drain(60)
        per_event = []
        for _ in range(blocks):
            started = time.perf_counter()
            for payload in payloads:
                stream.emit(payload.copy())
            assert engine.drain(120), "engine failed to quiesce"
            elapsed = time.perf_counter() - started
            per_event.extend([elapsed / events] * events)
    finally:
        engine.shutdown(10)
        server.stop()
    result = summarize(per_event)
    result["workers"] = workers
    result["inflight"] = inflight
    return result


def _parse_spec(spec: str) -> tuple[int, int]:
    """``"4"`` -> (4 workers, window 1); ``"4x8"`` -> (4, window 8)."""
    workers, sep, inflight = spec.strip().partition("x")
    return (int(workers), int(inflight)) if sep else (int(workers), 1)


def _spec_label(workers: int, inflight: int) -> str:
    return f"workers={workers}" if inflight == 1 \
        else f"workers={workers}x{inflight}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="HTTP-bound engine throughput across worker counts "
                    "and in-flight window depths")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size; 0 = synchronous engine")
    parser.add_argument("--inflight", type=int, default=1,
                        help="per-shard in-flight window (single mode)")
    parser.add_argument("--compare", type=str, default=None,
                        help="comma-separated configurations (WORKERS or "
                             "WORKERSxINFLIGHT); gates the last against "
                             "the first at --min-speedup")
    parser.add_argument("--events", type=int, default=60,
                        help="events per timed block")
    parser.add_argument("--blocks", type=int, default=3)
    parser.add_argument("--delay", type=float, default=0.008,
                        help="simulated remote query latency (seconds)")
    parser.add_argument("--min-speedup", type=float, default=2.5)
    options = parser.parse_args(argv)

    specs = [_parse_spec(part) for part in options.compare.split(",")] \
        if options.compare else [(options.workers, options.inflight)]
    series = {}
    for workers, inflight in specs:
        result = measure_http_throughput(
            workers, options.events, options.blocks, options.delay,
            inflight)
        label = _spec_label(workers, inflight)
        series[label] = result
        print(f"{label:<16s} {result['ops_per_s']:8.1f} ev/s   "
              f"p50 {result['p50_s'] * 1e3:6.2f} ms   "
              f"p99 {result['p99_s'] * 1e3:6.2f} ms")

    extra = {"events_per_block": options.events, "blocks": options.blocks,
             "remote_delay_s": options.delay}
    failed = False
    if len(specs) > 1:
        first, last = specs[0], specs[-1]
        baseline = series[_spec_label(*first)]["ops_per_s"]
        candidate = series[_spec_label(*last)]["ops_per_s"]
        speedup = candidate / baseline
        extra["speedup"] = speedup
        verdict = "ok" if speedup >= options.min_speedup else "FAIL"
        print(f"speedup {_spec_label(*last)} / {_spec_label(*first)}: "
              f"{speedup:.2f}x  (gate {options.min_speedup:.1f}x)  "
              f"{verdict}")
        failed = speedup < options.min_speedup
    path = write_bench_json("engine_throughput_http", series, **extra)
    print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
