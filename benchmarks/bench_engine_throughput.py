"""BENCH-T1: engine throughput — rules fired per second.

Series reported (no quantitative evaluation exists in the paper; this
characterizes the prototype):

* events/sec through the full stack with 1 simple E→A rule,
* scaling with the number of registered rules (1, 10, 50) where each
  event matches every rule,
* scaling with selectivity: 50 rules of which only one matches,
* the full Fig. 4 pipeline (3 query components) per event.

Expected shape: throughput degrades roughly linearly in the number of
*matching* rules (each match is an instance evaluation); non-matching
rules cost only a pattern test at the event service.
"""

import pytest

from repro.domain import (WorkloadConfig, booking_payloads,
                          full_pipeline_rule_markup, simple_rule_markup)

from conftest import build_world


def _emit_all(deployment, payloads):
    for payload in payloads:
        deployment.stream.emit(payload.copy())


class TestSimpleRuleThroughput:
    def test_single_rule(self, benchmark, small_config):
        deployment, engine = build_world(small_config)
        engine.register_rule(simple_rule_markup("r0"))
        payloads = booking_payloads(small_config, 50)
        benchmark(_emit_all, deployment, payloads)
        assert engine.stats["completed"] > 0

    @pytest.mark.parametrize("rule_count", [1, 10, 50])
    def test_all_rules_match(self, benchmark, small_config, rule_count):
        deployment, engine = build_world(small_config)
        for index in range(rule_count):
            engine.register_rule(simple_rule_markup(f"r{index}"))
        payloads = booking_payloads(small_config, 20)
        benchmark(_emit_all, deployment, payloads)
        assert engine.stats["instances"] >= rule_count * 20

    def test_one_of_fifty_matches(self, benchmark, small_config):
        deployment, engine = build_world(small_config)
        engine.register_rule(simple_rule_markup("hit"))
        for index in range(49):
            engine.register_rule(
                simple_rule_markup(f"miss{index}", event_name="never"))
        payloads = booking_payloads(small_config, 20)
        benchmark(_emit_all, deployment, payloads)


class TestFullPipelineThroughput:
    def test_fig4_pipeline_per_event(self, benchmark, small_config):
        deployment, engine = build_world(small_config)
        engine.register_rule(full_pipeline_rule_markup("pipeline"))
        payloads = booking_payloads(small_config, 10)
        benchmark(_emit_all, deployment, payloads)
        assert engine.stats["instances"] >= 10
