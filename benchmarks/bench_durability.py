"""BENCH-D1: what does the write-ahead journal cost on the happy path?

The durability layer writes three records per detection — ``det`` on
arrival, one ``exec`` intent per action carrying every tuple key, and
``done`` at completion — so its buffered-mode overhead must stay small.
The acceptance bound pins **< 5%** end-to-end for ``sync="none"``
(buffered appends, no fsync) against a journal-off engine, measured
over the paper's running example: the travel-booking rule of Figs.
7-11 (booking event → Datalog ownership query → SPARQL fleet query →
offer action), the scenario the paper itself evaluates.

Two synthetic workloads are *reported* but not pinned, so the worst
case stays visible:

* ``MINIMAL_RULE`` — one tuple, one action, no query stage: the floor
  of pipeline work per detection, hence the ceiling of the overhead
  ratio (three journal records against a single dispatch);
* ``FANOUT_RULE`` — a query fans each event into ``FANOUT`` action
  executions: exercises the per-tuple key/dedup cost.

The fsync'd modes are also reported only: their cost is the disk's
fsync latency, not CPU work this codebase controls.  ``sync="commit"``
groups one fsync per completed detection; ``sync="always"`` pays one
per record.

Measurement: this class of machine shows several percent of timing
drift between back-to-back blocks, which a sequential min-of-repeats
comparison reads as journaling cost.  The acceptance test therefore
interleaves the two engines one emit at a time, timestamps every emit,
and compares the *medians* of the two per-emit samples: scheduler
spikes land on single samples (the median ignores them) and thermal
drift hits both engines equally (the ratio cancels it).
"""

import itertools
import statistics
import time

from repro.actions import ACTION_NS
from repro.core import ECAEngine
from repro.domain import TRAVEL_NS, booking_event, fleet_graph
from repro.durability import DurabilityManager
from repro.services import (DATALOG_LANG, SPARQL_LANG,
                            standard_deployment)
from repro.xmlmodel import E, ECA_NS

ECA = f'xmlns:eca="{ECA_NS}"'
ACT = f'xmlns:act="{ACTION_NS}"'
TRAVEL = f'xmlns:travel="{TRAVEL_NS}"'
FLEET_PREFIX = "http://example.org/fleet#"

#: the knowledge base of the paper's running example (Sec. 2)
DATALOG_PROGRAM = """
    owns("John Doe", "Golf"). owns("John Doe", "Passat").
    owns("Jane Roe", "Clio").
    class("Clio", "A"). class("Golf", "B"). class("Polo", "B").
    class("Passat", "C"). class("Espace", "D").
    owned_class(P, K) :- owns(P, C), class(C, K).
"""

#: the running example: offer a matching rental car on a booking
PAPER_RULE = f"""
<eca:rule {ECA} id="offers">
  <eca:event>
    <travel:booking {TRAVEL} person="{{Person}}" to="{{To}}"/>
  </eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">owned_class("{{Person}}", Class)</dl:query>
  </eca:query>
  <eca:query>
    <sp:select xmlns:sp="{SPARQL_LANG}">
      SELECT ?Avail ?Class WHERE {{
        ?c fleet:location '{{To}}' ;
           fleet:model ?Avail ; fleet:carClass ?Class .
      }}
    </sp:select>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="offers"><offer car="{{Avail}}"/></act:send>
  </eca:action>
</eca:rule>
"""

#: the degenerate workload: one tuple, one action, no query stage
MINIMAL_RULE = f"""
<eca:rule {ECA} id="bench">
  <eca:event><tick n="{{N}}"/></eca:event>
  <eca:action>
    <act:send {ACT} to="sink"><tock n="{{N}}"/></act:send>
  </eca:action>
</eca:rule>
"""

#: a query stage fans each event out into FANOUT action executions
FANOUT = 6
ROUTES = " ".join(f'route("hub", "r{i}").' for i in range(1, FANOUT + 1))
FANOUT_RULE = f"""
<eca:rule {ECA} id="bench">
  <eca:event><tick n="{{N}}"/></eca:event>
  <eca:query>
    <dl:query xmlns:dl="{DATALOG_LANG}">route("hub", Dest)</dl:query>
  </eca:query>
  <eca:action>
    <act:send {ACT} to="sink"><tock n="{{N}}" dest="{{Dest}}"/></act:send>
  </eca:action>
</eca:rule>
"""


def build(tmp_path=None, sync="none", rule=MINIMAL_RULE, program=""):
    """A wired engine emitting tick events; durable when ``tmp_path``
    is given."""
    deployment = standard_deployment(datalog_program=program)
    durability = None
    if tmp_path is not None:
        durability = DurabilityManager(str(tmp_path), sync=sync,
                                       checkpoint_interval=10 ** 9)
    engine = ECAEngine(deployment.grh, keep_instances=False,
                       durability=durability)
    engine.register_rule(rule)
    counter = itertools.count()

    def emit():
        deployment.stream.emit(E("tick", {"n": str(next(counter))}))

    return emit


def build_paper(tmp_path=None, sync="none"):
    """The running example's world: fleet graph, knowledge base, rule."""
    deployment = standard_deployment(graph=fleet_graph(),
                                     datalog_program=DATALOG_PROGRAM)
    deployment.sparql.prefixes["fleet"] = FLEET_PREFIX
    durability = None
    if tmp_path is not None:
        durability = DurabilityManager(str(tmp_path), sync=sync,
                                       checkpoint_interval=10 ** 9)
    engine = ECAEngine(deployment.grh, keep_instances=False,
                       durability=durability)
    engine.register_rule(PAPER_RULE)

    def emit():
        deployment.stream.emit(booking_event())

    return emit


def interleaved_overhead(baseline, durable, *, warmup=150, pairs=600):
    """Median-of-interleaved-samples overhead (see module docstring)."""
    for _ in range(warmup):
        baseline()
        durable()
    clock = time.perf_counter_ns
    base_ns, durable_ns = [], []
    for _ in range(pairs):
        t0 = clock()
        baseline()
        t1 = clock()
        durable()
        t2 = clock()
        base_ns.append(t1 - t0)
        durable_ns.append(t2 - t1)
    base = statistics.median(base_ns)
    return statistics.median(durable_ns) / base - 1.0, base


class TestDurabilityOverhead:
    def test_1_journal_off(self, benchmark):
        benchmark(build())

    def test_2_journal_buffered(self, benchmark, tmp_path):
        benchmark(build(tmp_path / "none", sync="none"))

    def test_3_journal_group_commit(self, benchmark, tmp_path):
        benchmark(build(tmp_path / "commit", sync="commit"))

    def test_4_journal_fsync_always(self, benchmark, tmp_path):
        benchmark(build(tmp_path / "always", sync="always"))

    def test_5_fanout_journal_off(self, benchmark):
        benchmark(build(rule=FANOUT_RULE, program=ROUTES))

    def test_6_fanout_journal_buffered(self, benchmark, tmp_path):
        benchmark(build(tmp_path / "fanout", sync="none",
                        rule=FANOUT_RULE, program=ROUTES))

    def test_7_paper_journal_off(self, benchmark):
        benchmark(build_paper())

    def test_8_paper_journal_buffered(self, benchmark, tmp_path):
        benchmark(build_paper(tmp_path / "paper", sync="none"))


class TestAcceptanceBound:
    def test_buffered_journal_overhead_under_five_percent(self, tmp_path):
        """Buffered journaling must cost < 5% of the paper's running
        example (booking → ownership query → fleet query → offer)."""
        baseline = build_paper()
        durable = build_paper(tmp_path / "wal", sync="none")
        overhead, base_ns = interleaved_overhead(baseline, durable)
        assert overhead < 0.05, (
            f"buffered journaling costs {overhead:.2%} "
            f"(baseline {base_ns / 1e3:.0f}us per booking)")

    def test_journal_off_is_truly_off(self, tmp_path):
        """The default constructor writes nothing to disk."""
        import os
        build()  # journal-off engine
        assert list(os.scandir(tmp_path)) == []
