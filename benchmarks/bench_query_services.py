"""BENCH-T5: the same logical query through four heterogeneous languages.

"Which cars of a given class are at a given location?" answered by:

* **XPath** directly over the XML fleet document,
* **XQ-lite** (FLWOR) over the same document,
* **SPARQL-lite** over the RDF fleet graph,
* **Datalog** over an equivalent fact base,

each measured standalone (language engine only) and through the full
service + GRH stack.

Expected shape: XPath < XQ-lite (FLWOR adds tuple machinery);
SPARQL/Datalog pay index-lookup costs per pattern; the service stack
adds a roughly constant mediation overhead on top of each.
"""

import pytest

from repro.bindings import Relation
from repro.datalog import DatalogEngine
from repro.domain import WorkloadConfig, synthetic_fleet, CLASS_NAMES
from repro.grh import (ComponentSpec, GenericRequestHandler,
                       LanguageDescriptor, LanguageRegistry)
from repro.rdf import Graph, Literal, Namespace, select
from repro.services import (DATALOG_LANG, DatalogService, InProcessTransport,
                            SPARQL_LANG, SparqlService, XQ_LANG, XQService)
from repro.xmlmodel import serialize
from repro.xpath import evaluate
from repro.xq import evaluate_query

CONFIG = WorkloadConfig(fleet_size=200, cities=4)
FLEET = Namespace("urn:fleet#")


@pytest.fixture(scope="module")
def fleet_xml():
    return synthetic_fleet(CONFIG)


@pytest.fixture(scope="module")
def fleet_rdf(fleet_xml):
    graph = Graph()
    for car in fleet_xml.elements():
        subject = FLEET[car.get("id")]
        graph.add(subject, FLEET.model, Literal(car.get("model")))
        graph.add(subject, FLEET.carClass, Literal(car.get("class")))
        graph.add(subject, FLEET.location, Literal(car.get("location")))
    return graph


@pytest.fixture(scope="module")
def fleet_datalog(fleet_xml):
    facts = "\n".join(
        f'car("{car.get("id")}", "{car.get("model")}", '
        f'"{car.get("class")}", "{car.get("location")}").'
        for car in fleet_xml.elements())
    program = facts + "\navail(M, C, L) :- car(_Id, M, C, L).\n"
    engine = DatalogEngine(program)
    engine.query("avail(M, C, L)")  # force fixpoint outside the benchmark
    return engine


class TestStandaloneEngines:
    def test_xpath(self, benchmark, fleet_xml):
        result = benchmark(
            evaluate, "//car[@location='Paris'][@class='B']/@model",
            fleet_xml)
        assert result

    def test_xq_lite(self, benchmark, fleet_xml):
        query = ("for $c in //car where $c/@location = 'Paris' and "
                 "$c/@class = 'B' return $c/@model")
        result = benchmark(evaluate_query, query, fleet_xml)
        assert result

    def test_sparql_lite(self, benchmark, fleet_rdf):
        query = ("PREFIX f: <urn:fleet#> SELECT ?m WHERE { "
                 "?c f:location 'Paris' ; f:carClass 'B' ; f:model ?m }")
        result = benchmark(select, fleet_rdf, query)
        assert result

    def test_datalog(self, benchmark, fleet_datalog):
        result = benchmark(fleet_datalog.query, 'avail(M, "B", "Paris")')
        assert result


class TestThroughServiceStack:
    def _grh(self, descriptor, service):
        grh = GenericRequestHandler(LanguageRegistry(), InProcessTransport())
        grh.add_service(descriptor, service)
        return grh

    def test_xq_service(self, benchmark, fleet_xml):
        grh = self._grh(LanguageDescriptor(XQ_LANG, "query", "xq"),
                        XQService({"fleet.xml": fleet_xml}))
        spec = ComponentSpec(
            "query", XQ_LANG,
            content=_content(XQ_LANG,
                             "for $c in doc('fleet.xml')//car "
                             "where $c/@location = 'Paris' and "
                             "$c/@class = 'B' return $c/@model"),
            bind_to="Model")
        result = benchmark(grh.evaluate_query, "b::q", spec, Relation.unit())
        assert result

    def test_sparql_service(self, benchmark, fleet_rdf):
        grh = self._grh(LanguageDescriptor(SPARQL_LANG, "query", "sparql"),
                        SparqlService(fleet_rdf, prefixes={"f": str(FLEET)}))
        spec = ComponentSpec(
            "query", SPARQL_LANG,
            content=_content(SPARQL_LANG,
                             "SELECT ?Model WHERE { ?c f:location 'Paris' ; "
                             "f:carClass 'B' ; f:model ?Model }"))
        result = benchmark(grh.evaluate_query, "b::q", spec, Relation.unit())
        assert result

    def test_datalog_service(self, benchmark, fleet_xml):
        facts = "\n".join(
            f'car("{car.get("model")}", "{car.get("class")}", '
            f'"{car.get("location")}").'
            for car in fleet_xml.elements())
        grh = self._grh(LanguageDescriptor(DATALOG_LANG, "query", "datalog"),
                        DatalogService(facts))
        spec = ComponentSpec(
            "query", DATALOG_LANG,
            content=_content(DATALOG_LANG, 'car(Model, "B", "Paris")'))
        result = benchmark(grh.evaluate_query, "b::q", spec, Relation.unit())
        assert result


def _content(language, text):
    from repro.xmlmodel import Element, QName, Text
    element = Element(QName(language, "q"), nsdecls={"q": language})
    element.append(Text(text))
    return element
