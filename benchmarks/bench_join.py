"""BENCH-T2: natural-join scaling on binding relations.

The join (Fig. 11) is the engine's core operation.  Series:

* join cost vs. relation sizes (10x10 … 1000x1000) at fixed selectivity,
* join cost vs. selectivity (0.01 … 1.0 match fraction) at fixed size,
* the degenerate cross-product path (no shared variables),
* serialization cost of relations to/from ``log:answers`` markup, which
  every service boundary pays.

Expected shape: hash join is ~linear in |input| + |output|; the
cross-product fallback is quadratic; markup round-trip is linear with a
large constant (string building + parsing).
"""

import pytest

from repro.bindings import Relation, answers_to_relation, relation_to_answers
from repro.xmlmodel import parse, serialize


def left_relation(size):
    return Relation({"Id": i, "Class": f"k{i % 17}", "L": f"left{i}"}
                    for i in range(size))


def right_relation(size, selectivity):
    matching = int(size * selectivity)
    rows = [{"Class": f"k{i % 17}", "R": f"right{i}"}
            for i in range(matching)]
    rows.extend({"Class": f"other{i}", "R": f"right{i}"}
                for i in range(matching, size))
    return Relation(rows)


class TestJoinScaling:
    @pytest.mark.parametrize("size", [10, 100, 1000])
    def test_join_by_size(self, benchmark, size):
        left = left_relation(size)
        right = right_relation(size, selectivity=0.5)
        result = benchmark(left.join, right)
        assert isinstance(result, Relation)

    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 1.0])
    def test_join_by_selectivity(self, benchmark, selectivity):
        left = left_relation(300)
        right = right_relation(300, selectivity)
        benchmark(left.join, right)

    def test_cross_product_fallback(self, benchmark):
        left = Relation({"A": i} for i in range(60))
        right = Relation({"B": i} for i in range(60))
        result = benchmark(left.join, right)
        assert len(result) == 3600


class TestMarkupCost:
    @pytest.mark.parametrize("size", [10, 100, 1000])
    def test_relation_to_wire_and_back(self, benchmark, size):
        relation = left_relation(size)

        def roundtrip():
            return answers_to_relation(
                parse(serialize(relation_to_answers(relation))))

        result = benchmark(roundtrip)
        assert result == relation
