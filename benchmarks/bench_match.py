"""BENCH-M1: discrimination-network matching vs the linear scan.

Registers a zipf-skewed pattern population (event types follow a
power-law, like real subscription workloads) on both event-service
paths and drives the same seeded event storm through each:

* sweep mode (default) registers 1k → 1M patterns, reports network
  matching throughput at each size, linear-baseline throughput up to
  100k (beyond that the linear path is too slow to sweep honestly),
  candidates-per-event, and 1M-pattern registration time;
* ``--gate`` is the CI acceptance bound: at 100k registered patterns
  the network path must out-match the linear path by
  ``--min-speedup`` (default 30×), the mean candidate set must stay
  under ``--max-candidate-rate`` of the population (default 2%), and a
  1M-pattern registration must complete.

Patterns get **unique variable names** so no two are canonically equal:
every result below is pure discrimination (hash-bucketed alpha
routing), with zero help from shared alpha memories — sharing only adds
to this.  ``BENCH_match.json`` lands next to this file.

Usage::

    PYTHONPATH=src python benchmarks/bench_match.py            # sweep
    PYTHONPATH=src python benchmarks/bench_match.py --gate
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.bindings import Relation
from repro.grh.messages import Request
from repro.services.event_service import AtomicEventService
from repro.xmlmodel import Element, QName

try:
    from reporting import summarize, write_bench_json
except ImportError:  # running as benchmarks.bench_match
    from .reporting import summarize, write_bench_json

DOMAIN_NS = "urn:bench:match"
TYPES = 512          #: distinct event types
ZIPF_S = 1.05        #: skew exponent
KINDS = 256          #: constant discriminant values per type
VARIABLE_ONLY = 0.02  #: fraction of patterns with no constant attribute


def zipf_cum_weights(n: int, s: float) -> list[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    return cumulative


_CUM_WEIGHTS = zipf_cum_weights(TYPES, ZIPF_S)
_TYPE_RANGE = range(TYPES)
STATUSES = 8         #: second discriminant: cuts match rate, not routing


def make_pattern(rng: random.Random, index: int) -> Element:
    """One registration: zipf-typed, mostly attribute-discriminated."""
    event_type = rng.choices(_TYPE_RANGE, cum_weights=_CUM_WEIGHTS)[0]
    element = Element(QName(DOMAIN_NS, f"t{event_type}"),
                      nsdecls={"b": DOMAIN_NS})
    if rng.random() >= VARIABLE_ONLY:
        element.set(QName(None, "kind"), f"k{rng.randrange(KINDS)}")
    # a second constraint most patterns carry: candidates that survive
    # alpha routing still usually fail it, so detections stay sparse
    if rng.random() < 0.9:
        element.set(QName(None, "status"), f"s{rng.randrange(STATUSES)}")
    # unique variable name: defeats alpha-memory sharing on purpose
    element.set(QName(None, "person"), "{V%d}" % index)
    return element


def make_event(rng: random.Random) -> Element:
    event_type = rng.choices(_TYPE_RANGE, cum_weights=_CUM_WEIGHTS)[0]
    element = Element(QName(DOMAIN_NS, f"t{event_type}"),
                      nsdecls={"b": DOMAIN_NS})
    element.set(QName(None, "kind"), f"k{rng.randrange(KINDS)}")
    element.set(QName(None, "status"), f"s{rng.randrange(STATUSES)}")
    element.set(QName(None, "person"), f"p{rng.randrange(10_000)}")
    return element


def build_service(patterns: int, seed: int,
                  use_network: bool) -> tuple[AtomicEventService, int]:
    """Register ``patterns`` components; returns (service, seconds)."""
    sink = _CountingSink()
    service = AtomicEventService(sink, incarnation="",
                                 use_network=use_network)
    service._bench_sink = sink  # keep the counter reachable
    rng = random.Random(seed)
    started = time.perf_counter()
    for index in range(patterns):
        service.register_event(Request(
            "register-event", f"c{index}::event",
            make_pattern(rng, index), Relation.unit()))
    return service, time.perf_counter() - started


class _CountingSink:
    def __init__(self) -> None:
        self.detections = 0

    def __call__(self, element) -> None:
        self.detections += 1


def drive(service: AtomicEventService, events: int,
          seed: int) -> tuple[dict, int]:
    """Feed a seeded storm; per-event timings summary + detections."""
    from repro.events.base import Event

    rng = random.Random(seed)
    payloads = [make_event(rng) for _ in range(events)]
    sink = service._bench_sink
    before = sink.detections
    timings = []
    clock = 0.0
    for sequence, payload in enumerate(payloads):
        clock += 1.0
        started = time.perf_counter()
        service.feed(Event(payload, clock, sequence))
        timings.append(time.perf_counter() - started)
    return summarize(timings), sink.detections - before


def run(patterns: int, *, seed: int, network_events: int,
        linear_events: int, with_linear: bool) -> dict:
    """One population size: network series, optional linear baseline."""
    results: dict = {"patterns": patterns}
    service, register_s = build_service(patterns, seed, use_network=True)
    results["register_s"] = round(register_s, 3)
    summary, detections = drive(service, network_events, seed + 1)
    stats = service.network.stats()
    summary["detections"] = detections
    summary["mean_candidates"] = round(stats["mean_candidates"], 2)
    summary["alpha_nodes"] = stats["alpha_nodes"]
    summary["alpha_tests_per_event"] = round(
        stats["alpha_tests"] / max(1, stats["events_routed"]), 2)
    results["network"] = summary
    if with_linear:
        linear, linear_register_s = build_service(patterns, seed,
                                                  use_network=False)
        results["linear_register_s"] = round(linear_register_s, 3)
        summary, detections = drive(linear, linear_events, seed + 1)
        summary["detections"] = detections
        results["linear"] = summary
        results["speedup"] = round(results["network"]["ops_per_s"]
                                   / summary["ops_per_s"], 1)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--gate", action="store_true",
                        help="CI acceptance mode: 100k-pattern speedup "
                             "gate + candidate bound + 1M registration")
    parser.add_argument("--min-speedup", type=float, default=30.0)
    parser.add_argument("--max-candidate-rate", type=float, default=0.02,
                        help="mean candidates per event, as a fraction "
                             "of the registered population")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--events", type=int, default=400,
                        help="storm length on the network path")
    parser.add_argument("--linear-events", type=int, default=15,
                        help="storm length on the linear baseline")
    parser.add_argument("--registration-scale", type=int,
                        default=1_000_000,
                        help="population for the registration-only leg")
    options = parser.parse_args(argv)

    series: dict = {}
    speedup = candidate_rate = None
    sizes = [100_000] if options.gate else [1_000, 10_000, 100_000]
    for patterns in sizes:
        result = run(patterns, seed=options.seed,
                     network_events=options.events,
                     linear_events=options.linear_events,
                     with_linear=True)
        series[f"network_{patterns}"] = result["network"]
        series[f"linear_{patterns}"] = result["linear"]
        if patterns == 100_000:
            speedup = (result["network"]["ops_per_s"]
                       / result["linear"]["ops_per_s"])
            candidate_rate = (result["network"]["mean_candidates"]
                              / patterns)
        print(f"{patterns:>9} patterns: "
              f"network {result['network']['ops_per_s']:>10.0f} ev/s "
              f"(candidates/event "
              f"{result['network']['mean_candidates']}), "
              f"linear {result['linear']['ops_per_s']:>8.1f} ev/s, "
              f"speedup {result['speedup']}x")

    # registration-at-scale leg: the million-rule story must *load*
    big = options.registration_scale
    big_service, register_s = build_service(big, options.seed,
                                            use_network=True)
    stats = big_service.network.stats()
    big_summary, _ = drive(big_service, min(options.events, 200),
                           options.seed + 1)
    big_summary["mean_candidates"] = round(
        big_service.network.stats()["mean_candidates"], 2)
    big_summary["alpha_nodes"] = stats["alpha_nodes"]
    series[f"register_{big}"] = {
        "rounds": big,
        "mean_s": register_s / big,
        "p50_s": register_s / big,
        "p99_s": register_s / big,
        "ops_per_s": big / register_s,
    }
    series[f"network_at_scale_{big}"] = big_summary
    print(f"{big:>9} patterns: registered in {register_s:.1f}s "
          f"({big / register_s:.0f}/s), storm at "
          f"{big_summary['ops_per_s']:.0f} ev/s, candidates/event "
          f"{big_summary['mean_candidates']}")

    path = write_bench_json(
        "match", series,
        seed=options.seed, types=TYPES, zipf_s=ZIPF_S, kinds=KINDS,
        speedup_100k=round(speedup, 1),
        candidate_rate_100k=round(candidate_rate, 6),
        registration_scale=big, registration_s=round(register_s, 1))
    print(f"wrote {path}")

    if options.gate:
        failures = []
        if speedup < options.min_speedup:
            failures.append(
                f"speedup {speedup:.1f}x at 100k patterns is under the "
                f"{options.min_speedup}x gate")
        if candidate_rate > options.max_candidate_rate:
            failures.append(
                f"candidate rate {candidate_rate:.4f} exceeds "
                f"{options.max_candidate_rate} of the population")
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"GATE OK: {speedup:.1f}x >= {options.min_speedup}x, "
              f"candidate rate {candidate_rate:.4f} <= "
              f"{options.max_candidate_rate}, {big} patterns "
              f"registered in {register_s:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
