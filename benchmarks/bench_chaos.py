"""BENCH-C1: availability under chaos — replica failover + hedged reads.

Two scenarios, both driven by a seeded deterministic
:class:`~repro.chaos.FaultPlan` (PROTOCOL.md §12):

* **storm** — 3 real HTTP replicas of one query service behind a
  :class:`~repro.chaos.ChaosTransport` injecting resets, gateway errors
  and latency.  Replica 0 is killed one third of the way through the
  run and restarted at two thirds; the series reports availability
  (completed / issued), p50/p99 latency, and the time from restart
  until the health prober marks the replica healthy again
  (``time_to_recover_s``).  The run **fails** (exit 1) below the
  availability gate — the §12 claim is that failover keeps read
  availability ≥ 99% while losing 1 of 3 replicas mid-storm.
* **spikes** — the same cluster under a rare-but-severe latency-spike
  plan, measured twice: hedged reads on (the default) and off.  The
  hedge fires after the adaptive p95 delay, so a spiked primary is
  raced by a second replica and p99 collapses to roughly the hedge
  delay; ``hedge_p99_speedup`` reports unhedged p99 / hedged p99.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --seed 0
    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --seed 2 --requests 400 --gate 0.99

Writes ``BENCH_chaos.json``.
"""

import argparse
import sys
import time

from repro.bindings import Relation
from repro.chaos import ChaosTransport, FaultPlan, ReplicaCluster
from repro.grh import (ComponentSpec, GenericRequestHandler, GRHError,
                       LanguageDescriptor, LanguageRegistry, RetryPolicy)
from repro.services import HybridTransport
from repro.services.base import LanguageService
from repro.xmlmodel import E

from reporting import summarize, write_bench_json

QUERY_URI = "urn:bench:chaos-query"


class EchoQueryService(LanguageService):
    service_name = "chaos-bench"

    def query(self, request):
        return Relation([{"Q": "ok"}])


def _spec():
    return ComponentSpec("query", QUERY_URI, content=E("{%s}q" % QUERY_URI))


def _world(plan, *, hedged=True, probe_interval=0.05):
    """A 3-replica HTTP cluster behind a chaos-wrapped transport."""
    cluster = ReplicaCluster(aware_handler=EchoQueryService().handle,
                             count=3)
    addresses = cluster.start()
    alias = {address: f"r{index}"
             for index, address in enumerate(addresses)}
    chaos = ChaosTransport(HybridTransport(timeout=2.0), plan, alias=alias)
    grh = GenericRequestHandler(LanguageRegistry(), chaos)
    grh.health_probe_interval = probe_interval
    if not hedged:
        grh.resilience.default_hedge = None
    grh.add_remote_language(
        LanguageDescriptor(QUERY_URI, "query", "chaos-bench",
                           replicas=addresses,
                           retry=RetryPolicy(max_attempts=2,
                                             base_delay=0.01)))
    chaos.start()
    return grh, cluster, addresses


def run_storm(seed: int, requests: int) -> dict:
    """Kill replica 0 mid-storm, restart it, report availability and
    the prober's time-to-recover."""
    plan = FaultPlan(seed,
                     latency_rate=0.06, latency_range=(0.002, 0.02),
                     reset_rate=0.05,
                     error_rate=0.04, error_statuses=(503,))
    grh, cluster, addresses = _world(plan)
    board = grh.registry.health
    kill_at, restart_at = requests // 3, (2 * requests) // 3
    completed, timings = 0, []
    restarted_at = recover_s = None
    try:
        for index in range(requests):
            if index == kill_at:
                cluster.kill(0)
            elif index == restart_at:
                cluster.restart(0)
                restarted_at = time.perf_counter()
            began = time.perf_counter()
            try:
                rows = grh.evaluate_query("bench", _spec(), Relation.unit())
                completed += len(rows) == 1
            except GRHError:
                pass
            timings.append(time.perf_counter() - began)
            if restarted_at is not None and recover_s is None \
                    and board.state_of(addresses[0]) == "healthy":
                recover_s = time.perf_counter() - restarted_at
        # the prober may still be mid-cycle when the loop drains
        deadline = time.perf_counter() + 5.0
        while recover_s is None and time.perf_counter() < deadline:
            if board.state_of(addresses[0]) == "healthy":
                recover_s = time.perf_counter() - restarted_at
                break
            time.sleep(0.005)
        failovers = grh.resilience.failovers
    finally:
        grh.close()
        cluster.stop()
    result = summarize(timings)
    result.update(issued=requests, completed=completed,
                  availability=completed / requests,
                  failovers=failovers,
                  time_to_recover_s=recover_s)
    return result


def run_spikes(seed: int, requests: int, *, hedged: bool) -> dict:
    """Rare severe latency spikes; measure read p99 with/without the
    hedged second request."""
    plan = FaultPlan(seed, latency_rate=0.04,
                     latency_range=(0.08, 0.12))
    grh, cluster, _ = _world(plan, hedged=hedged)
    timings = []
    try:
        for _ in range(requests):
            began = time.perf_counter()
            rows = grh.evaluate_query("bench", _spec(), Relation.unit())
            assert len(rows) == 1
            timings.append(time.perf_counter() - began)
        hedges = grh.resilience.hedges_launched
    finally:
        grh.close()
        cluster.stop()
    result = summarize(timings)
    result["hedges_launched"] = hedges
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="availability + hedged-read latency under a seeded "
                    "deterministic fault plan")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-plan seed (same seed = same faults)")
    parser.add_argument("--requests", type=int, default=300,
                        help="queries per scenario")
    parser.add_argument("--gate", type=float, default=0.99,
                        help="minimum storm availability (fraction)")
    options = parser.parse_args(argv)

    storm = run_storm(options.seed, options.requests)
    recover = storm["time_to_recover_s"]
    recover_label = f"{recover * 1e3:.0f} ms" if recover is not None \
        else "never (!)"
    print(f"storm      availability {storm['availability'] * 100:6.2f}%  "
          f"({storm['completed']}/{storm['issued']})   "
          f"p99 {storm['p99_s'] * 1e3:6.2f} ms   "
          f"failovers {storm['failovers']}   recover {recover_label}")

    unhedged = run_spikes(options.seed, options.requests, hedged=False)
    hedged = run_spikes(options.seed, options.requests, hedged=True)
    speedup = unhedged["p99_s"] / hedged["p99_s"] \
        if hedged["p99_s"] > 0 else float("inf")
    for label, result in (("unhedged", unhedged), ("hedged", hedged)):
        print(f"{label:<10s} p50 {result['p50_s'] * 1e3:6.2f} ms   "
              f"p99 {result['p99_s'] * 1e3:6.2f} ms   "
              f"hedges {result['hedges_launched']}")
    print(f"hedge p99 speedup: {speedup:.1f}x")

    failed = storm["availability"] < options.gate
    verdict = "FAIL" if failed else "ok"
    print(f"availability gate {options.gate * 100:.0f}%: {verdict}")
    path = write_bench_json(
        "chaos",
        {"storm": storm, "spikes_unhedged": unhedged,
         "spikes_hedged": hedged},
        seed=options.seed, requests=options.requests,
        availability_gate=options.gate,
        hedge_p99_speedup=speedup)
    print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
