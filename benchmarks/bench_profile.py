"""BENCH-P1: the latency observatory — attribution and overhead.

Two claims of PROTOCOL.md §14, measured:

* **attribution** — over an HTTP-bound workload with 20 ms simulated
  remote latency, the critical-path analyzer attributes the plurality
  of every instance's latency budget to the dispatch side
  (``network`` + ``service``), not to engine compute: the wall clock
  is the wire's, and the budget must say so;
* **overhead** — the 99 Hz sampling profiler costs < 3% throughput on
  a CPU-bound in-process workload (where its relative cost is worst),
  and exactly nothing when disabled (no thread exists).

Script mode gates both and writes ``BENCH_profile.json``::

    PYTHONPATH=src python benchmarks/bench_profile.py          # full
    PYTHONPATH=src python benchmarks/bench_profile.py --quick  # CI

The overhead gate compares interleaved off/on blocks by their *best*
per-event time (min-of-blocks discards scheduler noise that would
otherwise dwarf a 3% signal).
"""

import argparse
import sys
import time

from repro.actions import ACTION_NS, ActionRuntime
from repro.bindings import Relation, relation_to_answers
from repro.core import ECAEngine
from repro.domain import (WorkloadConfig, booking_payloads,
                          simple_rule_markup)
from repro.domain.workload import TRAVEL_NS
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry)
from repro.obs import Observability, SamplingProfiler
from repro.runtime import Runtime
from repro.services import (ActionExecutionService, AtomicEventService,
                            HttpServiceServer, HybridTransport,
                            standard_deployment)
from repro.domain import synthetic_classes, synthetic_fleet, synthetic_persons
from repro.xmlmodel import ECA_NS

from reporting import summarize, write_bench_json

SLOW_LANG = "urn:bench:slow-http-query"


class _SlowHttpService:
    def __init__(self, delay: float) -> None:
        self.delay = delay

    def handle(self, message):
        time.sleep(self.delay)
        return relation_to_answers(Relation([{"Q": "ok"}]))


def _http_world(workers: int, delay: float, observability):
    """Engine + HTTP-backed slow query, mirroring BENCH-T1's world."""
    registry = LanguageRegistry()
    grh = GenericRequestHandler(
        registry, HybridTransport(timeout=30.0,
                                  max_per_endpoint=max(32, workers)))
    stream = EventStream()
    actions = ActionRuntime(event_stream=stream)
    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic"),
                    atomic)
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(actions))
    server = HttpServiceServer(
        aware_handler=_SlowHttpService(delay).handle)
    grh.add_remote_language(
        LanguageDescriptor(SLOW_LANG, "query", "slow-http"), server.start())
    runtime = Runtime(workers=workers, queue_capacity=4096) \
        if workers else None
    engine = ECAEngine(grh, runtime=runtime, keep_instances=False,
                       observability=observability)
    engine.register_rule(f"""
    <eca:rule xmlns:eca="{ECA_NS}" id="http-bound">
      <eca:event>
        <travel:booking xmlns:travel="{TRAVEL_NS}"
                        person="{{Person}}" to="{{To}}"/>
      </eca:event>
      <eca:query><q xmlns="{SLOW_LANG}">whatever</q></eca:query>
      <eca:action><out q="{{Q}}"/></eca:action>
    </eca:rule>""")
    return engine, stream, server


def measure_attribution(events: int, delay: float, workers: int) -> dict:
    """Run the HTTP-bound workload under the analyzer; return the
    ``/introspect/latency`` view plus the dispatch share."""
    obs = Observability(critical=True)
    engine, stream, server = _http_world(workers, delay, obs)
    payloads = booking_payloads(
        WorkloadConfig(persons=20, fleet_size=10, cities=3, seed=1), events)
    try:
        for payload in payloads:
            stream.emit(payload.copy())
        assert engine.drain(120), "engine failed to quiesce"
    finally:
        engine.shutdown(10)
        server.stop()
        obs.close()
    view = obs.critical.snapshot()
    shares = view["shares"]
    dispatch_share = shares.get("network", 0.0) + shares.get("service", 0.0)
    compute_shares = {phase: share for phase, share in shares.items()
                      if phase not in ("network", "service")}
    return {
        "instances": view["instances"],
        "selfcheck_failed": view["selfcheck"]["out_of_tolerance"],
        "wall_p99_ms": view["wall"]["p99_ms"],
        "network_p99_ms": view["phases"].get(
            "network", {}).get("p99_ms", 0.0),
        "shares": shares,
        "dominant_phase": view["dominant_phase"],
        "dispatch_share": round(dispatch_share, 4),
        "max_other_share": round(max(compute_shares.values(), default=0.0),
                                 4),
    }


def _cpu_world(observability):
    """In-process deployment: no wire, so profiler cost is maximally
    visible in throughput."""
    config = WorkloadConfig(persons=20, fleet_size=10, cities=3, seed=1)
    deployment = standard_deployment()
    deployment.add_document("persons.xml", synthetic_persons(config))
    deployment.add_document("classes.xml", synthetic_classes())
    deployment.add_document("fleet.xml", synthetic_fleet(config))
    engine = ECAEngine(deployment.grh, keep_instances=False,
                       observability=observability)
    engine.register_rule(simple_rule_markup("r0"))
    return deployment, engine, config


def measure_overhead(events: int, blocks: int, hz: float) -> dict:
    """Interleaved profiler-off / profiler-on blocks over the same
    world; overhead = best-on / best-off − 1."""
    deployment, engine, config = _cpu_world(None)
    payloads = booking_payloads(config, events)
    profiler = SamplingProfiler(hz=hz)

    def one_block() -> float:
        started = time.perf_counter()
        for payload in payloads:
            deployment.stream.emit(payload.copy())
        assert engine.drain(120)
        return (time.perf_counter() - started) / events

    try:
        one_block()                              # warmup
        off, on = [], []
        for _ in range(blocks):
            off.append(one_block())
            with profiler:
                on.append(one_block())
    finally:
        engine.shutdown(10)
    best_off, best_on = min(off), min(on)
    return {
        "off": summarize(off),
        "on": summarize(on),
        "hz": hz,
        "profiler_samples": profiler.samples,
        "self_measured_overhead": round(profiler.overhead(), 6),
        "overhead_fraction": round(best_on / best_off - 1.0, 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="latency attribution + profiler overhead gates")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI")
    parser.add_argument("--events", type=int, default=None)
    parser.add_argument("--blocks", type=int, default=None)
    parser.add_argument("--delay", type=float, default=0.020,
                        help="simulated remote query latency (seconds)")
    parser.add_argument("--hz", type=float, default=99.0)
    parser.add_argument("--workers", type=int, default=0,
                        help="attribution run's pool size; 0 (default) "
                             "= synchronous, so the wire is the only "
                             "wait — a bursty closed loop over a pool "
                             "correctly attributes to queue_wait "
                             "instead")
    parser.add_argument("--max-overhead", type=float, default=0.03)
    options = parser.parse_args(argv)
    events = options.events or (30 if options.quick else 80)
    blocks = options.blocks or (3 if options.quick else 5)

    attribution = measure_attribution(events, options.delay,
                                      options.workers)
    print(f"attribution over {attribution['instances']} instances at "
          f"{options.delay * 1e3:.0f} ms remote latency:")
    print(f"  dominant phase   {attribution['dominant_phase']}")
    print(f"  network+service  {attribution['dispatch_share']:.1%}")
    print(f"  largest other    {attribution['max_other_share']:.1%}")
    print(f"  selfcheck fails  {attribution['selfcheck_failed']}")
    attribution_ok = (
        attribution["selfcheck_failed"] == 0
        and attribution["dominant_phase"] in ("network", "service")
        and attribution["dispatch_share"] > attribution["max_other_share"])
    print(f"  gate (plurality to the dispatch side): "
          f"{'ok' if attribution_ok else 'FAIL'}")

    # overhead blocks must be long enough that a 3% signal clears
    # scheduler noise: in-process events run ~0.6 ms, so give each
    # block a few hundred of them
    overhead_events = max(events * 10, 300)
    overhead_blocks = max(blocks, 5)
    overhead = measure_overhead(overhead_events, overhead_blocks,
                                options.hz)
    print(f"profiler overhead at {options.hz:.0f} Hz over "
          f"{overhead_blocks}x{overhead_events} events:")
    print(f"  off p50 {overhead['off']['p50_s'] * 1e3:.3f} ms/ev   "
          f"on p50 {overhead['on']['p50_s'] * 1e3:.3f} ms/ev")
    print(f"  throughput overhead {overhead['overhead_fraction']:+.2%}   "
          f"self-measured {overhead['self_measured_overhead']:.2%}")
    overhead_ok = overhead["overhead_fraction"] < options.max_overhead
    print(f"  gate (< {options.max_overhead:.0%}): "
          f"{'ok' if overhead_ok else 'FAIL'}")

    path = write_bench_json(
        "profile",
        {"attribution": attribution, "overhead": overhead},
        remote_delay_s=options.delay, events=events,
        overhead_events=overhead_events, blocks=overhead_blocks,
        gates={"attribution": attribution_ok, "overhead": overhead_ok})
    print(f"wrote {path}")
    return 0 if (attribution_ok and overhead_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
