"""BENCH-D2: the priority-bucketed detection queue vs the O(n) scan.

The seed's ``_pop_highest_priority`` scanned the whole pending list on
every pop, making a batched flood of n detections O(n²); the engine now
uses one FIFO deque per priority level plus a heap of non-empty levels
— O(log P) per operation in the number of *distinct* priorities.  This
bench pushes/pops n detections through both structures at several sizes
to document the gap, and pins the bucketed queue to linear scaling.
"""

import timeit

from repro.core.engine import _DetectionQueue

PRIORITIES = (0, 1, 2, 3, 5, 8, 13)


def scan_pop_workload(n):
    """The seed's structure: a list scanned for the max-priority item."""
    def run():
        pending = [(PRIORITIES[i % len(PRIORITIES)], i) for i in range(n)]
        while pending:
            best = 0
            for index in range(1, len(pending)):
                if pending[index][0] > pending[best][0]:
                    best = index
            pending.pop(best)
    return run


def bucketed_workload(n):
    def run():
        queue = _DetectionQueue()
        for i in range(n):
            queue.push(PRIORITIES[i % len(PRIORITIES)], i)
        while queue:
            queue.pop()
    return run


class TestQueueThroughput:
    def test_1_scan_1000(self, benchmark):
        benchmark(scan_pop_workload(1000))

    def test_2_bucketed_1000(self, benchmark):
        benchmark(bucketed_workload(1000))

    def test_3_bucketed_10000(self, benchmark):
        benchmark(bucketed_workload(10000))


class TestAcceptanceBound:
    def test_bucketed_queue_scales_linearly(self):
        """10x the detections must cost ~10x, not ~100x.

        The quadratic scan fails this by an order of magnitude; the
        bucketed queue passes with slack (bound 3x per-item drift)."""
        small, large = 1000, 10000
        t_small = min(timeit.repeat(bucketed_workload(small),
                                    number=5, repeat=5))
        t_large = min(timeit.repeat(bucketed_workload(large),
                                    number=5, repeat=5))
        per_item_ratio = (t_large / large) / (t_small / small)
        assert per_item_ratio < 3.0, (
            f"per-item cost grew {per_item_ratio:.1f}x from n={small} "
            f"to n={large}")

    def test_bucketed_beats_scan_at_scale(self):
        n = 3000
        t_scan = min(timeit.repeat(scan_pop_workload(n), number=2, repeat=3))
        t_bucket = min(timeit.repeat(bucketed_workload(n), number=2,
                                     repeat=3))
        assert t_bucket < t_scan, (
            f"bucketed {t_bucket:.4f}s not faster than scan {t_scan:.4f}s "
            f"at n={n}")
